"""Graphviz DOT export of OR-trees (figure-3-style diagrams).

``to_dot(tree)`` renders the developed tree with solution/failure
coloring and arc weights — paste into any Graphviz viewer to get the
paper's figure 3 for arbitrary queries.  ``to_networkx`` gives the same
structure as a graph object for programmatic analysis.
"""

from __future__ import annotations

import networkx as nx

from .tree import NodeStatus, OrTree

__all__ = ["to_dot", "to_networkx"]


def _label(node, max_len: int = 40) -> str:
    text = ", ".join(str(g) for g in node.goals) if node.goals else "□"
    if len(text) > max_len:
        text = text[: max_len - 3] + "..."
    return text.replace('"', "'")


_STYLE = {
    NodeStatus.SOLUTION: 'fillcolor="palegreen", style=filled',
    NodeStatus.FAILURE: 'fillcolor="lightcoral", style=filled',
    NodeStatus.OPEN: 'fillcolor="lightyellow", style=filled',
    NodeStatus.EXPANDED: "",
}


def to_dot(tree: OrTree, title: str = "OR-tree") -> str:
    """Render the tree as a Graphviz DOT digraph."""
    lines = [
        "digraph ortree {",
        f'  label="{title}";',
        "  node [shape=box, fontsize=10];",
    ]
    for node in tree.nodes:
        style = _STYLE.get(node.status, "")
        extra = f", {style}" if style else ""
        lines.append(
            f'  n{node.nid} [label="{_label(node)}\\nbound={node.bound:g}"{extra}];'
        )
    for arc in tree.arcs:
        weight = f"{arc.weight:g}" if arc.weight else ""
        lines.append(f'  n{arc.parent} -> n{arc.child} [label="{weight}"];')
    lines.append("}")
    return "\n".join(lines)


def to_networkx(tree: OrTree) -> "nx.DiGraph":
    """The tree as a networkx digraph with node/arc attributes."""
    g = nx.DiGraph()
    for node in tree.nodes:
        g.add_node(
            node.nid,
            label=_label(node),
            status=node.status.value,
            bound=node.bound,
            depth=node.depth,
        )
    for arc in tree.arcs:
        g.add_edge(arc.parent, arc.child, weight=arc.weight, key=str(arc.key))
    return g
