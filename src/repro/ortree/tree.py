"""The explicit OR-tree of section 2 (figure 3).

Every node holds a *resolvent*: the remaining goal list with the
substitution applied and reified (independent copies, no shared binding
store — the copy-heavy representation the paper's multiply-write memory
is designed for).  The root holds the query; expanding a node performs
one resolution step on its leftmost goal, producing one child per
matching clause (the OR fan-out).  A node with an empty resolvent is a
**solution**; a node whose selected goal matches nothing is a
**failure** leaf.

Each tree arc is labeled with an :class:`ArcKey` identifying the
*database pointer* it crossed (section 5 stores weights "on pointers in
the database", figure 4).  Two policies are provided:

* ``pointer`` (default): ``(caller clause id, literal index, callee
  clause id)`` — exactly the named weighted pointers of figure 4.  The
  query acts as pseudo-clause ``-1``.
* ``goal``: ``(canonical goal term, callee clause id)`` — merges arcs
  with identical (renamed) goals across callers, satisfying section 4's
  requirement 1 literally (the two ``(sam)-f->(larry)`` arcs of figure 3
  share one key).

Bounds: ``child.bound = parent.bound + weight(arc)`` — monotonically
non-decreasing along any chain, as branch and bound requires (§3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence

from ..logic.builtins import BuiltinError, call_builtin, is_builtin
from ..logic.parser import parse_query
from ..logic.program import Program
from ..logic.solver import _rename_clause
from ..logic.terms import Atom, Struct, Term, Var, term_vars
from ..logic.unify import Bindings, rename_apart, unify

__all__ = ["ArcKey", "NodeStatus", "OrNode", "OrArc", "OrTree", "canonical_goal"]


@dataclass(frozen=True)
class ArcKey:
    """Identity of a database pointer crossed by a tree arc.

    ``kind`` is ``"pointer"``, ``"goal"`` or ``"builtin"``; ``key`` is
    the hashable identity within that kind.
    """

    kind: str
    key: tuple

    def __str__(self) -> str:
        return f"{self.kind}:{self.key}"


class NodeStatus(enum.Enum):
    OPEN = "open"  # not yet expanded
    EXPANDED = "expanded"  # children generated
    SOLUTION = "solution"  # empty resolvent
    FAILURE = "failure"  # selected goal matched nothing


QUERY_CLAUSE_ID = -1


def canonical_goal(goal: Term) -> Term:
    """Rename ``goal``'s variables to a canonical sequence for arc keys."""
    mapping: dict[int, Var] = {}
    counter = [0]

    def go(t: Term) -> Term:
        if isinstance(t, Var):
            nv = mapping.get(t.id)
            if nv is None:
                counter[0] += 1
                nv = Var(f"_C{counter[0]}", vid=-counter[0])
                mapping[t.id] = nv
            return nv
        if isinstance(t, Struct):
            return Struct(t.functor, tuple(go(a) for a in t.args))
        return t

    return go(goal)


@dataclass
class OrArc:
    """A tree arc: parent --(database pointer)--> child."""

    parent: int
    child: int
    key: ArcKey
    weight: float  # weight used when the child was generated


@dataclass
class OrNode:
    """One node of the OR-tree.

    ``goals`` is the resolvent; ``goal_sources`` tracks, per remaining
    goal, which clause and literal position it came from (for pointer
    arc keys).  ``answer`` is the query instance under this node's
    accumulated substitution.
    """

    nid: int
    parent: Optional[int]
    goals: tuple[Term, ...]
    goal_sources: tuple[tuple[int, int], ...]  # (clause id, literal index)
    answer: tuple[Term, ...]
    depth: int
    bound: float = 0.0
    status: NodeStatus = NodeStatus.OPEN
    arc: Optional[OrArc] = None  # arc from parent
    children: list[int] = field(default_factory=list)

    @property
    def is_leaf_solution(self) -> bool:
        return self.status is NodeStatus.SOLUTION

    @property
    def is_failure(self) -> bool:
        return self.status is NodeStatus.FAILURE

    @property
    def selected_goal(self) -> Optional[Term]:
        return self.goals[0] if self.goals else None


class OrTree:
    """OR-tree construction and single-step expansion.

    Parameters
    ----------
    program:
        The knowledge base.
    query:
        Source text or goal terms.
    weight_fn:
        Maps an :class:`ArcKey` to the weight used for child bounds.
        Defaults to 0 (uniform; degenerates best-first to breadth-ish
        order).  The B-LOG engine plugs the weight store in here.
    arc_key_policy:
        ``"pointer"`` (figure 4 pointers) or ``"goal"`` (canonical goal
        merging, section 4 requirement 1).
    max_depth:
        Expansion depth bound; nodes at the bound fail (counted).
    """

    def __init__(
        self,
        program: Program,
        query: str | Sequence[Term],
        weight_fn: Optional[Callable[[ArcKey], float]] = None,
        arc_key_policy: str = "pointer",
        max_depth: int = 256,
        pair_weight_fn: Optional[
            Callable[[Optional[ArcKey], ArcKey], float]
        ] = None,
        selection_rule: str = "leftmost",
    ):
        if arc_key_policy not in ("pointer", "goal"):
            raise ValueError(f"unknown arc key policy {arc_key_policy!r}")
        if selection_rule not in ("leftmost", "most-bound", "fewest-candidates"):
            raise ValueError(f"unknown selection rule {selection_rule!r}")
        self.program = program
        self.weight_fn = weight_fn or (lambda key: 0.0)
        # conditional bound (§5 outlook): weight of an arc given the arc
        # before it; overrides weight_fn when set
        self.pair_weight_fn = pair_weight_fn
        self.arc_key_policy = arc_key_policy
        # computation rule: which resolvent goal to resolve next.
        # "leftmost" is Prolog/§2; "most-bound" prefers the most
        # instantiated goal; "fewest-candidates" the most selective one
        # (the dataflow-ordering intuition of §7 / Conery's ordering).
        self.selection_rule = selection_rule
        self.max_depth = max_depth
        goals = parse_query(query) if isinstance(query, str) else tuple(query)
        self.query = goals
        self.query_vars = {
            v.name: v for g in goals for v in term_vars(g) if v.name != "_"
        }
        self.nodes: list[OrNode] = []
        self.arcs: list[OrArc] = []
        self.expansions = 0
        self.generated = 0
        self.depth_cutoffs = 0
        # copy traffic: total term symbols materialized into child
        # resolvents/answers — the §6 chain-sprouting copy load the
        # multiply-write memory is designed to absorb
        self.words_copied = 0
        sources = tuple((QUERY_CLAUSE_ID, i) for i in range(len(goals)))
        root = OrNode(
            nid=0,
            parent=None,
            goals=goals,
            goal_sources=sources,
            answer=goals,
            depth=0,
        )
        if not goals:
            root.status = NodeStatus.SOLUTION
        self.nodes.append(root)

    # -- accessors -----------------------------------------------------------
    @property
    def root(self) -> OrNode:
        return self.nodes[0]

    def node(self, nid: int) -> OrNode:
        return self.nodes[nid]

    def chain(self, nid: int) -> list[OrNode]:
        """Nodes from the root down to ``nid`` inclusive."""
        out = []
        cur: Optional[int] = nid
        while cur is not None:
            n = self.nodes[cur]
            out.append(n)
            cur = n.parent
        out.reverse()
        return out

    def chain_arcs(self, nid: int) -> list[OrArc]:
        """Arcs along the chain from the root to ``nid``."""
        return [n.arc for n in self.chain(nid) if n.arc is not None]

    def solutions(self) -> list[OrNode]:
        return [n for n in self.nodes if n.status is NodeStatus.SOLUTION]

    def failures(self) -> list[OrNode]:
        return [n for n in self.nodes if n.status is NodeStatus.FAILURE]

    def solution_answer(self, node: OrNode) -> dict[str, Term]:
        """Named query-variable bindings at a solution node."""
        b = Bindings()
        for q, a in zip(self.query, node.answer):
            if not unify(q, a, b):  # pragma: no cover - answers are instances
                raise RuntimeError("answer does not unify with query")
        return {name: b.resolve(v) for name, v in self.query_vars.items()}

    # -- expansion -------------------------------------------------------------
    def expand(self, nid: int) -> list[int]:
        """Perform one resolution step at node ``nid``.

        Returns the ids of the generated children.  Terminal or already
        expanded nodes return their recorded children.
        """
        node = self.nodes[nid]
        if node.status is not NodeStatus.OPEN:
            return list(node.children)
        if self.selection_rule != "leftmost" and len(node.goals) > 1:
            self._apply_selection(node)
        goal = node.selected_goal
        assert goal is not None  # OPEN nodes always have goals
        if node.depth >= self.max_depth:
            self.depth_cutoffs += 1
            node.status = NodeStatus.FAILURE
            return []
        self.expansions += 1
        if isinstance(goal, Var):
            raise BuiltinError("cannot call an unbound variable goal")
        if isinstance(goal, Struct) and (goal.functor, goal.arity) in (
            ("\\+", 1),
            ("call", 1),
            ("findall", 3),
        ):
            children = self._expand_control(node, goal)
        elif is_builtin(goal):
            children = self._expand_builtin(node, goal)
        else:
            children = self._expand_user(node, goal)
        node.status = NodeStatus.EXPANDED if children else NodeStatus.FAILURE
        node.children = children
        return list(children)

    def _apply_selection(self, node: OrNode) -> None:
        """Move the goal the computation rule picks to the front.

        Only *user-predicate* goals are candidates — builtins and
        control constructs execute exactly when they become leftmost,
        so their producers (which stay ahead of them, since unselected
        goals keep their relative order) are always resolved first.
        The selected goal moves; everything else keeps its order, which
        preserves soundness of builtin dataflow and completeness of the
        conjunction (modulo the depth bound).
        """
        candidates: list[int] = []
        for ix, g in enumerate(node.goals):
            if isinstance(g, Var):
                continue
            if is_builtin(g):
                continue
            if isinstance(g, Struct) and (g.functor, g.arity) in (
                ("\\+", 1),
                ("call", 1),
                ("findall", 3),
            ):
                continue
            if isinstance(g, Atom) and g.name == "!":
                continue
            candidates.append(ix)
        if not candidates or candidates[0] != 0:
            # the leftmost goal is a builtin/control: it must run first
            return
        if self.selection_rule == "most-bound":
            def score(ix: int) -> tuple:
                g = node.goals[ix]
                if not isinstance(g, Struct):
                    return (0.0, ix)
                ground = sum(1 for a in g.args if not term_vars(a))
                return (-ground / g.arity, ix)
        else:  # fewest-candidates
            def score(ix: int) -> tuple:
                return (len(self.program.candidates(node.goals[ix])), ix)
        best = min(candidates, key=score)
        if best == 0:
            return
        order = [best] + [i for i in range(len(node.goals)) if i != best]
        node.goals = tuple(node.goals[i] for i in order)
        node.goal_sources = tuple(node.goal_sources[i] for i in order)

    def _make_child(
        self,
        node: OrNode,
        b: Bindings,
        body: tuple[Term, ...],
        body_sources: tuple[tuple[int, int], ...],
        key: ArcKey,
    ) -> int:
        new_goals = tuple(b.resolve(g) for g in body + node.goals[1:])
        new_sources = body_sources + node.goal_sources[1:]
        answer = tuple(b.resolve(a) for a in node.answer)
        from ..logic.terms import term_size

        self.words_copied += sum(term_size(g) for g in new_goals) + sum(
            term_size(a) for a in answer
        )
        if self.pair_weight_fn is not None:
            prev_key = node.arc.key if node.arc is not None else None
            weight = self.pair_weight_fn(prev_key, key)
        else:
            weight = self.weight_fn(key)
        nid = len(self.nodes)
        child = OrNode(
            nid=nid,
            parent=node.nid,
            goals=new_goals,
            goal_sources=new_sources,
            answer=answer,
            depth=node.depth + 1,
            bound=node.bound + weight,
        )
        arc = OrArc(parent=node.nid, child=nid, key=key, weight=weight)
        child.arc = arc
        if not new_goals:
            child.status = NodeStatus.SOLUTION
        self.nodes.append(child)
        self.arcs.append(arc)
        self.generated += 1
        return nid

    def _expand_user(self, node: OrNode, goal: Term) -> list[int]:
        children: list[int] = []
        caller_id, literal_ix = node.goal_sources[0]
        for cid in self.program.candidates(goal):
            clause = self.program.clause(cid)
            head, body = _rename_clause(clause)
            b = Bindings()
            if not unify(goal, head, b):
                continue
            if self.arc_key_policy == "pointer":
                key = ArcKey("pointer", (caller_id, literal_ix, cid))
            else:
                key = ArcKey("goal", (canonical_goal(goal), cid))
            body_sources = tuple((cid, i) for i in range(len(body)))
            children.append(self._make_child(node, b, body, body_sources, key))
        return children

    def _expand_control(self, node: OrNode, goal: Term) -> list[int]:
        """Engine-level control: ``\\+``, ``call/1``, ``findall/3``.

        These need recursive solving; the sub-search runs on the
        sequential engine (its work is *not* charged to this tree's
        expansion counters — a deliberate simplification: the paper's
        model treats each decision arc as atomic).
        """
        from ..logic.solver import Solver

        assert isinstance(goal, Struct)
        key = ArcKey("builtin", (goal.indicator,))
        if goal.functor == "call":
            # transparent: replace the goal with its argument in place
            child_node = OrNode(
                nid=len(self.nodes),
                parent=node.nid,
                goals=(goal.args[0],) + node.goals[1:],
                goal_sources=node.goal_sources,
                answer=node.answer,
                depth=node.depth + 1,
                bound=node.bound + self.weight_fn(key),
            )
            arc = OrArc(node.nid, child_node.nid, key, self.weight_fn(key))
            child_node.arc = arc
            if not child_node.goals:
                child_node.status = NodeStatus.SOLUTION
            self.nodes.append(child_node)
            self.arcs.append(arc)
            self.generated += 1
            return [child_node.nid]
        solver = Solver(self.program, max_depth=max(4, self.max_depth - node.depth))
        if goal.functor == "\\+":
            if solver.succeeds((goal.args[0],)):
                return []
            return [self._make_child(node, Bindings(), (), (), key)]
        # findall/3
        template, sub, out = goal.args
        collected: list[Term] = []
        bindings = Bindings()
        for _ in solver._solve((sub,), bindings, 0, [False]):
            collected.append(bindings.resolve(template))
        bindings.undo_to(0)
        from ..logic.terms import make_list

        b = Bindings()
        if not unify(out, make_list(collected), b):
            return []
        return [self._make_child(node, b, (), (), key)]

    def _expand_builtin(self, node: OrNode, goal: Term) -> list[int]:
        children: list[int] = []
        b = Bindings()
        key = ArcKey("builtin", (goal.indicator,))
        try:
            solutions = []
            mark = b.mark()
            for _ in call_builtin(goal, b):
                solutions.append({vid: b.resolve(t) for vid, t in b.map.items()})
            b.undo_to(mark)
            for sol in solutions:
                cb = Bindings()
                cb.map = dict(sol)
                children.append(self._make_child(node, cb, (), (), key))
        except BuiltinError:
            return []
        return children

    # -- whole-tree helpers ------------------------------------------------------
    def expand_all(self, limit: int = 100_000) -> None:
        """Fully develop the tree, breadth-first (for figures/tests)."""
        frontier = [0]
        while frontier:
            if len(self.nodes) > limit:
                raise RuntimeError(f"OR-tree exceeded {limit} nodes")
            nxt: list[int] = []
            for nid in frontier:
                nxt.extend(self.expand(nid))
            frontier = nxt

    def explain_chain(self, nid: int) -> list[str]:
        """Human-readable resolution steps from the root to ``nid``:
        one line per arc with the goal resolved, the clause used, and
        the arc weight — the answer's provenance."""
        lines: list[str] = []
        chain = self.chain(nid)
        for parent, child in zip(chain, chain[1:]):
            goal = parent.selected_goal
            arc = child.arc
            assert arc is not None
            if arc.key.kind == "pointer":
                _caller, _lit, callee = arc.key.key
                via = f"clause {callee}: {self.program.clause(callee)}"
            elif arc.key.kind == "goal":
                via = f"clause {arc.key.key[1]}"
            else:
                via = f"builtin {arc.key.key[0][0]}/{arc.key.key[0][1]}"
            lines.append(
                f"resolve {goal}  via {via}  [weight {arc.weight:g}, "
                f"bound {child.bound:g}]"
            )
        terminal = chain[-1]
        if terminal.status is NodeStatus.SOLUTION:
            lines.append("=> solution")
        elif terminal.status is NodeStatus.FAILURE:
            lines.append(f"=> failure at {terminal.selected_goal}")
        return lines

    def render(self, max_goal_len: int = 48) -> str:
        """ASCII rendering of the tree (figure-3 style)."""
        lines: list[str] = []

        def go(nid: int, prefix: str) -> None:
            n = self.nodes[nid]
            label = ", ".join(str(g) for g in n.goals) or "□"
            if len(label) > max_goal_len:
                label = label[: max_goal_len - 3] + "..."
            tag = {
                NodeStatus.SOLUTION: " [SOLUTION]",
                NodeStatus.FAILURE: " [FAILURE]",
                NodeStatus.OPEN: " [open]",
            }.get(n.status, "")
            w = f" (bound={n.bound:g})" if n.bound else ""
            lines.append(f"{prefix}{label}{tag}{w}")
            for c in n.children:
                go(c, prefix + "  ")

        go(0, "")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"OrTree({len(self.nodes)} nodes, {len(self.solutions())} solutions, "
            f"{len(self.failures())} failures)"
        )
