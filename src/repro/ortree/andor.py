"""The AND/OR process model of Conery & Kibler — the paper's baseline [4].

Section 2: "the execution of a Logic Program can be modeled as a search
process through an AND/OR tree [4] or through an OR-tree.  In our
approach [...] we consider AND-trees now only in a sequential way" —
B-LOG linearizes conjunctions (Prolog-style) and fans out only on
clause choice.  To measure what that simplification gives up, this
module implements the *other* model:

* an **OR node** stands for one goal; its children are AND nodes, one
  per clause whose head unifies;
* an **AND node** stands for a clause body (a conjunction).  Goals are
  partitioned into independence groups: groups run *in parallel* and
  their answer sets cross-join freely (no shared variables); *within*
  a group, goals run in order with **sideways information passing** —
  each accumulated answer instantiates the next goal before its OR
  subtree is solved.  This is Conery's ordering algorithm in its
  simplest form; without it, solving shared-variable goals blindly
  independently diverges on recursive predicates (his thesis's central
  difficulty, and §7's "calls which share variables").

The evaluator returns the same answer sets as SLD resolution
(integration-tested against the baseline) and accounts:

* ``or_nodes`` / ``and_nodes`` — tree size;
* ``join_work`` — tuples touched combining sibling answers;
* ``max_and_width`` / ``max_or_width`` — the parallelism each node kind
  exposes;
* ``sequential_work`` vs ``critical_path`` — ideal AND∥OR speedup.

Caveat (faithful to [4]'s difficulties): goals are solved to
*completion* before joining, so infinite subtrees must be cut by
``max_depth`` even where Prolog's lazy interleaving would terminate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..logic.builtins import BuiltinError, call_builtin, is_builtin
from ..logic.parser import parse_query
from ..logic.program import Program
from ..logic.solver import _rename_clause
from ..logic.terms import Struct, Term, Var, term_vars
from ..logic.unify import Bindings, unify

__all__ = ["AndOrStats", "AndOrResult", "AndOrEvaluator"]


@dataclass
class AndOrStats:
    or_nodes: int = 0
    and_nodes: int = 0
    join_work: int = 0  # tuples touched in sibling joins
    max_or_width: int = 0  # widest clause fan-out (OR-parallelism)
    max_and_width: int = 0  # widest body (AND-parallelism)
    depth_cutoffs: int = 0
    # work units: one unit per OR-node visit (goal resolution attempt);
    # sequential = serialize everything, critical path = AND and OR
    # children in parallel.  Same units, so their ratio is a speedup.
    sequential_work: int = 0
    critical_path: int = 0


@dataclass
class AndOrResult:
    answers: list[dict[str, Term]] = field(default_factory=list)
    stats: AndOrStats = field(default_factory=AndOrStats)
    task_graph: object = None  # TaskGraph when run(record_tasks=True)

    @property
    def ideal_speedup(self) -> float:
        if self.stats.critical_path == 0:
            return 1.0
        return self.stats.sequential_work / self.stats.critical_path


# an answer to a goal: substitution over the goal's variable ids
Subst = dict[int, Term]


class AndOrEvaluator:
    """Evaluate queries under the AND/OR process model."""

    def __init__(self, program: Program, max_depth: int = 64, max_answers: int = 100_000):
        self.program = program
        self.max_depth = max_depth
        self.max_answers = max_answers

    def run(
        self, query: str | Sequence[Term], record_tasks: bool = False
    ) -> AndOrResult:
        """Evaluate ``query``.  With ``record_tasks`` the result carries
        a :class:`~repro.machine.schedule.TaskGraph` of the evaluation
        (one unit task per OR-node, precedence = the sips barriers), so
        the run can be list-scheduled onto a finite machine (E12)."""
        goals = parse_query(query) if isinstance(query, str) else tuple(query)
        result = AndOrResult()
        if record_tasks:
            from ..machine.schedule import TaskGraph

            self._graph = TaskGraph()
            self._tid = 0
        else:
            self._graph = None
        answers, seq, cp, _src, _snk = self._solve_and(goals, 0, result.stats)
        result.stats.sequential_work = seq
        result.stats.critical_path = cp
        result.task_graph = self._graph
        self._graph = None
        named: dict[str, Var] = {}
        for g in goals:
            for v in term_vars(g):
                if v.name and v.name != "_":
                    named.setdefault(v.name, v)
        for sub in answers:
            result.answers.append(
                {name: _apply(sub, v) for name, v in named.items()}
            )
        return result

    # -- AND node: independent groups in parallel, sips within a group ------
    def _solve_and(
        self, goals: tuple[Term, ...], depth: int, stats: AndOrStats
    ) -> tuple[list[Subst], int, int, tuple, tuple]:
        if not goals:
            return [dict()], 0, 0, (), ()
        stats.and_nodes += 1
        stats.max_and_width = max(stats.max_and_width, len(goals))
        from ..andpar.independence import independence_groups

        groups = independence_groups(goals)
        per_group: list[list[Subst]] = []
        seq_total = 0
        cp_parts: list[int] = []
        sources: list = []
        sinks: list = []
        for group in groups:
            sols, seq, cp, g_src, g_snk = self._solve_group(
                [goals[i] for i in group], depth, stats
            )
            per_group.append(sols)
            seq_total += seq
            cp_parts.append(cp)
            sources.extend(g_src)
            sinks.extend(g_snk)
            if not sols:
                # a dead group kills the AND node
                return [], seq_total, max(cp_parts, default=0), tuple(sources), tuple(sinks)
        # cross-join independent groups: no shared vars => plain product
        combined = per_group[0]
        for sols in per_group[1:]:
            merged: list[Subst] = []
            for left in combined:
                for right in sols:
                    stats.join_work += 1
                    merged.append({**left, **right})
                    if len(merged) > self.max_answers:
                        raise RuntimeError("AND/OR join explosion")
            combined = merged
        # groups run AND-parallel: time is the slowest group
        return combined, seq_total, max(cp_parts, default=0), tuple(sources), tuple(sinks)

    def _solve_group(
        self, goals: list[Term], depth: int, stats: AndOrStats
    ) -> tuple[list[Subst], int, int, tuple, tuple]:
        """Dependent goals: left-to-right with sideways information
        passing — each accumulated answer instantiates the next goal.
        Per-answer OR solves of one goal are mutually independent
        (OR-parallel), so the goal's time is their max; goals chain
        sequentially (the dependency), so group time is the sum."""
        answers: list[Subst] = [dict()]
        seq_total = 0
        cp_total = 0
        group_sources: list = []
        prev_sinks: list = []
        for goal in goals:
            next_answers: list[Subst] = []
            cp_goal = 0
            goal_sources: list = []
            goal_sinks: list = []
            for acc in answers:
                inst = _apply(acc, goal)
                sols, seq, cp, o_src, o_snk = self._solve_or(inst, depth, stats)
                goal_sources.extend(o_src)
                goal_sinks.extend(o_snk)
                seq_total += seq
                cp_goal = max(cp_goal, cp)
                for sub in sols:
                    stats.join_work += 1
                    joined = _join(acc, sub)
                    if joined is not None:
                        next_answers.append(joined)
                        if len(next_answers) > self.max_answers:
                            raise RuntimeError("AND/OR join explosion")
            answers = next_answers
            cp_total += cp_goal
            # sips barrier: this goal's tasks wait for the previous
            # goal's whole subtree (its answers feed the instantiation)
            if self._graph is not None:
                for p in prev_sinks:
                    for s in goal_sources:
                        self._graph.add_edge(p, s)
            if not group_sources:
                group_sources = goal_sources
            if goal_sinks:
                prev_sinks = goal_sinks
            if not answers:
                break
        return answers, seq_total, cp_total, tuple(group_sources), tuple(prev_sinks)

    # -- OR node: one goal, one child AND node per resolving clause ---------
    def _solve_or(
        self, goal: Term, depth: int, stats: AndOrStats
    ) -> tuple[list[Subst], int, int, tuple, tuple]:
        stats.or_nodes += 1
        own_task = None
        if self._graph is not None:
            self._tid += 1
            own_task = self._graph.add_task(self._tid, 1.0)
        if depth >= self.max_depth:
            stats.depth_cutoffs += 1
            mine = (own_task,) if own_task is not None else ()
            return [], 1, 1, mine, mine
        if isinstance(goal, Var):
            raise BuiltinError("cannot call an unbound variable goal")
        goal_ids = {v.id for v in term_vars(goal)}
        if is_builtin(goal):
            mine = (own_task,) if own_task is not None else ()
            return self._solve_builtin(goal, goal_ids), 1, 1, mine, mine
        answers: list[Subst] = []
        seq_total = 1  # this node's own resolution work
        cp_children: list[int] = []
        child_sinks: list = []
        candidates = self.program.candidates(goal)
        stats.max_or_width = max(stats.max_or_width, len(candidates))
        for cid in candidates:
            clause = self.program.clause(cid)
            head, body = _rename_clause(clause)
            b = Bindings()
            if not unify(goal, head, b):
                continue
            instantiated = tuple(b.resolve(g) for g in body)
            sub_answers, seq, cp, a_src, a_snk = self._solve_and(
                instantiated, depth + 1, stats
            )
            if self._graph is not None:
                for s in a_src:
                    self._graph.add_edge(own_task, s)
                child_sinks.extend(a_snk if a_snk else ())
            seq_total += seq
            cp_children.append(cp)
            for sub in sub_answers:
                # project the clause-level answer onto the goal variables
                projected: Subst = {}
                for vid in goal_ids:
                    value = b.resolve(Var("_", vid=vid))
                    projected[vid] = _apply(sub, value)
                answers.append(projected)
                if len(answers) > self.max_answers:
                    raise RuntimeError("AND/OR answer explosion")
        # clauses try in parallel (OR-parallelism): time = slowest child
        mine = (own_task,) if own_task is not None else ()
        sinks = tuple(child_sinks) if child_sinks else mine
        return answers, seq_total, 1 + max(cp_children, default=0), mine, sinks

    def _solve_builtin(self, goal: Term, goal_ids: set[int]) -> list[Subst]:
        b = Bindings()
        out: list[Subst] = []
        try:
            for _ in call_builtin(goal, b):
                out.append(
                    {vid: b.resolve(Var("_", vid=vid)) for vid in goal_ids}
                )
        except BuiltinError:
            return []
        return out


def _apply(sub: Subst, term: Term) -> Term:
    """Apply an id-keyed substitution to a term."""
    if isinstance(term, Var):
        value = sub.get(term.id)
        if value is None or value == term:
            return term
        return _apply(sub, value) if isinstance(value, Var) else _ground_apply(sub, value)
    if isinstance(term, Struct):
        return Struct(term.functor, tuple(_apply(sub, a) for a in term.args))
    return term


def _ground_apply(sub: Subst, term: Term) -> Term:
    if isinstance(term, Struct):
        return Struct(term.functor, tuple(_apply(sub, a) for a in term.args))
    if isinstance(term, Var):
        return _apply(sub, term)
    return term


def _join(left: Subst, right: Subst) -> Optional[Subst]:
    """Merge two answers; None on conflicting bindings.

    Shared variables must unify — we run full unification so partially
    instantiated structures (e.g. ``X = f(Y)`` vs ``X = f(a)``) join
    correctly rather than only on syntactic equality.
    """
    b = Bindings()
    for vid, val in left.items():
        if not unify(Var("_", vid=vid), val, b):
            return None
    for vid, val in right.items():
        if not unify(Var("_", vid=vid), val, b):
            return None
    merged: Subst = {}
    for vid in set(left) | set(right):
        merged[vid] = b.resolve(Var("_", vid=vid))
    return merged
