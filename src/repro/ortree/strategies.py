"""Search strategies over the OR-tree (paper section 3).

The paper contrasts three regimes:

* **depth-first** — Prolog's strategy; cheap on one processor, poor for
  parallelism;
* **breadth-first** — keeps many processors busy "but tends to work near
  the root of the tree, doing extra work before a solution is found";
* **best-first / branch-and-bound** — expand the open node with the
  least bound; with a learned bound (section 4/5) this is B-LOG.

All strategies share one frontier-driven loop so node counts are
directly comparable (experiment E1).  ``prune_bound`` implements the
branch-and-bound cutoff of section 3: "Once a solution is found, its
bound can be used to cut off any searches on other chains if their
bound is greater than the one found."
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterator, Optional

from .tree import NodeStatus, OrNode, OrTree

__all__ = [
    "SearchResult",
    "SearchStrategy",
    "depth_first",
    "breadth_first",
    "best_first",
    "iterative_deepening",
    "STRATEGIES",
    "run_strategy",
]


@dataclass
class SearchResult:
    """Outcome and work accounting of one search run."""

    strategy: str
    solutions: list[OrNode] = field(default_factory=list)
    expansions: int = 0  # nodes whose fan-out we computed
    generated: int = 0  # children created
    pruned: int = 0  # frontier nodes cut off by the incumbent bound
    expansions_to_first: Optional[int] = None
    solution_bounds: list[float] = field(default_factory=list)

    @property
    def found(self) -> bool:
        return bool(self.solutions)

    def record_solution(self, node: OrNode) -> None:
        self.solutions.append(node)
        self.solution_bounds.append(node.bound)
        if self.expansions_to_first is None:
            self.expansions_to_first = self.expansions


class SearchStrategy:
    """Base class: a frontier discipline over an :class:`OrTree`."""

    name = "abstract"

    def __init__(self, tree: OrTree, prune_bound: bool = False):
        self.tree = tree
        self.prune_bound = prune_bound
        self.result = SearchResult(strategy=self.name)
        self._incumbent: Optional[float] = None
        self._push(tree.root)

    # frontier interface ------------------------------------------------------
    def _push(self, node: OrNode) -> None:
        raise NotImplementedError

    def _pop(self) -> Optional[OrNode]:
        raise NotImplementedError

    def _has_work(self) -> bool:
        raise NotImplementedError

    # main loop -----------------------------------------------------------------
    def run(
        self,
        max_solutions: Optional[int] = None,
        max_expansions: int = 1_000_000,
    ) -> SearchResult:
        """Search until ``max_solutions`` found or the frontier is empty."""
        while self._has_work():
            if self.result.expansions >= max_expansions:
                break
            node = self._pop()
            if node is None:
                break
            if node.status is NodeStatus.SOLUTION:
                self.result.record_solution(node)
                if self.prune_bound and (
                    self._incumbent is None or node.bound < self._incumbent
                ):
                    self._incumbent = node.bound
                if max_solutions is not None and len(self.result.solutions) >= max_solutions:
                    break
                continue
            if (
                self.prune_bound
                and self._incumbent is not None
                and node.bound > self._incumbent
            ):
                self.result.pruned += 1
                continue
            before = self.tree.generated
            children = self.tree.expand(node.nid)
            self.result.expansions += 1
            self.result.generated += self.tree.generated - before
            for cid in self._order_children(children):
                self._push(self.tree.node(cid))
        return self.result

    def _order_children(self, children: list[int]) -> list[int]:
        """Push order; DFS overrides to reverse (leftmost popped first)."""
        return children


class _DepthFirst(SearchStrategy):
    """LIFO frontier; children pushed right-to-left => Prolog order."""

    name = "depth-first"

    def __init__(self, tree: OrTree, prune_bound: bool = False):
        self._stack: list[OrNode] = []
        super().__init__(tree, prune_bound)

    def _push(self, node: OrNode) -> None:
        self._stack.append(node)

    def _pop(self) -> Optional[OrNode]:
        return self._stack.pop() if self._stack else None

    def _has_work(self) -> bool:
        return bool(self._stack)

    def _order_children(self, children: list[int]) -> list[int]:
        return list(reversed(children))


class _BreadthFirst(SearchStrategy):
    """FIFO frontier."""

    name = "breadth-first"

    def __init__(self, tree: OrTree, prune_bound: bool = False):
        self._queue: list[OrNode] = []
        self._head = 0
        super().__init__(tree, prune_bound)

    def _push(self, node: OrNode) -> None:
        self._queue.append(node)

    def _pop(self) -> Optional[OrNode]:
        if self._head >= len(self._queue):
            return None
        node = self._queue[self._head]
        self._head += 1
        return node

    def _has_work(self) -> bool:
        return self._head < len(self._queue)


class _BestFirst(SearchStrategy):
    """Least-bound-first frontier; ties broken by insertion order.

    This is the B-LOG discipline: "Each processor works on the chains
    with the lowest bounds" (§3), here with one processor.  The node
    bounds come from the tree's ``weight_fn`` (the weight store).
    """

    name = "best-first"

    def __init__(self, tree: OrTree, prune_bound: bool = False):
        self._heap: list[tuple[float, int, OrNode]] = []
        self._counter = 0
        super().__init__(tree, prune_bound)

    def _push(self, node: OrNode) -> None:
        heapq.heappush(self._heap, (node.bound, self._counter, node))
        self._counter += 1

    def _pop(self) -> Optional[OrNode]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def _has_work(self) -> bool:
        return bool(self._heap)


def depth_first(
    tree: OrTree,
    max_solutions: Optional[int] = None,
    prune_bound: bool = False,
    max_expansions: int = 1_000_000,
) -> SearchResult:
    """Prolog-order depth-first search."""
    return _DepthFirst(tree, prune_bound).run(max_solutions, max_expansions)


def breadth_first(
    tree: OrTree,
    max_solutions: Optional[int] = None,
    prune_bound: bool = False,
    max_expansions: int = 1_000_000,
) -> SearchResult:
    """Level-order search."""
    return _BreadthFirst(tree, prune_bound).run(max_solutions, max_expansions)


def best_first(
    tree: OrTree,
    max_solutions: Optional[int] = None,
    prune_bound: bool = False,
    max_expansions: int = 1_000_000,
) -> SearchResult:
    """Least-bound-first search (the B-LOG discipline)."""
    return _BestFirst(tree, prune_bound).run(max_solutions, max_expansions)


def iterative_deepening(
    tree_factory,
    max_solutions: Optional[int] = None,
    start_depth: int = 2,
    max_depth: int = 64,
    step: int = 2,
) -> SearchResult:
    """Iterative-deepening DFS over fresh trees per depth limit.

    ``tree_factory(depth_limit)`` must build a fresh :class:`OrTree`
    with that ``max_depth``.  Total expansions accumulate across
    iterations (the usual ID overhead shows up in E1).
    """
    total = SearchResult(strategy="iterative-deepening")
    depth = start_depth
    while depth <= max_depth:
        tree = tree_factory(depth)
        res = _DepthFirst(tree).run(max_solutions)
        total.expansions += res.expansions
        total.generated += res.generated
        if res.solutions and total.expansions_to_first is None:
            total.expansions_to_first = total.expansions - res.expansions + (
                res.expansions_to_first or 0
            )
        if res.solutions and (
            max_solutions is None or len(res.solutions) >= max_solutions
        ):
            # Completed: no cutoff hit means the full tree fit in the limit.
            if tree.depth_cutoffs == 0 or (
                max_solutions is not None and len(res.solutions) >= max_solutions
            ):
                total.solutions = res.solutions
                total.solution_bounds = res.solution_bounds
                return total
        if tree.depth_cutoffs == 0:
            # Whole tree explored; nothing deeper exists.
            total.solutions = res.solutions
            total.solution_bounds = res.solution_bounds
            return total
        depth += step
    return total


STRATEGIES = {
    "depth-first": depth_first,
    "breadth-first": breadth_first,
    "best-first": best_first,
}


def run_strategy(
    name: str,
    tree: OrTree,
    max_solutions: Optional[int] = None,
    prune_bound: bool = False,
    max_expansions: int = 1_000_000,
) -> SearchResult:
    """Dispatch by strategy name (E1 harness hook)."""
    try:
        fn = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; have {sorted(STRATEGIES)}"
        ) from None
    return fn(tree, max_solutions, prune_bound, max_expansions)
