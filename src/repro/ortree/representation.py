"""Structure sharing vs copying — the §6 memory-representation trade.

"A multitasked processor will spend a lot of time copying data [...]
This is a consequence of the very peculiar character of the logic
variable, since most structure sharing schemes are difficult to
implement in parallel [16]."  ([16] is D.S. Warren on Prolog memory
management under flexible control.)

Our OR-tree uses *copying*: every child reifies its whole resolvent
(counted in ``tree.words_copied``).  The classic alternative is
*structure sharing* (Boyer–Moore molecules): a child stores only a
pointer to the clause skeleton plus a binding frame for the clause's
variables, and every term access dereferences through the frame chain
back toward the root.

:func:`representation_costs` prices both models on a developed tree:

* **memory** — copying pays the materialized resolvent words per node;
  sharing pays ``frame = |clause vars| + 2`` words per node (skeleton
  pointer + parent-environment pointer + one cell per variable);
* **access** — reading a term during expansion costs 1 touch per symbol
  under copying, but under sharing each variable occurrence chases an
  environment chain whose expected length grows with node depth — the
  serial pointer-walk that makes sharing "difficult to implement in
  parallel" (every processor's accesses contend on ancestor frames).

This quantifies why the paper chooses copying plus a multiply-write
memory rather than sharing (E15).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic.terms import term_size, term_vars
from .tree import NodeStatus, OrTree, QUERY_CLAUSE_ID

__all__ = ["RepresentationCosts", "representation_costs"]


@dataclass
class RepresentationCosts:
    """Aggregate memory/access costs of one developed tree, both models."""

    nodes: int = 0
    copy_memory_words: int = 0
    share_memory_words: int = 0
    copy_access_touches: int = 0
    share_access_touches: int = 0
    shared_frame_cells: int = 0  # ancestor frame cells reachable (contention)

    @property
    def memory_ratio(self) -> float:
        """copy / share — how much memory sharing saves."""
        if self.share_memory_words == 0:
            return 1.0
        return self.copy_memory_words / self.share_memory_words

    @property
    def access_ratio(self) -> float:
        """share / copy — how much dereference work sharing adds."""
        if self.copy_access_touches == 0:
            return 1.0
        return self.share_access_touches / self.copy_access_touches


def representation_costs(tree: OrTree) -> RepresentationCosts:
    """Price a developed tree under both term representations."""
    costs = RepresentationCosts()
    program = tree.program
    for node in tree.nodes:
        if node.parent is None:
            continue
        costs.nodes += 1
        resolvent_words = sum(term_size(g) for g in node.goals) + sum(
            term_size(a) for a in node.answer
        )
        # ---- copying: materialize the resolvent; access is direct
        costs.copy_memory_words += resolvent_words
        costs.copy_access_touches += resolvent_words
        # ---- sharing: skeleton ptr + env ptr + a cell per clause var
        arc = node.arc
        n_vars = 0
        if arc is not None and arc.key.kind == "pointer":
            caller, _lit, callee = arc.key.key
            if callee != QUERY_CLAUSE_ID:
                clause = program.clause(callee)
                seen = {
                    v.id
                    for t in (clause.head, *clause.body)
                    for v in term_vars(t)
                }
                n_vars = len(seen)
        frame = n_vars + 2
        costs.share_memory_words += frame
        costs.shared_frame_cells += frame * max(0, node.depth - 1)
        # every variable occurrence dereferences an env chain whose
        # expected length is ~ depth/2 (bindings arrive along the chain)
        var_occurrences = max(1, resolvent_words // 3)
        chain = max(1, node.depth // 2)
        costs.share_access_touches += resolvent_words + var_occurrences * chain
    return costs
