"""Explicit OR-tree model (paper §2, figure 3) and the search
strategies compared in §3: depth-first (Prolog), breadth-first, and
best-first branch and bound (B-LOG)."""

from .strategies import (
    STRATEGIES,
    SearchResult,
    SearchStrategy,
    best_first,
    breadth_first,
    depth_first,
    iterative_deepening,
    run_strategy,
)
from .andor import AndOrEvaluator, AndOrResult, AndOrStats
from .tree import ArcKey, NodeStatus, OrArc, OrNode, OrTree, canonical_goal

__all__ = [
    "ArcKey",
    "NodeStatus",
    "OrArc",
    "OrNode",
    "OrTree",
    "canonical_goal",
    "SearchResult",
    "SearchStrategy",
    "depth_first",
    "breadth_first",
    "best_first",
    "iterative_deepening",
    "run_strategy",
    "STRATEGIES",
    "AndOrEvaluator",
    "AndOrResult",
    "AndOrStats",
]
