"""Naive reverse — the canonical 1980s Prolog throughput benchmark.

``nrev/2`` on a list of length n performs exactly
``n(n+1)/2 + n + 1`` logical inferences, so DEC-10-era systems quoted
their speed in **LIPS** (logical inferences per second) measured on
nrev/30.  We reproduce the benchmark to anchor our baseline engine in
the paper's contemporary terms (a DEC-10 Prolog did ~30 kLIPS).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..logic.program import Program
from ..logic.solver import Solver
from ..logic.terms import Int, Term, list_to_python, make_list

__all__ = ["NREV_SOURCE", "nrev_program", "nrev_query", "nrev_inferences", "run_nrev"]

NREV_SOURCE = """\
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).

app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
"""


def nrev_program() -> Program:
    return Program.from_source(NREV_SOURCE)


def nrev_query(n: int) -> tuple[str, Term]:
    """The query text and the input list term for nrev of length ``n``."""
    items = [Int(i) for i in range(1, n + 1)]
    lst = make_list(items)
    return f"nrev({lst}, R)", lst


def nrev_inferences(n: int) -> int:
    """The textbook inference count for nrev/n: n(n+1)/2 + n + 1."""
    return n * (n + 1) // 2 + n + 1


@dataclass
class NrevResult:
    n: int
    reversed_ok: bool
    resolutions: int
    seconds: float

    @property
    def lips(self) -> float:
        """Logical inferences (successful resolutions) per second."""
        return self.resolutions / self.seconds if self.seconds > 0 else 0.0


def run_nrev(n: int = 30, repeats: int = 10) -> NrevResult:
    """Run nrev/n ``repeats`` times; returns aggregate LIPS."""
    program = nrev_program()
    query, _ = nrev_query(n)
    solver = Solver(program, max_depth=4 * n + 32)
    # warm check: the answer really is the reverse
    sol = solver.solve_all(query, max_solutions=1)[0]
    got = [t.value for t in list_to_python(sol["R"])]
    ok = got == list(range(n, 0, -1))
    solver.stats.reset()
    t0 = time.perf_counter()
    for _ in range(repeats):
        solver.solve_all(query, max_solutions=1)
    elapsed = time.perf_counter() - t0
    return NrevResult(
        n=n,
        reversed_ok=ok,
        resolutions=solver.stats.resolutions,
        seconds=elapsed,
    )
