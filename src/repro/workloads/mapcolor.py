"""Map coloring — the deterministic-conjunction workload for §7.

Coloring adjacent regions with ``\\=`` constraints gives conjunctions
whose goals *share* variables (the hard AND-parallel case) alongside
independent color-generator goals (the easy case); E8 measures the
independence detector and join plans on it.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..logic.program import Program

__all__ = ["MapInstance", "map_coloring_program", "AUSTRALIA"]

# the classic 7-region Australia instance (adjacency pairs)
AUSTRALIA = [
    ("wa", "nt"),
    ("wa", "sa"),
    ("nt", "sa"),
    ("nt", "q"),
    ("sa", "q"),
    ("sa", "nsw"),
    ("sa", "v"),
    ("q", "nsw"),
    ("nsw", "v"),
]


@dataclass
class MapInstance:
    """A coloring workload: program + adjacency graph + query."""

    program: Program
    source: str
    graph: "nx.Graph"
    regions: list[str]
    colors: list[str]
    query: str


def map_coloring_program(
    adjacency: list[tuple[str, str]] | None = None,
    colors: list[str] | None = None,
) -> MapInstance:
    """Build the coloring program for an adjacency list.

    ``coloring(R1, ..., Rk)`` succeeds with one color variable per
    region; the body generates colors (independent goals) and checks
    every adjacency with ``\\=`` (shared-variable goals).
    """
    adjacency = adjacency if adjacency is not None else AUSTRALIA
    colors = colors if colors is not None else ["red", "green", "blue"]
    g = nx.Graph()
    g.add_edges_from(adjacency)
    regions = sorted(g.nodes)
    var_of = {r: r.upper() for r in regions}
    color_facts = "\n".join(f"color({c})." for c in colors)
    gen_goals = [f"color({var_of[r]})" for r in regions]
    check_goals = [f"{var_of[a]} \\= {var_of[b]}" for a, b in adjacency]
    head = f"coloring({', '.join(var_of[r] for r in regions)})"
    body = ", ".join(gen_goals + check_goals)
    source = f"{color_facts}\n{head} :- {body}.\n"
    query = f"coloring({', '.join(var_of[r] for r in regions)})"
    return MapInstance(
        program=Program.from_source(source),
        source=source,
        graph=g,
        regions=regions,
        colors=colors,
        query=query,
    )
