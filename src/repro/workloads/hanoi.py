"""Towers of Hanoi — the classic deterministic recursion benchmark.

A single-solution, deeply recursive program: ``hanoi(N, Moves)`` binds
``Moves`` to the 2^N - 1 move list.  Deterministic programs are where
§7 expects AND-parallelism (not OR-parallelism) to pay, making Hanoi a
useful contrast workload to N-queens in the E9/E12 suites.
"""

from __future__ import annotations

from ..logic.program import Program
from ..logic.solver import Solver
from ..logic.terms import Term, list_to_python

__all__ = ["HANOI_SOURCE", "hanoi_program", "hanoi_query", "solve_hanoi", "hanoi_moves"]

HANOI_SOURCE = """\
hanoi(N, Moves) :- move(N, left, right, middle, Moves).

move(0, _, _, _, []).
move(N, From, To, Via, Moves) :-
    N > 0,
    M is N - 1,
    move(M, From, Via, To, Before),
    move(M, Via, To, From, After),
    app(Before, [mv(From, To)|After], Moves).

app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
"""


def hanoi_program() -> Program:
    return Program.from_source(HANOI_SOURCE)


def hanoi_query(n: int) -> str:
    return f"hanoi({n}, Moves)"


def hanoi_moves(n: int) -> int:
    """The move count 2^n - 1."""
    return 2**n - 1


def solve_hanoi(n: int) -> list[tuple[str, str]]:
    """Solve n-disc Hanoi; returns [(from peg, to peg), ...]."""
    if n < 0:
        raise ValueError("disc count must be non-negative")
    solver = Solver(hanoi_program(), max_depth=2 ** (n + 2) + 16)
    sols = solver.solve_all(hanoi_query(n), max_solutions=1)
    if not sols:
        raise RuntimeError("hanoi query failed")
    moves = []
    for item in list_to_python(sols[0]["Moves"]):
        moves.append((str(item.args[0]), str(item.args[1])))
    return moves
