"""Synthetic OR-tree workloads with planted solutions and failures.

These control exactly the properties the B-LOG arguments depend on:
branching factor (frontier width → parallel speedup, E5/E6), depth
(chain length → the A constant), and the *failure fraction* (how much
of the tree is dead — the part learned weights let best-first skip,
E1/E3).

The generated program is a layered predicate chain::

    l0(X) :- l1_b(X).      % one clause per branch b
    ...
    lk_b(leaf_b).          % only on live branches

Branches marked dead carry no facts at the bottom, so every chain into
them fails after ``depth`` resolutions — worst case for uninformed
search, exactly one infinite weight for B-LOG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..logic.program import Program

__all__ = ["SyntheticTree", "synthetic_tree", "comb_tree"]


@dataclass
class SyntheticTree:
    """A generated layered OR-tree program."""

    program: Program
    source: str
    branching: int
    depth: int
    n_solutions: int
    n_dead_branches: int
    query: str = "l0(W)"


def synthetic_tree(
    branching: int = 3,
    depth: int = 4,
    dead_fraction: float = 0.0,
    seed: int = 0,
) -> SyntheticTree:
    """A uniform tree of the given branching/depth.

    Leaf predicates on a ``dead_fraction`` of root-level subtrees have
    no facts: every chain through them fails at full depth.  Live
    leaves each contribute one solution.
    """
    if branching < 1 or depth < 1:
        raise ValueError("branching and depth must be >= 1")
    if not 0.0 <= dead_fraction < 1.0:
        raise ValueError("dead_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    lines: list[str] = []
    # level 0 fans into `branching` subtrees; each subtree is uniform
    n_dead = int(round(dead_fraction * branching))
    dead = set(rng.choice(branching, size=n_dead, replace=False)) if n_dead else set()
    for b in range(branching):
        lines.append(f"l0(X) :- s{b}_1(X).")
    for b in range(branching):
        for lvl in range(1, depth):
            for _ in range(branching):
                lines.append(f"s{b}_{lvl}(X) :- s{b}_{lvl + 1}(X).")
        if b not in dead:
            lines.append(f"s{b}_{depth}(leaf{b}).")
    source = "\n".join(lines) + "\n"
    live = branching - len(dead)
    n_solutions = live * branching ** (depth - 1)
    return SyntheticTree(
        program=Program.from_source(source),
        source=source,
        branching=branching,
        depth=depth,
        n_solutions=n_solutions,
        n_dead_branches=len(dead),
    )


def comb_tree(teeth: int = 8, tooth_depth: int = 6, solution_tooth: int = -1) -> SyntheticTree:
    """A "comb": many deep teeth, exactly one of which has a solution.

    Depth-first search in tooth order pays ``tooth_depth`` per wrong
    tooth; learned weights jump straight to the right one — the
    sharpest E3 illustration.  ``solution_tooth`` indexes the live
    tooth (default: the last one, worst case for DFS).
    """
    if teeth < 1 or tooth_depth < 1:
        raise ValueError("teeth and tooth_depth must be >= 1")
    live = solution_tooth % teeth
    lines = []
    for t in range(teeth):
        lines.append(f"l0(X) :- t{t}_1(X).")
    for t in range(teeth):
        for lvl in range(1, tooth_depth):
            lines.append(f"t{t}_{lvl}(X) :- t{t}_{lvl + 1}(X).")
        if t == live:
            lines.append(f"t{t}_{tooth_depth}(prize).")
    source = "\n".join(lines) + "\n"
    return SyntheticTree(
        program=Program.from_source(source),
        source=source,
        branching=teeth,
        depth=tooth_depth,
        n_solutions=1,
        n_dead_branches=teeth - 1,
    )
