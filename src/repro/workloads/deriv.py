"""Symbolic differentiation — Warren's classic term-heavy benchmark.

``d/3`` rewrites expression trees (``plus``, ``times``, ``power``,
constants, the variable ``x``), producing deeply nested structures —
the workload that stresses unification and term copying (large
``term_size`` per resolution), complementing nrev's list cells.
"""

from __future__ import annotations

from ..logic.program import Program
from ..logic.solver import Solver
from ..logic.terms import Term

__all__ = ["DERIV_SOURCE", "deriv_program", "differentiate", "nested_expr"]

DERIV_SOURCE = """\
d(x, 1).
d(num(_), num(0)).
d(plus(A, B), plus(DA, DB)) :- d(A, DA), d(B, DB).
d(minus(A, B), minus(DA, DB)) :- d(A, DA), d(B, DB).
d(times(A, B), plus(times(A, DB), times(DA, B))) :- d(A, DA), d(B, DB).
d(power(x, N), times(num(N), power(x, M))) :- M is N - 1.
"""


def deriv_program() -> Program:
    return Program.from_source(DERIV_SOURCE)


def nested_expr(depth: int) -> str:
    """A nested expression: times(plus(x, num(k)), ...) of given depth."""
    expr = "x"
    for k in range(depth):
        expr = f"times(plus(x, num({k})), {expr})"
    return expr


def differentiate(expr_src: str) -> Term:
    """Differentiate ``expr_src`` with respect to x; returns the term."""
    solver = Solver(deriv_program(), max_depth=512)
    sols = solver.solve_all(f"d({expr_src}, D)", max_solutions=1)
    if not sols:
        raise ValueError(f"cannot differentiate {expr_src!r}")
    return sols[0]["D"]
