"""The paper's family database (figure 1) and scalable variants.

``FIGURE1_SOURCE`` is the exact program of figure 1 (ten facts, two
grandfather rules).  :func:`scaled_family` generates a random family
forest of configurable size with the same predicate shapes (``f``/``m``
facts; ``gf``, ``gm``, ``anc``, ``sib`` rules) so the figure-1 workload
can be scaled for E1/E3/E5 sweeps, and
:func:`query_sequence` produces the "succession of similar queries"
(§5 sessions) over it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..logic.program import Program

__all__ = [
    "FIGURE1_SOURCE",
    "FIGURE1_QUERY",
    "family_program",
    "FamilyInstance",
    "scaled_family",
    "query_sequence",
]

FIGURE1_SOURCE = """\
% Rules (figure 1)
gf(X,Z) :- f(X,Y), f(Y,Z).
gf(X,Z) :- f(X,Y), m(Y,Z).
% Facts (figure 1)
f(curt,elain).
f(sam,larry).
f(dan,pat).
f(larry,den).
f(pat,john).
f(larry,doug).
m(elain,john).
m(marian,elain).
m(peg,den).
m(peg,doug).
"""

FIGURE1_QUERY = "gf(sam,G)"

RULES = """\
gf(X,Z) :- f(X,Y), f(Y,Z).
gf(X,Z) :- f(X,Y), m(Y,Z).
gm(X,Z) :- m(X,Y), f(Y,Z).
gm(X,Z) :- m(X,Y), m(Y,Z).
anc(X,Y) :- f(X,Y).
anc(X,Y) :- m(X,Y).
anc(X,Z) :- f(X,Y), anc(Y,Z).
anc(X,Z) :- m(X,Y), anc(Y,Z).
sib(X,Y) :- f(P,X), f(P,Y), X \\= Y.
"""


def family_program() -> Program:
    """The exact figure-1 program."""
    return Program.from_source(FIGURE1_SOURCE)


@dataclass
class FamilyInstance:
    """A generated family workload: program + people by generation."""

    program: Program
    source: str
    generations: list[list[str]]
    fathers: dict[str, str]  # child -> father
    mothers: dict[str, str]

    @property
    def people(self) -> list[str]:
        return [p for gen in self.generations for p in gen]

    @property
    def roots(self) -> list[str]:
        return list(self.generations[0])


def scaled_family(
    generations: int = 4,
    children_per_couple: int = 2,
    couples_per_generation: int = 2,
    seed: int = 0,
) -> FamilyInstance:
    """Generate a family forest with the figure-1 predicate shapes.

    Each generation pairs people into couples; each couple has
    ``children_per_couple`` children, producing ``f``/``m`` facts, all
    under the standard rules.  Deterministic for a given seed.
    """
    if generations < 2:
        raise ValueError("need at least two generations")
    rng = np.random.default_rng(seed)
    gens: list[list[str]] = []
    fathers: dict[str, str] = {}
    mothers: dict[str, str] = {}
    facts: list[str] = []
    gens.append(
        [f"g0p{i}" for i in range(2 * couples_per_generation)]
    )
    for g in range(1, generations):
        prev = gens[-1]
        this: list[str] = []
        # pair previous generation into couples (shuffle for variety)
        order = list(prev)
        rng.shuffle(order)
        couples = [
            (order[2 * i], order[2 * i + 1]) for i in range(len(order) // 2)
        ]
        for ci, (dad, mom) in enumerate(couples):
            for k in range(children_per_couple):
                child = f"g{g}c{ci}k{k}"
                this.append(child)
                fathers[child] = dad
                mothers[child] = mom
                facts.append(f"f({dad},{child}).")
                facts.append(f"m({mom},{child}).")
        gens.append(this)
    source = RULES + "\n" + "\n".join(facts) + "\n"
    return FamilyInstance(
        program=Program.from_source(source),
        source=source,
        generations=gens,
        fathers=fathers,
        mothers=mothers,
    )


def query_sequence(
    instance: FamilyInstance,
    n_queries: int = 8,
    predicate: str = "gf",
    seed: int = 1,
) -> list[str]:
    """A session's worth of similar queries: same predicate, subjects
    drawn from the early generations (§5: "a second and third query
    that is similar to the first one with some minor changes")."""
    rng = np.random.default_rng(seed)
    pool = [p for gen in instance.generations[:-2] for p in gen] or instance.people
    subjects = rng.choice(pool, size=n_queries, replace=True)
    return [f"{predicate}({s},G)" for s in subjects]
