"""Workload generators: the figure-1 family database and scaled
variants, synthetic OR-trees with planted failures, N-queens, graph
reachability, and map coloring."""

from .family import (
    FIGURE1_QUERY,
    FIGURE1_SOURCE,
    FamilyInstance,
    family_program,
    query_sequence,
    scaled_family,
)
from .graphs import GraphInstance, grid_program, random_digraph_program
from .hanoi import (
    HANOI_SOURCE,
    hanoi_moves,
    hanoi_program,
    hanoi_query,
    solve_hanoi,
)
from .mapcolor import AUSTRALIA, MapInstance, map_coloring_program
from .nqueens import board_from_term, nqueens_program, nqueens_query, solve_nqueens
from .nrev import NREV_SOURCE, nrev_inferences, nrev_program, nrev_query, run_nrev
from .deriv import DERIV_SOURCE, deriv_program, differentiate, nested_expr
from .puzzle import PUZZLE_SOURCE, puzzle_program, puzzle_query, solve_puzzle
from .synthetic import SyntheticTree, comb_tree, synthetic_tree

__all__ = [
    "FIGURE1_SOURCE",
    "FIGURE1_QUERY",
    "family_program",
    "FamilyInstance",
    "scaled_family",
    "query_sequence",
    "SyntheticTree",
    "synthetic_tree",
    "comb_tree",
    "nqueens_program",
    "nqueens_query",
    "solve_nqueens",
    "board_from_term",
    "NREV_SOURCE",
    "nrev_program",
    "nrev_query",
    "nrev_inferences",
    "run_nrev",
    "DERIV_SOURCE",
    "deriv_program",
    "differentiate",
    "nested_expr",
    "PUZZLE_SOURCE",
    "puzzle_program",
    "puzzle_query",
    "solve_puzzle",
    "GraphInstance",
    "HANOI_SOURCE",
    "hanoi_program",
    "hanoi_query",
    "hanoi_moves",
    "solve_hanoi",
    "random_digraph_program",
    "grid_program",
    "MapInstance",
    "map_coloring_program",
    "AUSTRALIA",
]
