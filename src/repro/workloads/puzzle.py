"""Cryptarithmetic — generate-and-test constraint search.

``AB + BA = CAC`` with distinct non-zero digits: a pure
generate-and-test workload whose OR fan-out comes entirely from
``between/3`` generators and whose pruning comes from arithmetic
builtins — the shape where goal-ordering (selection rules) and learned
weights interact with builtin tests.  The instance has exactly one
solution (A=2, B=9, C=1: 29 + 92 = 121).
"""

from __future__ import annotations

from ..logic.program import Program
from ..logic.solver import Solver

__all__ = ["PUZZLE_SOURCE", "puzzle_program", "puzzle_query", "solve_puzzle"]

PUZZLE_SOURCE = """\
% AB + BA = CAC, distinct non-zero digits
puzzle(A, B, C) :-
    between(1, 9, A),
    between(1, 9, B),
    A \\= B,
    S is (10*A + B) + (10*B + A),
    C is S // 100,
    C >= 1,
    A \\= C,
    B \\= C,
    S =:= 100*C + 10*A + C.
"""


def puzzle_program() -> Program:
    return Program.from_source(PUZZLE_SOURCE)


def puzzle_query() -> str:
    return "puzzle(A, B, C)"


def solve_puzzle() -> list[tuple[int, int, int]]:
    """All (A, B, C) solutions of AB + BA = CAC."""
    solver = Solver(puzzle_program(), max_depth=64)
    out = []
    for sol in solver.solve_all(puzzle_query()):
        out.append((sol["A"].value, sol["B"].value, sol["C"].value))
    return out
