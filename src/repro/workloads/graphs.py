"""Graph-reachability workloads: edge facts + path rules.

Reachability over random digraphs exercises deep recursion and shared
substructure (the same ``path`` arc reached along many chains — the
weight-sharing requirement 1 of §4), and grid graphs give controllable
diameter for depth-bound experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..logic.program import Program

__all__ = ["GraphInstance", "random_digraph_program", "grid_program"]

PATH_RULES = """\
path(X,Y) :- edge(X,Y).
path(X,Z) :- edge(X,Y), path(Y,Z).
"""


@dataclass
class GraphInstance:
    """A graph workload: program + the underlying networkx graph."""

    program: Program
    source: str
    graph: "nx.DiGraph"

    def reachable_from(self, node: str) -> set[str]:
        """Ground truth via networkx (oracle for tests)."""
        return set(nx.descendants(self.graph, node))


def random_digraph_program(
    n_nodes: int = 12, edge_prob: float = 0.2, seed: int = 0, acyclic: bool = True
) -> GraphInstance:
    """A random digraph with ``path/2`` rules.

    ``acyclic`` keeps the program terminating under plain depth-first
    search (edges only go from lower to higher node index); cyclic
    instances exercise the engine's depth bound instead.
    """
    rng = np.random.default_rng(seed)
    g = nx.DiGraph()
    names = [f"n{i}" for i in range(n_nodes)]
    g.add_nodes_from(names)
    facts = []
    for i in range(n_nodes):
        for j in range(n_nodes):
            if i == j:
                continue
            if acyclic and j <= i:
                continue
            if rng.random() < edge_prob:
                g.add_edge(names[i], names[j])
                facts.append(f"edge({names[i]},{names[j]}).")
    source = PATH_RULES + "\n".join(facts) + "\n"
    return GraphInstance(Program.from_source(source), source, g)


def grid_program(width: int = 4, height: int = 4) -> GraphInstance:
    """A directed grid (right/down moves): diameter = width+height-2."""
    g = nx.DiGraph()
    facts = []

    def name(x: int, y: int) -> str:
        return f"c{x}_{y}"

    for x in range(width):
        for y in range(height):
            g.add_node(name(x, y))
            if x + 1 < width:
                g.add_edge(name(x, y), name(x + 1, y))
                facts.append(f"edge({name(x, y)},{name(x + 1, y)}).")
            if y + 1 < height:
                g.add_edge(name(x, y), name(x, y + 1))
                facts.append(f"edge({name(x, y)},{name(x, y + 1)}).")
    source = PATH_RULES + "\n".join(facts) + "\n"
    return GraphInstance(Program.from_source(source), source, g)
