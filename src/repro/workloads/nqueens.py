"""N-queens as a logic program — the classic non-deterministic search
workload (OR-parallelism "is specially effective in speeding up
non-deterministic programs, specially when more than one solution is
needed", §7).

The program places queens column by column with ``between/3``
generating rows and arithmetic builtins checking diagonals; the OR
fan-out at each column is the board size, giving wide frontiers for
the parallel experiments.
"""

from __future__ import annotations

from ..logic.program import Program
from ..logic.solver import Solver
from ..logic.terms import Term, list_to_python

__all__ = ["nqueens_program", "nqueens_query", "solve_nqueens", "board_from_term"]


def nqueens_program(n: int) -> Program:
    """Build the N-queens program for an ``n``×``n`` board.

    ``queens(Board)`` binds ``Board`` to a list of row numbers, one per
    column.  ``safe`` checks the partial placement; ``noattack``
    verifies diagonals and rows arithmetically.
    """
    if n < 1:
        raise ValueError("board size must be >= 1")
    src = f"""
queens(Qs) :- place({n}, [], Qs).

place(0, Acc, Acc).
place(N, Acc, Qs) :-
    N > 0,
    between(1, {n}, Row),
    noattack(Row, Acc, 1),
    M is N - 1,
    place(M, [Row|Acc], Qs).

noattack(_, [], _).
noattack(Row, [Q|Rest], Dist) :-
    Row =\\= Q,
    Diff is Row - Q,
    NegDiff is Q - Row,
    Diff =\\= Dist,
    NegDiff =\\= Dist,
    D2 is Dist + 1,
    noattack(Row, Rest, D2).
"""
    return Program.from_source(src)


def nqueens_query() -> str:
    return "queens(Qs)"


def board_from_term(term: Term) -> list[int]:
    """Convert a solved ``Qs`` list term to Python row numbers."""
    from ..logic.terms import Int

    rows = []
    for item in list_to_python(term):
        if not isinstance(item, Int):
            raise ValueError(f"non-integer board entry {item}")
        rows.append(item.value)
    return rows


def solve_nqueens(n: int, max_solutions: int | None = None) -> list[list[int]]:
    """All (or the first ``max_solutions``) N-queens boards via the
    sequential baseline."""
    program = nqueens_program(n)
    solver = Solver(program, max_depth=8 * n + 32)
    boards = []
    for sol in solver.solve(nqueens_query(), max_solutions=max_solutions):
        boards.append(board_from_term(sol["Qs"]))
    return boards
