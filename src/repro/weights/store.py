"""The weight store: per-pointer weights with the paper's encodings (§5).

"During a session, we aim to set the bounds of all successful queries
to the same constant, which we arbitrarily set to a number N.  Each
pointer will have an 'unknown' weight, initialized to N+1 (which will
be larger than a known solution that has a bound N).  [...] If the
longest chain in a search tree is A arcs, we code 'infinity' as A*N."

Weights are keyed by :class:`~repro.ortree.tree.ArcKey` — the database
pointers of figure 4.  Builtin arcs are deterministic decisions and
carry weight 0 (probability 1 → -log2(1) = 0).

A weight is in one of three states:

* ``UNKNOWN``  — never informed; numeric value N+1;
* ``KNOWN``    — set by a successful search; numeric value stored;
* ``INFINITE`` — set by a failed search; numeric value A·N.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional

from ..ortree.tree import ArcKey

__all__ = ["WeightState", "WeightEntry", "WeightStore"]


class WeightState(enum.Enum):
    UNKNOWN = "unknown"
    KNOWN = "known"
    INFINITE = "infinite"


@dataclass(frozen=True)
class WeightEntry:
    state: WeightState
    value: float


class WeightStore:
    """Pointer-weight database (the figure-4 weights, logically).

    Parameters
    ----------
    n:
        The target bound N every successful chain should sum to.
    a:
        The longest chain length A; infinity encodes as ``a * n``.
    """

    def __init__(self, n: float = 16.0, a: int = 16):
        if n <= 0:
            raise ValueError("N must be positive")
        if a < 2:
            raise ValueError("A must be at least 2 for A*N > N+1 to hold")
        self.n = float(n)
        self.a = int(a)
        self._entries: dict[ArcKey, WeightEntry] = {}
        #: Monotonic mutation counter.  Every write that actually changes
        #: the store (set_known / set_infinite / forget / clear) bumps it,
        #: so callers — notably the serving layer's answer cache — can
        #: detect "weights moved" (e.g. after a session merge) with an
        #: integer compare instead of deep-comparing entries.
        self.generation: int = 0
        #: Per-key journal: the generation at which each key was last
        #: written (including drops back to UNKNOWN, which stay in the
        #: journal as tombstones).  This is what lets a reader ask "what
        #: changed since generation G?" — the basis of the serving
        #: layer's delta shipping to process lanes and of touched-keys
        #: session merges.
        self._modified: dict[ArcKey, int] = {}

    # -- encodings ---------------------------------------------------------
    @property
    def unknown_value(self) -> float:
        return self.n + 1.0

    @property
    def infinity_value(self) -> float:
        return self.a * self.n

    # -- reads ----------------------------------------------------------------
    def entry(self, key: ArcKey) -> WeightEntry:
        """The entry for ``key``; builtins are KNOWN 0, else UNKNOWN N+1."""
        e = self._entries.get(key)
        if e is not None:
            return e
        if key.kind == "builtin":
            return WeightEntry(WeightState.KNOWN, 0.0)
        return WeightEntry(WeightState.UNKNOWN, self.unknown_value)

    def weight(self, key: ArcKey) -> float:
        """Numeric weight used for bounds (the ``weight_fn`` hook)."""
        return self.entry(key).value

    def state(self, key: ArcKey) -> WeightState:
        return self.entry(key).state

    def is_known(self, key: ArcKey) -> bool:
        return self.state(key) is WeightState.KNOWN

    def is_infinite(self, key: ArcKey) -> bool:
        return self.state(key) is WeightState.INFINITE

    def is_unknown(self, key: ArcKey) -> bool:
        return self.state(key) is WeightState.UNKNOWN

    def keys(self) -> Iterator[ArcKey]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: ArcKey) -> bool:
        return key in self._entries

    # -- writes -------------------------------------------------------------------
    def set_known(self, key: ArcKey, value: float) -> None:
        """Record a known (successful-search) weight; clamped at >= 0."""
        if key.kind == "builtin":
            return  # builtins stay at probability 1
        self._entries[key] = WeightEntry(WeightState.KNOWN, max(0.0, float(value)))
        self.generation += 1
        self._modified[key] = self.generation

    def set_infinite(self, key: ArcKey) -> None:
        """Record a failure weight (A·N encoding)."""
        if key.kind == "builtin":
            return
        self._entries[key] = WeightEntry(WeightState.INFINITE, self.infinity_value)
        self.generation += 1
        self._modified[key] = self.generation

    def forget(self, key: ArcKey) -> None:
        """Drop a key back to UNKNOWN."""
        if self._entries.pop(key, None) is not None:
            self.generation += 1
            self._modified[key] = self.generation

    def clear(self) -> None:
        if self._entries:
            self.generation += 1
            for key in self._entries:
                self._modified[key] = self.generation
        self._entries.clear()

    # -- change tracking ----------------------------------------------------
    def modified_since(self, generation: int) -> list[ArcKey]:
        """Keys written strictly after ``generation`` (current-timeline).

        Includes keys that were dropped back to UNKNOWN (``forget`` /
        ``clear``): a reader that mirrors this store needs the drop as
        much as it needs a new value.
        """
        return [k for k, g in self._modified.items() if g > generation]

    # -- copies / views -----------------------------------------------------------
    def copy(self) -> "WeightStore":
        """Independent copy (the session-local store of §5).

        The copy starts at the parent's generation and counts its own
        mutations from there; the two counters evolve independently.
        """
        out = WeightStore(self.n, self.a)
        out._entries = dict(self._entries)
        out.generation = self.generation
        out._modified = dict(self._modified)
        return out

    def snapshot(self) -> dict[ArcKey, WeightEntry]:
        return dict(self._entries)

    def weight_fn(self):
        """A callable suitable as :class:`OrTree`'s ``weight_fn``."""
        return self.weight

    def __repr__(self) -> str:
        known = sum(1 for e in self._entries.values() if e.state is WeightState.KNOWN)
        inf = sum(1 for e in self._entries.values() if e.state is WeightState.INFINITE)
        return f"WeightStore(N={self.n:g}, A={self.a}, known={known}, infinite={inf})"
