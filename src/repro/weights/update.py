"""Weight update rules on search outcomes (paper §5).

Failure rule — "If a failed search occurs and it does not already have
an arc with infinite weight in the chain, we will set any one of the
unknown weights to infinity.  The choice [...] should be the unknown
nearest the leaf in the chain."

Success rule — "If a solution to the query is found, we will reset all
unknown or infinite weights as follows: if the known weights add up to
a number greater than N, set them to 0, else if there are k unknown or
infinite weights, set them equally so that the sum of weights is N,
i.e. if the known weights add up to M, set them to (N-M)/k."

Both rules take the chain's arcs root→leaf (``OrTree.chain_arcs``).
Builtin arcs are transparent (always weight 0, never updated).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..ortree.tree import ArcKey, OrArc
from .store import WeightState, WeightStore

__all__ = ["UpdateLog", "on_failure", "on_success", "apply_outcome"]


@dataclass
class UpdateLog:
    """What an update changed (for tests and the session audit trail)."""

    kind: str  # "success" | "failure" | "noop"
    set_known: list[tuple[ArcKey, float]] = field(default_factory=list)
    set_infinite: list[ArcKey] = field(default_factory=list)
    anomaly: bool = False  # §5: known weights exceeded N (clamped to 0)


def _updatable(arcs: Sequence[OrArc]) -> list[ArcKey]:
    """Distinct non-builtin arc keys in chain order (root→leaf)."""
    out: list[ArcKey] = []
    seen: set[ArcKey] = set()
    for arc in arcs:
        if arc.key.kind == "builtin":
            continue
        if arc.key not in seen:
            seen.add(arc.key)
            out.append(arc.key)
    return out


def on_failure(store: WeightStore, arcs: Sequence[OrArc]) -> UpdateLog:
    """Apply the failure rule to a failed chain.

    Sets the UNKNOWN weight nearest the leaf to infinity — unless the
    chain already contains an infinite arc (the failure is already
    "priced in") or contains no unknown arc (nothing safe to blame:
    overriding a known weight would contradict a recorded success, the
    pathological case §4 warns about).
    """
    keys = _updatable(arcs)
    log = UpdateLog(kind="failure")
    if any(store.is_infinite(k) for k in keys):
        log.kind = "noop"
        return log
    for key in reversed(keys):  # nearest the leaf first
        if store.is_unknown(key):
            store.set_infinite(key)
            log.set_infinite.append(key)
            return log
    log.kind = "noop"
    log.anomaly = True  # all-known failed chain: inconsistent weights
    return log


def on_success(store: WeightStore, arcs: Sequence[OrArc]) -> UpdateLog:
    """Apply the success rule to a solution chain.

    Known weights sum to M.  If M > N, the unknown/infinite arcs get 0
    (anomaly: the chain already overshoots the target bound).  Else the
    k unknown-or-infinite arcs each get (N-M)/k, making the chain sum
    exactly N.
    """
    keys = _updatable(arcs)
    log = UpdateLog(kind="success")
    known_sum = sum(store.weight(k) for k in keys if store.is_known(k))
    resettable = [k for k in keys if not store.is_known(k)]
    if not resettable:
        log.kind = "noop"
        return log
    if known_sum > store.n:
        log.anomaly = True
        value = 0.0
    else:
        value = (store.n - known_sum) / len(resettable)
    for key in resettable:
        store.set_known(key, value)
        log.set_known.append((key, value))
    return log


def apply_outcome(store: WeightStore, arcs: Sequence[OrArc], solved: bool) -> UpdateLog:
    """Dispatch to the success or failure rule."""
    return on_success(store, arcs) if solved else on_failure(store, arcs)
