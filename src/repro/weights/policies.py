"""Alternative bound-update policies (§8: "evaluation of alternative
bound generation and updating algorithms ... is in progress").

The paper commits to two specific choices and flags both as open:

* **failure blame** — which unknown weight takes the infinity.  "The
  choice of which weight to set to 'infinity' is similar to the
  backtracking problem in Prolog; we think it should be the unknown
  nearest the leaf" (§5).  Alternatives here: nearest the *root*
  (aggressive: kills the whole subtree's entry arc), and *all*
  unknowns (maximally aggressive).
* **success distribution** — how (N−M) spreads over the k unknown
  arcs.  The paper divides equally; alternatives: *leaf-weighted*
  (deeper arcs get more — keeps shared prefixes cheap, matching the
  intuition that early decisions are reused by many chains) and
  *root-weighted* (the mirror image).

E11 measures all combinations; these functions generalize
:mod:`repro.weights.update` and reduce to it at the defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

from ..ortree.tree import ArcKey, OrArc
from .store import WeightStore
from .update import UpdateLog, _updatable

__all__ = [
    "BlamePolicy",
    "DistributePolicy",
    "on_failure_policy",
    "on_success_policy",
    "POLICY_COMBINATIONS",
]

BlamePolicy = Literal["leafmost", "rootmost", "all"]
DistributePolicy = Literal["equal", "leaf-weighted", "root-weighted"]

POLICY_COMBINATIONS: list[tuple[BlamePolicy, DistributePolicy]] = [
    (blame, dist)
    for blame in ("leafmost", "rootmost", "all")
    for dist in ("equal", "leaf-weighted", "root-weighted")
]


def on_failure_policy(
    store: WeightStore,
    arcs: Sequence[OrArc],
    blame: BlamePolicy = "leafmost",
) -> UpdateLog:
    """Failure rule with a configurable blame target.

    ``leafmost`` is the paper's rule; ``rootmost`` blames the earliest
    unknown; ``all`` marks every unknown on the chain infinite.
    """
    keys = _updatable(arcs)
    log = UpdateLog(kind="failure")
    if any(store.is_infinite(k) for k in keys):
        log.kind = "noop"
        return log
    unknowns = [k for k in keys if store.is_unknown(k)]
    if not unknowns:
        log.kind = "noop"
        log.anomaly = True
        return log
    if blame == "leafmost":
        targets = [unknowns[-1]]
    elif blame == "rootmost":
        targets = [unknowns[0]]
    elif blame == "all":
        targets = unknowns
    else:
        raise ValueError(f"unknown blame policy {blame!r}")
    for key in targets:
        store.set_infinite(key)
        log.set_infinite.append(key)
    return log


def on_success_policy(
    store: WeightStore,
    arcs: Sequence[OrArc],
    distribute: DistributePolicy = "equal",
) -> UpdateLog:
    """Success rule with a configurable distribution of (N−M).

    Weights over the k resettable arcs (in chain order, root→leaf):

    * ``equal``          — (N−M)/k each (the paper);
    * ``leaf-weighted``  — proportional to 1..k (deeper gets more);
    * ``root-weighted``  — proportional to k..1.
    """
    keys = _updatable(arcs)
    log = UpdateLog(kind="success")
    known_sum = sum(store.weight(k) for k in keys if store.is_known(k))
    resettable = [k for k in keys if not store.is_known(k)]
    if not resettable:
        log.kind = "noop"
        return log
    budget = store.n - known_sum
    if budget < 0:
        log.anomaly = True
        for key in resettable:
            store.set_known(key, 0.0)
            log.set_known.append((key, 0.0))
        return log
    k = len(resettable)
    if distribute == "equal":
        shares = [1.0] * k
    elif distribute == "leaf-weighted":
        shares = [float(i + 1) for i in range(k)]
    elif distribute == "root-weighted":
        shares = [float(k - i) for i in range(k)]
    else:
        raise ValueError(f"unknown distribute policy {distribute!r}")
    total = sum(shares)
    for key, share in zip(resettable, shares):
        value = budget * share / total
        store.set_known(key, value)
        log.set_known.append((key, value))
    return log
