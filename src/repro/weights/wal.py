"""Write-ahead journaling and snapshots for the global weight store.

B-LOG's value accrues in the learned arc weights: sessions merge into
the global store across queries (paper §4–5), so the store must outlive
the process that learned it.  This module is the crash-safety layer the
serving stack builds on:

* :class:`WeightWal` — an append-only journal of *merge records*.  Each
  record is length-prefixed and checksummed (``>II`` header: payload
  length, crc32), and every append is flushed and ``fsync``\\ ed before
  it returns — the service acknowledges a session merge to the client
  only after the record is durable.  Replay tolerates a **torn final
  record** (a crash mid-append leaves a short frame at the tail, which
  is dropped) and rejects any *interior* corruption by checksum with
  :class:`WalCorruptError` — silent skips would hide data loss.
* :class:`DurableStore` — one program's data directory
  (``snapshot.json`` + ``wal.log``).  Recovery loads the snapshot (if
  any) and replays the journal tail; periodic checkpoints write a new
  snapshot **atomically** (tmp file → fsync → ``os.replace`` → directory
  fsync) and truncate the journal they cover.
* **Idempotent replay** — every record carries ``(session, generation)``
  and a monotonic ``seq``.  Recovery skips records the snapshot already
  folded in (``seq <= snapshot seq``) and records whose session has
  already merged at that generation or later, so a merge is never
  applied twice — not across a crash between snapshot-replace and
  journal-truncate, and not for a duplicate append after a lost ack.

The journal payload reuses PR-2's delta machinery
(:func:`~repro.weights.persist.store_delta` /
:func:`~repro.weights.persist.apply_delta`): a record's ``delta`` is
exactly what the merge changed in the global store, so replay is a
plain ``apply_delta``, not a re-merge — byte-deterministic regardless
of merge policy or α.

This module is deliberately zero-dependency and telemetry-free (it
lives in ``repro/weights``); the service layer wraps the calls with
spans and metrics.  Thread-safety: :class:`DurableStore` serializes
appends and checkpoints with an internal lock so the service may run
them on an IO executor off the event loop.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from .persist import StoreCorruptError, apply_delta, store_from_dict, store_to_dict
from .store import WeightStore

__all__ = [
    "WalCorruptError",
    "WeightWal",
    "DurableStore",
    "RecoveryInfo",
    "SNAPSHOT_FORMAT",
]

#: per-record frame header: payload byte length, crc32 of the payload
_HEADER = struct.Struct(">II")

SNAPSHOT_FORMAT = "blog-wal-snapshot-v1"


class WalCorruptError(ValueError):
    """An interior journal record failed its checksum or framing.

    A *final* bad record is a torn append (crash mid-write) and is
    dropped silently; a bad record with valid records after it means
    the file was damaged and replay must not guess past it.
    """


@dataclass
class RecoveryInfo:
    """What one :meth:`DurableStore.recover` did."""

    snapshot_loaded: bool = False
    snapshot_seq: int = 0
    records_replayed: int = 0
    records_skipped: int = 0  # covered by the snapshot or (session, gen) dedupe
    torn_tail: bool = False
    seq: int = 0  # journal sequence after recovery

    def to_dict(self) -> dict:
        return {
            "snapshot_loaded": self.snapshot_loaded,
            "snapshot_seq": self.snapshot_seq,
            "records_replayed": self.records_replayed,
            "records_skipped": self.records_skipped,
            "torn_tail": self.torn_tail,
            "seq": self.seq,
        }


class WeightWal:
    """The append-only merge journal: framed, checksummed, fsynced.

    One record per acknowledged merge::

        {"seq": 7, "session": "alice", "generation": 42, "delta": {...}}

    ``append`` assigns ``seq`` (monotonic across checkpoints), frames
    the JSON payload, writes, flushes, and ``fsync``\\ s before
    returning — the caller may acknowledge the merge the moment
    ``append`` comes back.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fh = None
        self.seq = 0  # last assigned sequence number
        self.appends = 0
        self.last_fsync_s = 0.0  # duration of the most recent fsync

    # -- reading -------------------------------------------------------------
    def scan(self) -> tuple[list[dict], int, bool]:
        """``(records, good_offset, torn)`` for the journal on disk.

        ``good_offset`` is the byte offset just past the last complete,
        checksum-valid record — the truncation point for
        :meth:`open_append`.  ``torn`` is True when trailing bytes had
        to be dropped (short frame or a checksum failure *at the tail*,
        both signatures of a crash mid-append).  A checksum failure
        with valid data after it raises :class:`WalCorruptError`.
        """
        if not self.path.exists():
            return [], 0, False
        data = self.path.read_bytes()
        records: list[dict] = []
        off = 0
        torn = False
        while off < len(data):
            if off + _HEADER.size > len(data):
                torn = True
                break
            length, crc = _HEADER.unpack_from(data, off)
            end = off + _HEADER.size + length
            if end > len(data):
                torn = True
                break
            payload = data[off + _HEADER.size : end]
            if zlib.crc32(payload) != crc:
                if end == len(data):
                    torn = True  # partial overwrite of the final frame
                    break
                raise WalCorruptError(
                    f"journal {self.path} record at offset {off} fails its "
                    "checksum with valid records after it — the file is "
                    "damaged, refusing to replay past the corruption"
                )
            try:
                records.append(json.loads(payload))
            except json.JSONDecodeError as exc:
                raise WalCorruptError(
                    f"journal {self.path} record at offset {off} passed its "
                    f"checksum but is not valid JSON: {exc}"
                ) from exc
            off = end
        return records, off, torn

    # -- writing -------------------------------------------------------------
    def open_append(self, truncate_at: Optional[int] = None) -> None:
        """Open the journal for appending, optionally dropping a torn
        tail first (``truncate_at`` = the last good offset from
        :meth:`scan`)."""
        self.close()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fh = open(self.path, "ab")
        if truncate_at is not None and fh.tell() > truncate_at:
            fh.truncate(truncate_at)
            fh.seek(truncate_at)
        self._fh = fh

    def append(self, record: dict) -> int:
        """Frame, write, flush, and fsync one record; returns its seq.

        Durable on return: a crash after ``append`` cannot lose the
        record (a crash *during* it leaves a torn tail that replay
        drops — the merge was then never acknowledged).
        """
        if self._fh is None:
            self.open_append()
        self.seq += 1
        payload = json.dumps({"seq": self.seq, **record}).encode("utf-8")
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        fh = self._fh
        fh.write(frame)
        fh.flush()
        t0 = time.monotonic()
        os.fsync(fh.fileno())
        self.last_fsync_s = time.monotonic() - t0
        self.appends += 1
        return self.seq

    def reset(self) -> None:
        """Truncate the journal to empty (after a covering snapshot).

        The ``seq`` counter is *not* reset — sequence numbers stay
        monotonic across checkpoints, which is what lets recovery skip
        journal records a snapshot already folded in.
        """
        self.close()
        fh = open(self.path, "wb")
        try:
            fh.flush()
            os.fsync(fh.fileno())
        finally:
            fh.close()
        self.open_append()

    def size_bytes(self) -> int:
        return self.path.stat().st_size if self.path.exists() else 0

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class DurableStore:
    """One program's crash-safe weight persistence: snapshot + journal.

    Layout (one directory per program)::

        <dir>/snapshot.json   atomic store snapshot + applied-merge map
        <dir>/wal.log         merge journal since that snapshot

    Protocol: :meth:`recover` once at boot (returns the reconstructed
    store), :meth:`log_merge` after every global-store merge (fsynced
    before the merge is acknowledged), and
    :meth:`prepare_checkpoint` / :meth:`write_checkpoint` periodically
    and at drain.  ``prepare_checkpoint`` must run where the store is
    coherent (the service's event-loop thread); ``write_checkpoint``
    and ``log_merge`` are safe on an IO executor — an internal lock
    serializes them.
    """

    SNAPSHOT = "snapshot.json"
    JOURNAL = "wal.log"

    def __init__(self, directory: Union[str, Path], n: float = 16.0, a: int = 16):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.n = float(n)
        self.a = int(a)
        self.wal = WeightWal(self.directory / self.JOURNAL)
        #: session -> generation of its last journaled merge (the
        #: idempotence key: a replayed record at or below this is a dup)
        self.applied: dict[str, int] = {}
        self.checkpoints = 0
        self.recovery = RecoveryInfo()
        self._lock = threading.Lock()

    @property
    def snapshot_path(self) -> Path:
        return self.directory / self.SNAPSHOT

    # -- recovery ------------------------------------------------------------
    def recover(self) -> tuple[WeightStore, RecoveryInfo]:
        """Rebuild the store: snapshot (if any) + journal tail replay.

        Raises :class:`~repro.weights.persist.StoreCorruptError` on a
        damaged snapshot and :class:`WalCorruptError` on interior
        journal corruption; a torn final journal record is dropped (it
        was never acknowledged).  Replay is idempotent: records covered
        by the snapshot's seq, or whose ``(session, generation)`` the
        applied map already holds, are skipped and counted.
        """
        info = RecoveryInfo()
        store: Optional[WeightStore] = None
        snap = self.snapshot_path
        if snap.exists():
            try:
                data = json.loads(snap.read_text(encoding="utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise StoreCorruptError(
                    f"snapshot {snap} is not valid JSON ({exc}) — the file "
                    "is truncated or damaged; restore it from backup or "
                    "delete it to replay the journal from scratch"
                ) from exc
            if data.get("format") != SNAPSHOT_FORMAT:
                raise StoreCorruptError(
                    f"snapshot {snap} has format {data.get('format')!r}, "
                    f"expected {SNAPSHOT_FORMAT!r}"
                )
            store = store_from_dict(data["store"])
            # store_from_dict rebuilds entry by entry, restarting the
            # generation counter; restore the live counter or a post-
            # recovery merge could reuse a generation an older journal
            # record already holds for the same session — and the
            # (session, generation) dedupe would then wrongly skip it
            store.generation = max(store.generation, int(data.get("generation", 0)))
            info.snapshot_loaded = True
            info.snapshot_seq = int(data.get("seq", 0))
            self.applied = {str(k): int(v) for k, v in data.get("applied", {}).items()}
        if store is None:
            store = WeightStore(n=self.n, a=self.a)
            self.applied = {}
        records, good_offset, torn = self.wal.scan()
        info.torn_tail = torn
        last_seq = info.snapshot_seq
        for rec in records:
            seq = int(rec.get("seq", 0))
            last_seq = max(last_seq, seq)
            if seq <= info.snapshot_seq:
                info.records_skipped += 1
                continue
            session = str(rec["session"])
            generation = int(rec["generation"])
            if self.applied.get(session, -1) >= generation:
                info.records_skipped += 1
                continue
            apply_delta(store, rec["delta"])
            self.applied[session] = generation
            info.records_replayed += 1
        self.wal.seq = last_seq
        self.wal.open_append(truncate_at=good_offset)
        info.seq = last_seq
        self.recovery = info
        return store, info

    # -- journaling ----------------------------------------------------------
    def log_merge(self, session: str, generation: int, delta: dict) -> int:
        """Append one acknowledged merge; durable (fsynced) on return."""
        with self._lock:
            seq = self.wal.append(
                {"session": session, "generation": int(generation), "delta": delta}
            )
            self.applied[session] = int(generation)
        return seq

    # -- checkpoints ---------------------------------------------------------
    def prepare_checkpoint(self, store: WeightStore) -> dict:
        """A consistent snapshot payload (call where the store is
        coherent; no IO happens here)."""
        return {
            "format": SNAPSHOT_FORMAT,
            "seq": self.wal.seq,
            "generation": store.generation,
            "applied": dict(self.applied),
            "store": store_to_dict(store),
        }

    def write_checkpoint(self, payload: dict) -> None:
        """Atomically persist a prepared snapshot and compact the journal.

        tmp file → flush → fsync → ``os.replace`` → directory fsync, so
        a crash at any point leaves either the old snapshot or the new
        one, never a torn file.  The journal is truncated only when no
        merge was appended since ``prepare_checkpoint`` (otherwise the
        tail is kept; recovery's seq guard skips the covered prefix).
        """
        snap = self.snapshot_path
        tmp = snap.with_name(snap.name + ".tmp")
        with self._lock:
            fh = open(tmp, "w", encoding="utf-8")
            try:
                json.dump(payload, fh, indent=1)
                fh.flush()
                os.fsync(fh.fileno())
            finally:
                fh.close()
            os.replace(tmp, snap)
            dir_fd = os.open(self.directory, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
            if self.wal.seq == int(payload["seq"]):
                self.wal.reset()
            self.checkpoints += 1

    def checkpoint(self, store: WeightStore) -> None:
        """Prepare + write in one call (offline tools, tests)."""
        self.write_checkpoint(self.prepare_checkpoint(store))

    # -- introspection -------------------------------------------------------
    def status(self) -> dict:
        """Operator-facing durability counters for this program."""
        return {
            "directory": str(self.directory),
            "seq": self.wal.seq,
            "wal_appends": self.wal.appends,
            "wal_bytes": self.wal.size_bytes(),
            "checkpoints": self.checkpoints,
            "applied": dict(self.applied),
            "recovery": self.recovery.to_dict(),
        }

    def close(self) -> None:
        self.wal.close()
