"""Sessions: strong local updates, conservative global merges (§5).

"A session is defined as a succession of queries during which no
permanent updating of weights is done in the global database [...]
During a session, weight updates are kept in a separate buffer or in
local copies [...] At the end of the session the global database will
be updated in a 'conservative' way, e.g., no infinities will override
previous non-infinite weights, while other weights will be modified in
the direction indicated by the results of the session.  [...] Averaging
of modifications over different sessions is thus achieved."

The merge policy implemented here, per key:

=================  =================  =========================================
global state       local state        merged global
=================  =================  =========================================
any                UNKNOWN            unchanged (session learned nothing)
UNKNOWN            KNOWN w            KNOWN w (adopt)
UNKNOWN            INFINITE           INFINITE (allowed: no non-∞ overridden)
KNOWN g            KNOWN w            KNOWN (1-α)·g + α·w  (averaging)
KNOWN g            INFINITE           **unchanged** (the conservative rule)
INFINITE           KNOWN w            KNOWN w (a success retracts a failure)
INFINITE           INFINITE           unchanged
=================  =================  =========================================

α is the session learning rate (default 0.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..ortree.tree import ArcKey
from .store import WeightState, WeightStore

__all__ = ["MergeReport", "merge_conservative", "merge_strong", "SessionManager"]


@dataclass
class MergeReport:
    """What an end-of-session merge did."""

    adopted: int = 0  # UNKNOWN -> KNOWN / INFINITE
    averaged: int = 0  # KNOWN blended toward local
    retracted: int = 0  # INFINITE -> KNOWN (success overrode failure)
    suppressed_infinities: int = 0  # local ∞ blocked by global non-∞
    unchanged: int = 0
    #: the global store's generation after this merge — the durability
    #: layer keys WAL records (and replay idempotence) on
    #: ``(session, generation)``, and clients receive it in the
    #: ``end_session`` ack so a lost-ack retry is detectable
    generation: int = 0


def merge_conservative(
    global_store: WeightStore,
    local_store: WeightStore,
    alpha: float = 0.5,
    keys: Optional[Iterable[ArcKey]] = None,
) -> MergeReport:
    """Apply the §5 conservative end-of-session merge in place.

    ``keys`` restricts the merge to the given keys — the session's
    *touched* set.  The paper keeps session updates "in a separate
    buffer"; merging only what the session actually wrote means a key
    another session merged mid-way is not dragged back toward the stale
    copy this session inherited at open.  ``None`` merges every local
    key (the historical behavior, still right when the local store *is*
    the buffer of updates).
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must be in (0, 1]")
    report = MergeReport()
    for key in list(local_store.keys()) if keys is None else list(keys):
        local = local_store.entry(key)
        if local.state is WeightState.UNKNOWN:
            report.unchanged += 1
            continue
        glob = global_store.entry(key)
        if local.state is WeightState.INFINITE:
            if glob.state is WeightState.UNKNOWN:
                global_store.set_infinite(key)
                report.adopted += 1
            elif glob.state is WeightState.INFINITE:
                report.unchanged += 1
            else:  # KNOWN: never overridden by an infinity
                report.suppressed_infinities += 1
            continue
        # local KNOWN
        if glob.state is WeightState.UNKNOWN:
            global_store.set_known(key, local.value)
            report.adopted += 1
        elif glob.state is WeightState.INFINITE:
            global_store.set_known(key, local.value)
            report.retracted += 1
        else:
            blended = (1.0 - alpha) * glob.value + alpha * local.value
            global_store.set_known(key, blended)
            report.averaged += 1
    return report


def merge_strong(
    global_store: WeightStore,
    local_store: WeightStore,
    keys: Optional[Iterable[ArcKey]] = None,
) -> MergeReport:
    """The non-conservative alternative (E4 ablation): local wins outright,
    including infinities overriding known weights."""
    report = MergeReport()
    for key in list(local_store.keys()) if keys is None else list(keys):
        local = local_store.entry(key)
        if local.state is WeightState.UNKNOWN:
            report.unchanged += 1
        elif local.state is WeightState.INFINITE:
            global_store.set_infinite(key)
            report.adopted += 1
        else:
            global_store.set_known(key, local.value)
            report.adopted += 1
    return report


class SessionManager:
    """Manages the local/global weight stores across sessions.

    Usage::

        mgr = SessionManager(WeightStore(n=16, a=16))
        mgr.begin_session()
        ...  # engine reads/writes mgr.local
        report = mgr.end_session()

    The engine always reads weights from :attr:`local` (strong,
    immediate updates); :attr:`global_store` only changes at session
    boundaries.
    """

    def __init__(self, global_store: Optional[WeightStore] = None, alpha: float = 0.5):
        # explicit None check: an empty WeightStore is falsy (len 0)
        self.global_store = WeightStore() if global_store is None else global_store
        self.alpha = alpha
        self.local: Optional[WeightStore] = None
        self._base_generation: int = 0  # local generation at begin_session
        self.sessions_completed = 0
        self.merge_reports: list[MergeReport] = []

    @property
    def in_session(self) -> bool:
        return self.local is not None

    @property
    def active(self) -> WeightStore:
        """The store the engine should read: local if in session."""
        return self.local if self.local is not None else self.global_store

    def begin_session(self) -> WeightStore:
        """Start a session: local store = copy of global."""
        if self.in_session:
            raise RuntimeError("a session is already active; end it first")
        self.local = self.global_store.copy()
        self._base_generation = self.local.generation
        return self.local

    def end_session(self, conservative: bool = True) -> MergeReport:
        """End the session, merging local results into the global store.

        Only the keys the session actually touched are merged (the §5
        "separate buffer" of updates); untouched copies inherited at
        ``begin_session`` are not re-asserted, so a concurrent merge of
        another session is never averaged back toward a stale copy.
        """
        if self.local is None:
            raise RuntimeError("no active session")
        touched = self.local.modified_since(self._base_generation)
        if conservative:
            report = merge_conservative(
                self.global_store, self.local, self.alpha, keys=touched
            )
        else:
            report = merge_strong(self.global_store, self.local, keys=touched)
        self.local = None
        self.sessions_completed += 1
        self.merge_reports.append(report)
        return report

    def abort_session(self) -> None:
        """Discard the local store without merging."""
        self.local = None
