"""Diagnostics over weight stores: summaries and distances.

Used by E3 to *quantify* convergence: the distance between the
heuristically learned store and the §4 theoretical solution should
shrink as a session progresses, and between consecutive sessions as
the conservative merges average out.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ortree.tree import ArcKey
from .store import WeightState, WeightStore

__all__ = ["StoreSummary", "store_summary", "store_distance", "chain_bound"]


@dataclass(frozen=True)
class StoreSummary:
    known: int
    infinite: int
    known_weight_sum: float
    known_weight_max: float

    @property
    def entries(self) -> int:
        return self.known + self.infinite


def store_summary(store: WeightStore) -> StoreSummary:
    """Counts and aggregates over a store's explicit entries."""
    known = 0
    infinite = 0
    total = 0.0
    biggest = 0.0
    for key in store.keys():
        e = store.entry(key)
        if e.state is WeightState.KNOWN:
            known += 1
            total += e.value
            biggest = max(biggest, e.value)
        elif e.state is WeightState.INFINITE:
            infinite += 1
    return StoreSummary(
        known=known,
        infinite=infinite,
        known_weight_sum=total,
        known_weight_max=biggest,
    )


def store_distance(a: WeightStore, b: WeightStore) -> float:
    """Mean absolute weight difference over the union of explicit keys.

    Infinities compare as the larger of the two stores' encodings, so
    an infinity vs a small known weight contributes a large (finite)
    penalty, and matching infinities contribute zero.
    """
    keys = set(a.keys()) | set(b.keys())
    if not keys:
        return 0.0
    total = 0.0
    for key in keys:
        total += abs(a.weight(key) - b.weight(key))
    return total / len(keys)


def chain_bound(store: WeightStore, keys) -> float:
    """Sum of the store's weights over an arc-key chain (builtins free)."""
    total = 0.0
    for key in keys:
        if isinstance(key, ArcKey) and key.kind == "builtin":
            continue
        total += store.weight(key)
    return total
