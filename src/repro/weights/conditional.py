"""The conditional (first-order context) bound of §5's outlook.

"Other bounds may be used [...] For example, conditional probabilities
(conditional information) might be added to the model, since a decision
should depend on what has been previously decided, but maintaining the
database in this model is clearly more difficult than our approach."

:class:`ConditionalWeightStore` keys weights by the **pair**
``(parent arc key, arc key)`` — the decision conditioned on the one
before it — with the marginal :class:`WeightStore` as the backoff for
unseen pairs.  The update rules mirror §5's, applied to the pair chain.

This resolves the conflation the marginal model suffers when the *same*
database pointer succeeds under one calling context and fails under
another (E11 builds exactly that workload): the marginal store can only
thrash or stay agnostic; the conditional store prices both contexts
independently at the cost of a (worst-case) squared weight table —
the "more difficult" database maintenance the paper warns about,
quantified by :attr:`table_entries`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ortree.tree import ArcKey, OrArc
from .store import WeightEntry, WeightState, WeightStore
from .update import UpdateLog

__all__ = ["ConditionalWeightStore", "conditional_on_success", "conditional_on_failure"]

PairKey = tuple[Optional[ArcKey], ArcKey]


class ConditionalWeightStore:
    """Pair-keyed weights with marginal backoff."""

    def __init__(self, n: float = 16.0, a: int = 16):
        self.marginal = WeightStore(n=n, a=a)
        self._pairs: dict[PairKey, WeightEntry] = {}

    @property
    def n(self) -> float:
        return self.marginal.n

    @property
    def a(self) -> int:
        return self.marginal.a

    @property
    def table_entries(self) -> int:
        """Pair entries held — the §5 "database maintenance" cost."""
        return len(self._pairs)

    # -- reads -------------------------------------------------------------
    def entry(self, prev: Optional[ArcKey], key: ArcKey) -> WeightEntry:
        e = self._pairs.get((prev, key))
        if e is not None:
            return e
        return self.marginal.entry(key)

    def weight(self, prev: Optional[ArcKey], key: ArcKey) -> float:
        return self.entry(prev, key).value

    def state(self, prev: Optional[ArcKey], key: ArcKey) -> WeightState:
        return self.entry(prev, key).state

    def is_known(self, prev: Optional[ArcKey], key: ArcKey) -> bool:
        return self.state(prev, key) is WeightState.KNOWN

    def is_infinite(self, prev: Optional[ArcKey], key: ArcKey) -> bool:
        return self.state(prev, key) is WeightState.INFINITE

    def is_unknown(self, prev: Optional[ArcKey], key: ArcKey) -> bool:
        return self.state(prev, key) is WeightState.UNKNOWN

    # -- writes -----------------------------------------------------------------
    def set_known(self, prev: Optional[ArcKey], key: ArcKey, value: float) -> None:
        if key.kind == "builtin":
            return
        self._pairs[(prev, key)] = WeightEntry(WeightState.KNOWN, max(0.0, value))

    def set_infinite(self, prev: Optional[ArcKey], key: ArcKey) -> None:
        if key.kind == "builtin":
            return
        self._pairs[(prev, key)] = WeightEntry(
            WeightState.INFINITE, self.marginal.infinity_value
        )

    def copy(self) -> "ConditionalWeightStore":
        out = ConditionalWeightStore(self.n, self.a)
        out.marginal = self.marginal.copy()
        out._pairs = dict(self._pairs)
        return out

    # -- OrTree hook -------------------------------------------------------------
    def pair_weight_fn(self):
        """A callable for :class:`OrTree`'s ``pair_weight_fn`` hook."""
        return self.weight


def _pair_chain(arcs: Sequence[OrArc]) -> list[PairKey]:
    """Distinct (prev, key) pairs along the chain, builtins skipped."""
    out: list[PairKey] = []
    seen: set[PairKey] = set()
    prev: Optional[ArcKey] = None
    for arc in arcs:
        if arc.key.kind == "builtin":
            continue
        pair = (prev, arc.key)
        if pair not in seen:
            seen.add(pair)
            out.append(pair)
        prev = arc.key
    return out


def conditional_on_failure(
    store: ConditionalWeightStore, arcs: Sequence[OrArc]
) -> UpdateLog:
    """The §5 failure rule over conditioned pairs."""
    pairs = _pair_chain(arcs)
    log = UpdateLog(kind="failure")
    if any(store.is_infinite(p, k) for p, k in pairs):
        log.kind = "noop"
        return log
    for prev, key in reversed(pairs):
        if store.is_unknown(prev, key):
            store.set_infinite(prev, key)
            log.set_infinite.append(key)
            return log
    log.kind = "noop"
    log.anomaly = True
    return log


def conditional_on_success(
    store: ConditionalWeightStore, arcs: Sequence[OrArc]
) -> UpdateLog:
    """The §5 success rule over conditioned pairs."""
    pairs = _pair_chain(arcs)
    log = UpdateLog(kind="success")
    known_sum = sum(
        store.weight(p, k) for p, k in pairs if store.is_known(p, k)
    )
    resettable = [(p, k) for p, k in pairs if not store.is_known(p, k)]
    if not resettable:
        log.kind = "noop"
        return log
    if known_sum > store.n:
        log.anomaly = True
        value = 0.0
    else:
        value = (store.n - known_sum) / len(resettable)
    for prev, key in resettable:
        store.set_known(prev, key, value)
        log.set_known.append((key, value))
    return log
