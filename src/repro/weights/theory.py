"""The theoretical weight model of section 4.

The paper defines arc weights from (unnormalized) probabilities:

1. the same arc occurring twice in a tree has one probability;
2. every successful chain has probability 1/S (S = number of
   solutions);
3. every failed chain has probability 0.

Weights are ``-log2(p)``; chain bounds are weight sums; so requirement
2 becomes one **linear equation per solution chain** — the sum of its
arc weights equals ``log2(S)`` (or any common constant N, the session
target) — and requirement 3 means every failed chain must contain an
arc whose weight can be driven to infinity, i.e. an arc that appears
in **no** successful chain.  "If N is the number of both complete
solutions and unsuccessful solutions, and M arcs are used in them, we
have N equations in M unknowns to solve."

This module builds exactly that system from a fully developed OR-tree
and solves it by non-negative least squares, reporting:

* the weight assignment (finite arcs) and the infinite arcs;
* whether the system is **feasible** (residual ~ 0 and every failure
  chain is killable);
* the **pathological chains** of §4 ("if an unsuccessful query has only
  arc A, then the weight of A must be infinity, but if A is an arc in a
  successful solution, it may not have a weight of infinity").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..ortree.tree import ArcKey, NodeStatus, OrTree
from .store import WeightStore

__all__ = ["TheoryResult", "solve_weights", "verify_assignment", "store_from_theory"]

_FEASIBLE_TOL = 1e-6


@dataclass
class TheoryResult:
    """Solution of the §4 linear system for one search tree."""

    target: float  # the common bound N (log2(S) by default)
    n_solutions: int
    n_failures: int
    finite_weights: dict[ArcKey, float] = field(default_factory=dict)
    infinite_arcs: set[ArcKey] = field(default_factory=set)
    residual: float = 0.0
    pathological_chains: list[int] = field(default_factory=list)  # failure leaf ids

    @property
    def feasible(self) -> bool:
        """Weights exist: equations satisfied and every failure killable."""
        return self.residual < _FEASIBLE_TOL and not self.pathological_chains

    def weight(self, key: ArcKey) -> float:
        if key in self.infinite_arcs:
            return float("inf")
        if key.kind == "builtin":
            return 0.0
        return self.finite_weights.get(key, 0.0)

    def probability(self, key: ArcKey) -> float:
        """The unnormalized arc probability 2^{-w}."""
        w = self.weight(key)
        return 0.0 if w == float("inf") else 2.0 ** (-w)


def _chain_keys(tree: OrTree, leaf_id: int) -> list[ArcKey]:
    """Distinct non-builtin arc keys on the root→leaf chain."""
    out: list[ArcKey] = []
    seen: set[ArcKey] = set()
    for arc in tree.chain_arcs(leaf_id):
        if arc.key.kind == "builtin":
            continue
        if arc.key not in seen:
            seen.add(arc.key)
            out.append(arc.key)
    return out


def solve_weights(tree: OrTree, target: Optional[float] = None) -> TheoryResult:
    """Solve the §4 weight system for a fully developed ``tree``.

    ``target`` defaults to ``log2(S)`` so chain probabilities come out
    at exactly 1/S; pass the session constant N to match §5 instead.
    The tree must already be fully expanded (``expand_all``).
    """
    if any(n.status is NodeStatus.OPEN for n in tree.nodes):
        raise ValueError("tree must be fully expanded before solving weights")
    solutions = tree.solutions()
    failures = tree.failures()
    s = len(solutions)
    if target is None:
        target = float(np.log2(s)) if s > 1 else (1.0 if s == 1 else 0.0)
    result = TheoryResult(
        target=target, n_solutions=s, n_failures=len(failures)
    )

    sol_chains = [_chain_keys(tree, n.nid) for n in solutions]
    fail_chains = [(n.nid, _chain_keys(tree, n.nid)) for n in failures]
    success_arcs: set[ArcKey] = set()
    for chain in sol_chains:
        success_arcs.update(chain)

    # Failure chains: an arc not used by any solution can carry infinity.
    for leaf_id, chain in fail_chains:
        killable = [k for k in chain if k not in success_arcs]
        if killable:
            # blame nearest the leaf, as the heuristic of §5 does
            result.infinite_arcs.add(killable[-1])
        else:
            result.pathological_chains.append(leaf_id)

    # Solution equations: sum of chain weights = target, weights >= 0.
    arcs = sorted(success_arcs, key=str)
    if arcs and sol_chains:
        index = {k: i for i, k in enumerate(arcs)}
        a = np.zeros((len(sol_chains), len(arcs)))
        for row, chain in enumerate(sol_chains):
            for k in chain:
                a[row, index[k]] = 1.0
        b = np.full(len(sol_chains), target)
        try:
            from scipy.optimize import nnls

            w, rnorm = nnls(a, b)
            result.residual = float(rnorm)
        except ImportError:  # pragma: no cover - scipy is installed here
            w, res, _, _ = np.linalg.lstsq(a, b, rcond=None)
            w = np.clip(w, 0.0, None)
            result.residual = float(np.linalg.norm(a @ w - b))
        result.finite_weights = {k: float(w[index[k]]) for k in arcs}
    return result


def verify_assignment(tree: OrTree, result: TheoryResult, tol: float = 1e-6) -> bool:
    """Check a weight assignment satisfies §4 on this tree.

    Every solution chain must sum to the target; every failure chain
    must contain an infinite arc (unless recorded pathological).
    """
    for node in tree.solutions():
        total = sum(result.weight(k) for k in _chain_keys(tree, node.nid))
        if abs(total - result.target) > tol:
            return False
    for node in tree.failures():
        if node.nid in result.pathological_chains:
            continue
        keys = _chain_keys(tree, node.nid)
        if not any(result.weight(k) == float("inf") for k in keys):
            return False
    return True


def store_from_theory(
    result: TheoryResult, n: Optional[float] = None, a: int = 16
) -> WeightStore:
    """Materialize a :class:`WeightStore` from a theory solution.

    Finite weights become KNOWN entries; infinite arcs use the store's
    A·N encoding.  ``n`` defaults to the theory target (rounded up to at
    least 1 so the store's encodings stay ordered).
    """
    if n is None:
        n = max(result.target, 1.0)
    store = WeightStore(n=n, a=a)
    for key, w in result.finite_weights.items():
        store.set_known(key, w)
    for key in result.infinite_arcs:
        store.set_infinite(key)
    return store
