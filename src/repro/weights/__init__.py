"""The B-LOG weighting scheme (paper §4–5): pointer weight store with
the N+1 / A·N encodings, success/failure update rules, the theoretical
linear-system solution for exact weights, and session management with
conservative global merges."""

from .conditional import (
    ConditionalWeightStore,
    conditional_on_failure,
    conditional_on_success,
)
from .metrics import StoreSummary, chain_bound, store_distance, store_summary
from .persist import (
    StoreCorruptError,
    load_store,
    save_store,
    store_from_dict,
    store_to_dict,
)
from .policies import (
    POLICY_COMBINATIONS,
    on_failure_policy,
    on_success_policy,
)
from .session import (
    MergeReport,
    SessionManager,
    merge_conservative,
    merge_strong,
)
from .store import WeightEntry, WeightState, WeightStore
from .theory import TheoryResult, solve_weights, store_from_theory, verify_assignment
from .update import UpdateLog, apply_outcome, on_failure, on_success
from .wal import DurableStore, RecoveryInfo, WalCorruptError, WeightWal

__all__ = [
    "WeightStore",
    "WeightState",
    "WeightEntry",
    "UpdateLog",
    "on_failure",
    "on_success",
    "apply_outcome",
    "TheoryResult",
    "solve_weights",
    "verify_assignment",
    "store_from_theory",
    "MergeReport",
    "SessionManager",
    "merge_conservative",
    "merge_strong",
    "ConditionalWeightStore",
    "conditional_on_failure",
    "conditional_on_success",
    "on_failure_policy",
    "on_success_policy",
    "POLICY_COMBINATIONS",
    "save_store",
    "load_store",
    "store_to_dict",
    "store_from_dict",
    "StoreCorruptError",
    "DurableStore",
    "WeightWal",
    "RecoveryInfo",
    "WalCorruptError",
    "StoreSummary",
    "store_summary",
    "store_distance",
    "chain_bound",
]
