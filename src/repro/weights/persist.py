"""Persisting the global weight database (§5's "global database in
secondary storage") to JSON.

The paper keeps the global weights on disk between sessions; the SPD
write-back (:mod:`repro.spd.weights_io`) models the *cost* of that, and
this module provides the practical library feature: save/load a
:class:`WeightStore` so learning survives process restarts.

Arc keys serialize structurally.  Pointer and builtin keys round-trip
exactly; goal-policy keys (which embed terms) serialize via the term
text and re-parse on load, with canonical variable ids preserved by the
canonicalization being deterministic.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..logic.parser import parse_term
from ..ortree.tree import ArcKey, canonical_goal
from .store import WeightState, WeightStore

__all__ = ["save_store", "load_store", "store_to_dict", "store_from_dict"]


def _key_to_json(key: ArcKey) -> dict:
    if key.kind == "pointer":
        caller, literal, callee = key.key
        return {"kind": "pointer", "caller": caller, "literal": literal, "callee": callee}
    if key.kind == "builtin":
        (indicator,) = key.key
        return {"kind": "builtin", "name": indicator[0], "arity": indicator[1]}
    if key.kind == "goal":
        term, callee = key.key
        return {"kind": "goal", "goal": str(term), "callee": callee}
    raise ValueError(f"unknown arc key kind {key.kind!r}")


def _key_from_json(data: dict) -> ArcKey:
    kind = data["kind"]
    if kind == "pointer":
        return ArcKey("pointer", (data["caller"], data["literal"], data["callee"]))
    if kind == "builtin":
        return ArcKey("builtin", ((data["name"], data["arity"]),))
    if kind == "goal":
        term = canonical_goal(parse_term(data["goal"]))
        return ArcKey("goal", (term, data["callee"]))
    raise ValueError(f"unknown arc key kind {kind!r}")


def store_to_dict(store: WeightStore) -> dict:
    """The JSON-ready representation of a store."""
    entries = []
    for key in store.keys():
        entry = store.entry(key)
        entries.append(
            {
                "key": _key_to_json(key),
                "state": entry.state.value,
                "value": entry.value,
            }
        )
    return {"format": "blog-weights-v1", "n": store.n, "a": store.a, "entries": entries}


def store_from_dict(data: dict) -> WeightStore:
    """Rebuild a store from :func:`store_to_dict` output."""
    if data.get("format") != "blog-weights-v1":
        raise ValueError(f"unrecognized weight store format {data.get('format')!r}")
    store = WeightStore(n=data["n"], a=data["a"])
    for item in data["entries"]:
        key = _key_from_json(item["key"])
        state = WeightState(item["state"])
        if state is WeightState.INFINITE:
            store.set_infinite(key)
        elif state is WeightState.KNOWN:
            store.set_known(key, item["value"])
        # UNKNOWN entries are never stored
    return store


def save_store(store: WeightStore, path: Union[str, Path]) -> None:
    """Write the store to ``path`` as JSON."""
    Path(path).write_text(json.dumps(store_to_dict(store), indent=1))


def load_store(path: Union[str, Path]) -> WeightStore:
    """Read a store previously written by :func:`save_store`."""
    return store_from_dict(json.loads(Path(path).read_text()))
