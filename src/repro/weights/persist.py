"""Persisting the global weight database (§5's "global database in
secondary storage") to JSON.

The paper keeps the global weights on disk between sessions; the SPD
write-back (:mod:`repro.spd.weights_io`) models the *cost* of that, and
this module provides the practical library feature: save/load a
:class:`WeightStore` so learning survives process restarts.

Arc keys serialize structurally.  Pointer and builtin keys round-trip
exactly; goal-policy keys (which embed terms) serialize via the term
text and re-parse on load, with canonical variable ids preserved by the
canonicalization being deterministic.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union

from ..logic.parser import parse_term
from ..ortree.tree import ArcKey, canonical_goal
from .store import WeightEntry, WeightState, WeightStore

__all__ = [
    "save_store",
    "load_store",
    "store_to_dict",
    "store_from_dict",
    "store_delta",
    "apply_delta",
    "delta_store",
    "StoreCorruptError",
]

DELTA_FORMAT = "blog-weights-delta-v1"


class StoreCorruptError(ValueError):
    """A persisted weight store could not be decoded.

    Raised by :func:`load_store` (and the WAL snapshot loader) instead
    of the raw ``json.JSONDecodeError``/``KeyError`` traceback, so an
    operator sees *which file* is damaged and what to do about it.
    """


def _key_to_json(key: ArcKey) -> dict:
    if key.kind == "pointer":
        caller, literal, callee = key.key
        return {"kind": "pointer", "caller": caller, "literal": literal, "callee": callee}
    if key.kind == "builtin":
        (indicator,) = key.key
        return {"kind": "builtin", "name": indicator[0], "arity": indicator[1]}
    if key.kind == "goal":
        term, callee = key.key
        return {"kind": "goal", "goal": str(term), "callee": callee}
    raise ValueError(f"unknown arc key kind {key.kind!r}")


def _key_from_json(data: dict) -> ArcKey:
    kind = data["kind"]
    if kind == "pointer":
        return ArcKey("pointer", (data["caller"], data["literal"], data["callee"]))
    if kind == "builtin":
        return ArcKey("builtin", ((data["name"], data["arity"]),))
    if kind == "goal":
        term = canonical_goal(parse_term(data["goal"]))
        return ArcKey("goal", (term, data["callee"]))
    raise ValueError(f"unknown arc key kind {kind!r}")


def store_to_dict(store: WeightStore) -> dict:
    """The JSON-ready representation of a store."""
    entries = []
    for key in store.keys():
        entry = store.entry(key)
        entries.append(
            {
                "key": _key_to_json(key),
                "state": entry.state.value,
                "value": entry.value,
            }
        )
    return {"format": "blog-weights-v1", "n": store.n, "a": store.a, "entries": entries}


def store_from_dict(data: dict) -> WeightStore:
    """Rebuild a store from :func:`store_to_dict` output."""
    if data.get("format") != "blog-weights-v1":
        raise ValueError(f"unrecognized weight store format {data.get('format')!r}")
    store = WeightStore(n=data["n"], a=data["a"])
    for item in data["entries"]:
        key = _key_from_json(item["key"])
        state = WeightState(item["state"])
        if state is WeightState.INFINITE:
            store.set_infinite(key)
        elif state is WeightState.KNOWN:
            store.set_known(key, item["value"])
        # UNKNOWN entries are never stored
    return store


def store_delta(store: WeightStore, since: Union[int, None] = None) -> dict:
    """What changed in ``store`` after generation ``since``.

    ``since=None`` means "everything": the full entry set, for a reader
    that has no mirror yet.  The delta is JSON-ready (same key encoding
    as :func:`store_to_dict`) and carries UNKNOWN *tombstones* for keys
    that were dropped (``forget`` / ``clear``) so a mirror applies the
    removal too.  This is what the serving layer ships to a process
    lane on session open — the lane's mirror catches up from whatever
    generation it last saw, instead of receiving the whole store — and
    what a lane ships back on session close (the session's touched keys
    only).
    """
    if since is None:
        keys = list(store.keys())
    else:
        keys = store.modified_since(int(since))
    entries = []
    for key in keys:
        entry = store.entry(key)
        entries.append(
            {
                "key": _key_to_json(key),
                "state": entry.state.value,
                "value": entry.value,
            }
        )
    return {
        "format": DELTA_FORMAT,
        "base": since,
        "generation": store.generation,
        "n": store.n,
        "a": store.a,
        "entries": entries,
    }


def apply_delta(store: WeightStore, delta: dict) -> int:
    """Apply a :func:`store_delta` to a mirror in place.

    Entries are written directly (UNKNOWN tombstones delete) and the
    mirror's generation jumps to the delta's source generation, so a
    later ``store_delta(source, since=mirror.generation)`` yields
    exactly what the mirror still misses.  Returns how many entries
    were applied.
    """
    if delta.get("format") != DELTA_FORMAT:
        raise ValueError(f"unrecognized weight delta format {delta.get('format')!r}")
    generation = int(delta["generation"])
    applied = 0
    for item in delta["entries"]:
        key = _key_from_json(item["key"])
        state = WeightState(item["state"])
        if state is WeightState.UNKNOWN:
            store._entries.pop(key, None)
        else:
            store._entries[key] = WeightEntry(state, float(item["value"]))
        store._modified[key] = generation
        applied += 1
    store.generation = generation
    return applied


def delta_store(delta: dict) -> WeightStore:
    """A standalone store holding just a delta's non-tombstone entries.

    Shaped for :func:`~repro.weights.session.merge_conservative`: the
    end-of-session merge iterates the local store's keys, and for a
    process-lane session the "local store" the parent sees *is* the
    delta the lane shipped back.  UNKNOWN tombstones are omitted —
    both merge policies treat a local UNKNOWN as "session learned
    nothing here".
    """
    out = WeightStore(n=delta["n"], a=delta["a"])
    for item in delta["entries"]:
        state = WeightState(item["state"])
        if state is WeightState.UNKNOWN:
            continue
        key = _key_from_json(item["key"])
        out._entries[key] = WeightEntry(state, float(item["value"]))
        out._modified[key] = out.generation = out.generation + 1
    return out


def save_store(store: WeightStore, path: Union[str, Path]) -> None:
    """Write the store to ``path`` as JSON, atomically.

    tmp file → flush → fsync → ``os.replace``: a crash at any point
    leaves either the previous store or the new one on disk, never a
    truncated file.  (§5 keeps the global database in secondary
    storage precisely so learning survives the process — a torn write
    would defeat that.)
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    fh = open(tmp, "w", encoding="utf-8")
    try:
        json.dump(store_to_dict(store), fh, indent=1)
        fh.flush()
        os.fsync(fh.fileno())
    finally:
        fh.close()
    os.replace(tmp, path)


def load_store(path: Union[str, Path]) -> WeightStore:
    """Read a store previously written by :func:`save_store`.

    Raises :class:`StoreCorruptError` naming the file when it is
    truncated, not JSON, or not a recognizable store payload.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StoreCorruptError(
            f"weight store {path} is not valid JSON ({exc}) — the file is "
            "truncated or damaged"
        ) from exc
    if not isinstance(data, dict):
        raise StoreCorruptError(
            f"weight store {path} does not hold a JSON object"
        )
    try:
        return store_from_dict(data)
    except (ValueError, KeyError, TypeError) as exc:
        raise StoreCorruptError(
            f"weight store {path} is structurally invalid: {exc}"
        ) from exc
