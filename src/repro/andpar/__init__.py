"""AND-parallel extensions (§7): independence analysis, the
AND-parallel conjunction executor, and the join algorithms including
the SPD-backed semi-join."""

from .cge import (
    CgeExecutor,
    CgeRun,
    Goal,
    IfGround,
    IfIndep,
    Par,
    Seq,
    compile_clause,
)
from .exec import AndParallelExecutor, AndParResult
from .independence import (
    ClauseDependency,
    clause_dependency_report,
    goal_vars,
    independence_groups,
    runtime_groups,
    share_variables,
)
from .semijoin import (
    JoinStats,
    hash_join,
    nested_loop_join,
    semi_join,
    semi_join_reduce,
)

__all__ = [
    "goal_vars",
    "share_variables",
    "independence_groups",
    "runtime_groups",
    "ClauseDependency",
    "clause_dependency_report",
    "AndParallelExecutor",
    "AndParResult",
    "JoinStats",
    "nested_loop_join",
    "hash_join",
    "semi_join",
    "semi_join_reduce",
    "compile_clause",
    "CgeExecutor",
    "CgeRun",
    "Goal",
    "Seq",
    "Par",
    "IfGround",
    "IfIndep",
]
