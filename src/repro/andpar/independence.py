"""Goal independence analysis for AND-parallelism (§7).

"Its inclusion is a relatively simple issue for conjunctions of goals
which do not share variables [...] Unfortunately this case is not as
common as desired.  [...] Also, at run time, many of the dependencies
apparent at compile time can disappear because of the particular
bindings of the variables at the time the call is made.  [...] An
alternative [...] is to do extensive data dependency analysis at
compile-time."

Provided here:

* :func:`goal_vars` / :func:`share_variables` — the basic test;
* :func:`independence_groups` — partition a conjunction into groups of
  mutually dependent goals (connected components of the
  variable-sharing graph); distinct groups can run AND-parallel;
* :func:`runtime_groups` — the same, after applying current bindings
  (dependencies that disappeared under instantiation no longer link
  goals — the run-time analysis of [6]);
* :func:`clause_dependency_report` — compile-time analysis of a whole
  program: for each clause, the groups under the conservative
  assumption that head variables are ground at call time (the
  restricted AND-parallelism view of DeGroot [7]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..logic.parser import Clause
from ..logic.program import Program
from ..logic.terms import Term, Var, term_vars
from ..logic.unify import Bindings

__all__ = [
    "goal_vars",
    "share_variables",
    "independence_groups",
    "runtime_groups",
    "ClauseDependency",
    "clause_dependency_report",
]


def goal_vars(goal: Term, bindings: Optional[Bindings] = None) -> set[int]:
    """Ids of variables in ``goal``, dereferenced through ``bindings``."""
    if bindings is None:
        return {v.id for v in term_vars(goal)}
    resolved = bindings.resolve(goal)
    return {v.id for v in term_vars(resolved)}


def share_variables(
    a: Term, b: Term, bindings: Optional[Bindings] = None
) -> bool:
    """True if the two goals share at least one (unbound) variable."""
    return bool(goal_vars(a, bindings) & goal_vars(b, bindings))


def independence_groups(
    goals: Sequence[Term],
    bindings: Optional[Bindings] = None,
    exclude: Optional[set[int]] = None,
) -> list[list[int]]:
    """Partition goal indices into dependency groups.

    Two goals are linked when they share a variable (not counting ids
    in ``exclude`` — e.g. variables known ground at call time).  The
    returned groups (each a sorted list of goal indices, groups ordered
    by first goal) are mutually independent: executing them in parallel
    and combining bindings is sound because no variable crosses groups.
    """
    exclude = exclude or set()
    varsets = [goal_vars(g, bindings) - exclude for g in goals]
    n = len(goals)
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(x: int, y: int) -> None:
        parent[find(x)] = find(y)

    by_var: dict[int, int] = {}
    for i, vs in enumerate(varsets):
        for v in vs:
            if v in by_var:
                union(i, by_var[v])
            else:
                by_var[v] = i
    groups: dict[int, list[int]] = {}
    for i in range(n):
        groups.setdefault(find(i), []).append(i)
    return sorted((sorted(g) for g in groups.values()), key=lambda g: g[0])


def runtime_groups(
    goals: Sequence[Term], bindings: Bindings
) -> list[list[int]]:
    """Independence groups under the *current* bindings (§7 run-time
    analysis): goals whose shared variables are now ground fall apart
    into separate groups."""
    return independence_groups(goals, bindings)


@dataclass
class ClauseDependency:
    """Compile-time dependency summary of one clause."""

    clause: Clause
    groups: list[list[int]] = field(default_factory=list)

    @property
    def parallel_width(self) -> int:
        """How many goal groups could run AND-parallel."""
        return len(self.groups)

    @property
    def fully_sequential(self) -> bool:
        return len(self.groups) <= 1

    @property
    def fully_parallel(self) -> bool:
        return all(len(g) == 1 for g in self.groups)


def clause_dependency_report(
    program: Program, assume_head_ground: bool = True
) -> list[ClauseDependency]:
    """Analyze every rule of ``program`` for AND-parallel groups.

    With ``assume_head_ground`` (the restricted-AND-parallelism typical
    case: calls are made with ground inputs), head variables do not
    link body goals; otherwise every shared variable counts.
    """
    out: list[ClauseDependency] = []
    for clause in program.rules():
        exclude = (
            {v.id for v in term_vars(clause.head)} if assume_head_ground else set()
        )
        groups = independence_groups(clause.body, exclude=exclude)
        out.append(ClauseDependency(clause=clause, groups=groups))
    return out
