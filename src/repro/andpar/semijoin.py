"""Join algorithms for shared-variable conjunctions (§7).

"Calls which share variables can be executed in sequence using the
same scheme as Prolog.  Alternatively a join algorithm can be applied.
In our implementation a highly efficient semi-join algorithm can use
the marking capabilities of the SPD's."

Solving ``g1(X,Y), g2(Y,Z)`` relationally: evaluate each goal's answer
relation, then join on the shared columns.  Three algorithms are
provided with work counters so E8 can compare them:

* :func:`nested_loop_join` — what Prolog backtracking effectively does:
  every pair is tried (|L|·|R| comparisons);
* :func:`hash_join` — the in-memory reference;
* :func:`semi_join_reduce` + join — the SPD-backed plan: first *mark*
  the right-relation tuples whose join key appears on the left (one
  associative search per distinct key, the SPD op-1 primitive), then
  join only the survivors.  On selective joins the reduction pays for
  itself; the counters expose exactly when.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional, Sequence

__all__ = [
    "JoinStats",
    "nested_loop_join",
    "hash_join",
    "semi_join_reduce",
    "semi_join",
]

Row = tuple
Key = Hashable


@dataclass
class JoinStats:
    comparisons: int = 0
    marks: int = 0  # SPD associative-mark operations
    reduced_right: int = 0  # right tuples surviving the semi-join
    output_rows: int = 0


def nested_loop_join(
    left: Sequence[Row],
    right: Sequence[Row],
    left_key: int,
    right_key: int,
) -> tuple[list[tuple[Row, Row]], JoinStats]:
    """Try every (l, r) pair — the Prolog backtracking baseline."""
    stats = JoinStats()
    out: list[tuple[Row, Row]] = []
    for l in left:
        for r in right:
            stats.comparisons += 1
            if l[left_key] == r[right_key]:
                out.append((l, r))
    stats.output_rows = len(out)
    return out, stats


def hash_join(
    left: Sequence[Row],
    right: Sequence[Row],
    left_key: int,
    right_key: int,
) -> tuple[list[tuple[Row, Row]], JoinStats]:
    """Build a hash on the left, probe with the right."""
    stats = JoinStats()
    index: dict[Key, list[Row]] = {}
    for l in left:
        stats.comparisons += 1  # one build access per left row
        index.setdefault(l[left_key], []).append(l)
    out: list[tuple[Row, Row]] = []
    for r in right:
        stats.comparisons += 1  # one probe per right row
        for l in index.get(r[right_key], ()):
            out.append((l, r))
    stats.output_rows = len(out)
    return out, stats


def semi_join_reduce(
    left: Sequence[Row],
    right: Sequence[Row],
    left_key: int,
    right_key: int,
    stats: Optional[JoinStats] = None,
) -> tuple[list[Row], JoinStats]:
    """The SPD semi-join: mark right tuples whose key appears on the left.

    One associative mark operation per *distinct* left key (the SPD
    broadcasts the comparand over the whole cache, so cost is per key,
    not per tuple); survivors are the reduced right relation.
    """
    stats = stats if stats is not None else JoinStats()
    keys = {l[left_key] for l in left}
    stats.marks += len(keys)  # one op-1 search per comparand
    reduced = [r for r in right if r[right_key] in keys]
    stats.reduced_right = len(reduced)
    return reduced, stats


def semi_join(
    left: Sequence[Row],
    right: Sequence[Row],
    left_key: int,
    right_key: int,
) -> tuple[list[tuple[Row, Row]], JoinStats]:
    """Semi-join reduction followed by a hash join of the survivors."""
    reduced, stats = semi_join_reduce(left, right, left_key, right_key)
    out, join_stats = hash_join(left, reduced, left_key, right_key)
    stats.comparisons += join_stats.comparisons
    stats.output_rows = join_stats.output_rows
    return out, stats
