"""Conditional Graph Expressions — restricted AND-parallelism (§7).

"An alternative to this approach is to do extensive data dependency
analysis at compile-time" — the reference is DeGroot's Restricted
And-Parallelism [7], whose execution plans are Conditional Graph
Expressions: at compile time each clause body becomes a fixed plan
whose branch points are cheap run-time tests (groundness /
independence), choosing between parallel and sequential execution of
goal groups.

Plan grammar (a small, faithful subset of DeGroot's CGEs)::

    Seq(e1, ..., ek)          run sub-expressions in order
    Par(e1, ..., ek)          run sub-expressions AND-parallel
    Goal(i)                   execute body literal i
    IfGround(vars, then, else)  runtime groundness test on vars
    IfIndep(i, j, then, else)   runtime independence test of two goals

:func:`compile_clause` builds the plan: goals are grouped by
*potential* sharing (variables that head bindings could ground); where
groundness of specific variables would split a group, an ``IfGround``
branch is emitted.  :class:`CgeExecutor` interprets plans against the
sequential engine, accounting sequential work vs the critical path so
the parallelism actually won at run time is measurable (E8/E12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..logic.parser import Clause
from ..logic.program import Program
from ..logic.solver import Solver
from ..logic.terms import Term, term_vars
from ..logic.unify import Bindings
from .independence import goal_vars, independence_groups

__all__ = [
    "Goal",
    "Seq",
    "Par",
    "IfGround",
    "IfIndep",
    "compile_clause",
    "CgeExecutor",
    "CgeRun",
]


@dataclass(frozen=True)
class Goal:
    index: int  # body literal index

    def render(self) -> str:
        return f"g{self.index}"


@dataclass(frozen=True)
class Seq:
    parts: tuple

    def render(self) -> str:
        return "(" + " ; ".join(p.render() for p in self.parts) + ")"


@dataclass(frozen=True)
class Par:
    parts: tuple

    def render(self) -> str:
        return "(" + " & ".join(p.render() for p in self.parts) + ")"


@dataclass(frozen=True)
class IfGround:
    """Runtime guard: the planned partition ``groups`` is valid iff no
    two groups share a live variable in the *instantiated* body (i.e.
    the potentially-crossing head variables arrived ground).

    Checking partition validity directly — rather than groundness of
    clause-local variable ids — keeps the guard meaningful after the
    clause is renamed apart at the call site."""

    groups: tuple[tuple[int, ...], ...]
    then: Union["Seq", "Par", "Goal", "IfGround", "IfIndep"]
    otherwise: Union["Seq", "Par", "Goal", "IfGround", "IfIndep"]

    def render(self) -> str:
        gs = ",".join("{" + ",".join(f"g{i}" for i in g) + "}" for g in self.groups)
        return (
            f"(indep[{gs}] -> {self.then.render()} "
            f"| {self.otherwise.render()})"
        )


@dataclass(frozen=True)
class IfIndep:
    left: int
    right: int
    then: Union["Seq", "Par", "Goal", "IfGround", "IfIndep"]
    otherwise: Union["Seq", "Par", "Goal", "IfGround", "IfIndep"]

    def render(self) -> str:
        return (
            f"(indep(g{self.left},g{self.right}) -> {self.then.render()} "
            f"| {self.otherwise.render()})"
        )


Plan = Union[Goal, Seq, Par, IfGround, IfIndep]


def compile_clause(clause: Clause) -> Plan:
    """Compile a clause body to a CGE.

    Strategy (DeGroot-style, conservative):

    1. Partition body goals ignoring head variables (they may be ground
       at call time) — these groups can *potentially* run in parallel.
    2. For the partition to be safe, the head variables shared between
       different groups must actually be ground at run time — emit one
       ``IfGround`` guard over exactly those variables; its else-branch
       is fully sequential.
    3. Groups of one goal are ``Goal``; bigger groups run sequentially
       inside (no nested analysis — the "restricted" in RAP).
    """
    body = clause.body
    if not body:
        return Seq(())
    if len(body) == 1:
        return Goal(0)
    head_ids = {v.id for v in term_vars(clause.head)}
    optimistic = independence_groups(body, exclude=head_ids)
    if len(optimistic) == 1:
        # no parallelism even if the head is ground
        return Seq(tuple(Goal(i) for i in range(len(body))))

    def group_plan(group: list[int]) -> Plan:
        if len(group) == 1:
            return Goal(group[0])
        return Seq(tuple(Goal(i) for i in group))

    par = Par(tuple(group_plan(g) for g in optimistic))
    seq = Seq(tuple(Goal(i) for i in range(len(body))))

    # does any (head) variable actually cross groups?  If so, the Par
    # plan is only valid when those variables arrive ground: guard it.
    group_vars = [
        set().union(*(goal_vars(body[i]) for i in g)) for g in optimistic
    ]
    crossing = False
    for gi in range(len(group_vars)):
        for gj in range(gi + 1, len(group_vars)):
            if group_vars[gi] & group_vars[gj]:
                crossing = True
    if not crossing:
        return par  # unconditionally independent
    return IfGround(tuple(tuple(g) for g in optimistic), par, seq)


@dataclass
class CgeRun:
    """Execution record of one CGE evaluation."""

    answers: list[dict[str, Term]] = field(default_factory=list)
    sequential_inferences: int = 0
    critical_path_inferences: int = 0
    guards_evaluated: int = 0
    guards_true: int = 0
    ran_parallel: bool = False

    @property
    def speedup(self) -> float:
        if self.critical_path_inferences == 0:
            return 1.0
        return self.sequential_inferences / self.critical_path_inferences


class CgeExecutor:
    """Interpret a CGE for one resolved clause-body instance.

    ``run(goals, plan)`` executes the plan against the given *already
    instantiated* body goals (the executor is used per resolution
    step).  Parallel parts are solved independently and joined by
    Cartesian product; work is accounted as sum (sequential) and max
    (critical path) of part costs.
    """

    def __init__(self, program: Program, max_depth: int = 256):
        self.program = program
        self.max_depth = max_depth

    def run(self, goals: Sequence[Term], plan: Plan) -> CgeRun:
        record = CgeRun()
        solutions, seq_cost, cp_cost = self._eval(list(goals), plan, record)
        record.sequential_inferences = seq_cost
        record.critical_path_inferences = cp_cost
        named: dict[str, Term] = {}
        for g in goals:
            for v in term_vars(g):
                if v.name and v.name != "_":
                    named.setdefault(v.name, v)
        for sol in solutions:
            record.answers.append(
                {name: sol.get(v.id, v) for name, v in named.items()}
            )
        return record

    # returns (solutions as var-id maps, sequential cost, critical path)
    def _eval(self, goals, plan: Plan, record: CgeRun):
        if isinstance(plan, Goal):
            return self._solve_goals([goals[plan.index]])
        if isinstance(plan, Seq):
            if not plan.parts:
                return [dict()], 0, 0
            indices = _plan_goals(plan)
            return self._solve_goals([goals[i] for i in indices])
        if isinstance(plan, Par):
            record.ran_parallel = True
            part_results = []
            seq_total, cp_max = 0, 0
            for part in plan.parts:
                sols, seq, _cp = self._eval(goals, part, record)
                part_results.append(sols)
                seq_total += seq
                cp_max = max(cp_max, seq)
            merged = [dict()]
            for sols in part_results:
                merged = [
                    {**acc, **sol} for acc in merged for sol in sols
                ]
                if not merged:
                    break
            return merged, seq_total, cp_max
        if isinstance(plan, IfGround):
            record.guards_evaluated += 1
            if self._partition_valid(goals, plan.groups):
                record.guards_true += 1
                return self._eval(goals, plan.then, record)
            return self._eval(goals, plan.otherwise, record)
        if isinstance(plan, IfIndep):
            record.guards_evaluated += 1
            li = goal_vars(goals[plan.left])
            ri = goal_vars(goals[plan.right])
            if not (li & ri):
                record.guards_true += 1
                return self._eval(goals, plan.then, record)
            return self._eval(goals, plan.otherwise, record)
        raise TypeError(f"unknown plan node {plan!r}")

    def _partition_valid(self, goals, groups: tuple[tuple[int, ...], ...]) -> bool:
        """No live variable crosses two groups of the instantiated body."""
        varsets = [
            set().union(*(goal_vars(goals[i]) for i in g)) if g else set()
            for g in groups
        ]
        for i in range(len(varsets)):
            for j in range(i + 1, len(varsets)):
                if varsets[i] & varsets[j]:
                    return False
        return True

    def _solve_goals(self, sub_goals):
        solver = Solver(self.program, max_depth=self.max_depth)
        bindings = Bindings(solver.stats.unify)
        sols = []
        for _ in solver._solve(tuple(sub_goals), bindings, 0, [False]):
            sols.append(
                {
                    v.id: bindings.resolve(v)
                    for g in sub_goals
                    for v in term_vars(g)
                }
            )
        return sols, solver.stats.inferences, solver.stats.inferences


def _plan_goals(plan: Plan) -> list[int]:
    """All goal indices mentioned by a plan, in order."""
    if isinstance(plan, Goal):
        return [plan.index]
    if isinstance(plan, (Seq, Par)):
        out: list[int] = []
        for p in plan.parts:
            out.extend(_plan_goals(p))
        return out
    if isinstance(plan, (IfGround, IfIndep)):
        return _plan_goals(plan.then)
    raise TypeError(f"unknown plan node {plan!r}")
