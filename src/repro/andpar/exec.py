"""AND-parallel execution of conjunctions (§7).

Independent goal groups (no shared variables) run "in parallel":
each group is solved separately by the sequential engine and the
per-group answer sets are combined by Cartesian product — sound
precisely because no variable crosses groups.  The executor reports
both the *total* work (sum over groups: what one processor would do)
and the *critical path* (max over groups: ideal AND-parallel time), so
E8 can quote the AND-parallel speedup the paper expects "specially
[for] highly deterministic programs".

Goals that *do* share variables fall back to either Prolog-style
sequential execution or the relational join plan of
:mod:`repro.andpar.semijoin`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..logic.program import Program
from ..logic.solver import Solver
from ..logic.terms import Term, term_vars
from ..logic.unify import Bindings, unify
from .independence import independence_groups

__all__ = ["AndParResult", "AndParallelExecutor"]


@dataclass
class AndParResult:
    """Outcome of one AND-parallel conjunction evaluation."""

    answers: list[dict[str, Term]] = field(default_factory=list)
    groups: list[list[int]] = field(default_factory=list)
    group_inferences: list[int] = field(default_factory=list)
    sequential_inferences: int = 0  # what plain Prolog spent on the same query

    @property
    def parallel_width(self) -> int:
        return len(self.groups)

    @property
    def total_inferences(self) -> int:
        return sum(self.group_inferences)

    @property
    def critical_path_inferences(self) -> int:
        """Ideal AND-parallel time: the slowest group."""
        return max(self.group_inferences, default=0)

    @property
    def and_parallel_speedup(self) -> float:
        """Sequential work / critical path (>= 1 when groups split)."""
        cp = self.critical_path_inferences
        if cp == 0:
            return 1.0
        return self.sequential_inferences / cp


class AndParallelExecutor:
    """Evaluate conjunctions with independent groups in parallel.

    Parameters
    ----------
    program:
        The knowledge base.
    max_depth:
        Depth bound handed to the per-group sequential solvers.
    max_solutions_per_group:
        Safety valve on group answer-set size before the product.
    """

    def __init__(
        self,
        program: Program,
        max_depth: int = 256,
        max_solutions_per_group: int = 10_000,
    ):
        self.program = program
        self.max_depth = max_depth
        self.max_solutions_per_group = max_solutions_per_group

    def run(self, query: str | Sequence[Term]) -> AndParResult:
        """Solve ``query``; groups execute independently, then product.

        Answer *sets* equal the sequential engine's (order differs:
        group-product order instead of strict Prolog order) — tested in
        the E8 suite.
        """
        from ..logic.parser import parse_query

        goals = parse_query(query) if isinstance(query, str) else tuple(query)
        result = AndParResult()
        result.groups = independence_groups(goals)

        # sequential baseline work for the speedup quotation
        seq_solver = Solver(self.program, max_depth=self.max_depth)
        seq_answers = seq_solver.solve_all(goals)
        result.sequential_inferences = seq_solver.stats.inferences

        named_vars: dict[str, Term] = {}
        for g in goals:
            for v in term_vars(g):
                if v.name and v.name != "_":
                    named_vars.setdefault(v.name, v)

        # solve each group independently
        group_solutions: list[list[dict[int, Term]]] = []
        for group in result.groups:
            sub_goals = tuple(goals[i] for i in group)
            solver = Solver(self.program, max_depth=self.max_depth)
            sols: list[dict[int, Term]] = []
            bindings = Bindings(solver.stats.unify)
            count = 0
            for _ in solver._solve(sub_goals, bindings, 0, [False]):
                sols.append(
                    {
                        v.id: bindings.resolve(v)
                        for g in sub_goals
                        for v in term_vars(g)
                    }
                )
                count += 1
                if count >= self.max_solutions_per_group:
                    break
            result.group_inferences.append(solver.stats.inferences)
            group_solutions.append(sols)

        # Cartesian product of group answers (sound: no shared vars)
        def product(ix: int, acc: dict[int, Term]) -> None:
            if ix == len(group_solutions):
                result.answers.append(
                    {
                        name: acc.get(v.id, v)
                        for name, v in named_vars.items()
                    }
                )
                return
            for sol in group_solutions[ix]:
                merged = dict(acc)
                merged.update(sol)
                product(ix + 1, merged)

        if all(group_solutions):
            product(0, {})
        return result
