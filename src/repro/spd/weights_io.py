"""Writing learned weights back to the disk-resident database (§5).

"At the end of the session the global database will be updated [...]
This substantial increase in database size and update complexity is
needed so that weights can be maintained for each arc, in order to use
'best-first' searching."

:func:`write_back_weights` persists a weight store's pointer entries
into the SPD-resident records using the figure-6 logic operations —
per dirty block: load the holding track (seek + revolution unless
cached), associative **mark** (op 1), and **update** (op 3) rewriting
the record's pointer-weight words.  The report quantifies exactly the
maintenance cost the paper accepts.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..ortree.tree import ArcKey
from ..weights.store import WeightStore
from .disk import Record
from .ops import SemanticPagingDisk

__all__ = ["WriteBackReport", "write_back_weights"]


@dataclass
class WriteBackReport:
    """What one session-end weight write-back cost."""

    dirty_pointers: int = 0
    blocks_touched: int = 0
    track_loads: int = 0
    cycles: float = 0.0
    words_written: int = 0


def write_back_weights(
    spd: SemanticPagingDisk, store: WeightStore
) -> WriteBackReport:
    """Persist every pointer entry of ``store`` into the SPD records.

    Returns the cost report.  The in-memory
    :class:`~repro.linkdb.build.LinkedDatabase` view is refreshed too,
    so database and disk agree afterwards.
    """
    report = WriteBackReport()
    # group dirty pointers by the block that physically holds them
    dirty: dict[int, dict[tuple[int, int], float]] = defaultdict(dict)
    for key in store.keys():
        if key.kind != "pointer":
            continue
        block_id, literal_ix, target = key.key
        if block_id < 0:
            continue  # query pseudo-block has no disk record
        dirty[block_id][(literal_ix, target)] = store.weight(key)
        report.dirty_pointers += 1
    # visit blocks grouped by their physical track to batch loads
    by_track: dict[tuple[int, int], list[int]] = defaultdict(list)
    for block_id in dirty:
        addr = spd.addresses.get(block_id)
        if addr is None:
            continue
        by_track[(addr.sp, addr.cylinder)].append(block_id)
    for (sp_ix, cyl), block_ids in sorted(by_track.items()):
        sp = spd.sps[sp_ix]
        loads_before = sp.stats.track_loads
        report.cycles += sp.load_cylinder(cyl)
        report.track_loads += sp.stats.track_loads - loads_before
        sp.clear_marks()
        want = set(block_ids)
        _, cost = sp.search_mark(lambda r: r.block_id in want)
        report.cycles += cost

        def rewrite(record: Record) -> Record:
            updates = dirty[record.block_id]
            new_pointers = []
            touched = 0
            for ix, (name, target, weight) in enumerate(record.pointers):
                lit_ix = _literal_index(spd, record.block_id, ix)
                new_w = updates.get((lit_ix, target))
                if new_w is not None and new_w != weight:
                    new_pointers.append((name, target, new_w))
                    touched += 1
                else:
                    new_pointers.append((name, target, weight))
            report.words_written += touched
            return Record(
                block_id=record.block_id,
                words=record.words,
                pointers=tuple(new_pointers),
                payload=record.payload,
            )

        report.cycles += sp.update_marked(rewrite, words_touched=1)
        report.blocks_touched += len(block_ids)
    spd.db.refresh_weights()
    return report


def _literal_index(spd: SemanticPagingDisk, block_id: int, pointer_ix: int) -> int:
    """The body-literal index of the pointer_ix-th pointer of a block
    (records store pointers in the same order as the database blocks)."""
    block = spd.db.block(block_id)
    return block.pointers[pointer_ix].literal_index
