"""The Semantic Paging Disk of §6/figure 6: search processors with
track caches and mark logic, semantic page extraction (MIMD and SIMD
modes), and the fixed-size-paging baseline."""

from .disk import (
    BlockAddress,
    Record,
    SearchProcessor,
    SpdCosts,
    SpdStats,
    Track,
)
from .ops import FixedPager, PageResult, SemanticPagingDisk, database_records
from .simd import GlobalAddress, SimdSpd
from .weights_io import WriteBackReport, write_back_weights

__all__ = [
    "Record",
    "Track",
    "SearchProcessor",
    "SpdCosts",
    "SpdStats",
    "BlockAddress",
    "SemanticPagingDisk",
    "FixedPager",
    "PageResult",
    "database_records",
    "SimdSpd",
    "GlobalAddress",
    "WriteBackReport",
    "write_back_weights",
]
