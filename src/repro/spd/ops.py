"""Semantic paging operations over a set of SPs (§6).

"The basic task of the database machine is to store a graph,
implemented using pointers, and to extract a subgraph consisting of
some selected nodes and all nodes within some Hamming distance of the
selected nodes.  [...] rather than organizing data in fixed size
pages, data is semantically organized in terms of a graph, and a page
is a subgraph defined by the state of the process at run time."

:class:`SemanticPagingDisk` lays a
:class:`~repro.linkdb.build.LinkedDatabase` out over ``n_sps`` search
processors (striped by track capacity, in block-id order so related
clauses — which are usually consulted together — stay clustered), maps
block ids to :class:`BlockAddress` es, and implements:

* :meth:`page_in` — the semantic page: start blocks + all blocks within
  Hamming distance ``radius``, via iterated mark/follow ops, returning
  the block ids and the total disk cycles;
* :meth:`fetch_blocks` — point lookups (the fixed-page comparison
  baseline for E7 uses :class:`FixedPager` below).

:class:`FixedPager` is the conventional alternative: fixed-size pages
of consecutive blocks with an LRU cache — the thing semantic paging is
claimed to beat on pointer-chasing workloads.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..linkdb.build import LinkedDatabase
from .disk import BlockAddress, Record, SearchProcessor, SpdCosts, SpdStats, Track

__all__ = ["SemanticPagingDisk", "PageResult", "FixedPager", "database_records"]


def database_records(db: LinkedDatabase) -> list[Record]:
    """Serialize every database block to an SPD record."""
    out: list[Record] = []
    for block in db:
        pointers = tuple(
            (p.name, p.target, p.weight) for p in block.pointers
        )
        head = block.clause.head
        try:
            payload = block.indicator
        except TypeError:
            payload = (str(head), 0)
        out.append(
            Record(
                block_id=block.block_id,
                words=block.size_words,
                pointers=pointers,
                payload=payload,
            )
        )
    return out


@dataclass
class PageResult:
    """Outcome of one semantic page-in."""

    blocks: set[int] = field(default_factory=set)
    cycles: float = 0.0
    track_loads: int = 0
    deferred_followed: int = 0  # cross-track pointers chased


class SemanticPagingDisk:
    """A bank of SPs holding one linked database, with semantic paging.

    Parameters
    ----------
    db:
        The database to lay out.
    n_sps:
        Number of search processors (the paper's search-parallelism).
    track_words:
        Capacity of one track in words; consecutive blocks fill a track
        then spill to the next (locality-preserving layout).
    costs:
        Disk cost model shared by all SPs.
    """

    def __init__(
        self,
        db: LinkedDatabase,
        n_sps: int = 2,
        track_words: int = 512,
        costs: Optional[SpdCosts] = None,
        layout: str = "unified",
    ):
        if n_sps < 1:
            raise ValueError("need at least one SP")
        if layout not in ("unified", "split"):
            raise ValueError(f"unknown layout {layout!r}")
        self.db = db
        self.layout = layout
        self.costs = costs if costs is not None else SpdCosts()
        records = database_records(db)
        if layout == "unified":
            # Locality layout (the paper's §6 position: "there is little
            # reason to have a separate database for rules and for
            # facts"): fill tracks in block order, striping tracks
            # round-robin over SPs so SPs can search concurrently.
            groups = [(records, list(range(n_sps)))]
        else:
            # PRISM-style split (the alternative §6 argues against):
            # rules on the first half of the SPs, facts on the second.
            rule_ids = {
                b.block_id for b in db if not b.is_fact
            }
            rules = [r for r in records if r.block_id in rule_ids]
            facts = [r for r in records if r.block_id not in rule_ids]
            half = max(1, n_sps // 2)
            groups = [
                (rules, list(range(half))),
                (facts, list(range(half, n_sps)) or [n_sps - 1]),
            ]
        per_sp: list[list[Track]] = [[] for _ in range(n_sps)]
        self.addresses: dict[int, BlockAddress] = {}
        for group_records, group_sps in groups:
            tracks: list[Track] = [Track()]
            for rec in group_records:
                if (
                    tracks[-1].words + rec.words > track_words
                    and len(tracks[-1]) > 0
                ):
                    tracks.append(Track())
                tracks[-1].records.append(rec)
            for tix, track in enumerate(tracks):
                sp = group_sps[tix % len(group_sps)]
                cyl = len(per_sp[sp])
                for rix, rec in enumerate(track.records):
                    self.addresses[rec.block_id] = BlockAddress(sp, cyl, rix)
                per_sp[sp].append(track)
        self.sps = [
            SearchProcessor(i, trs or [Track()], self.costs)
            for i, trs in enumerate(per_sp)
        ]

    # -- bookkeeping -----------------------------------------------------------
    @property
    def n_sps(self) -> int:
        return len(self.sps)

    def address(self, block_id: int) -> BlockAddress:
        return self.addresses[block_id]

    def combined_stats(self) -> SpdStats:
        total = SpdStats()
        for sp in self.sps:
            s = sp.stats
            total.track_loads += s.track_loads
            total.cache_hits += s.cache_hits
            total.searches += s.searches
            total.follows += s.follows
            total.updates += s.updates
            total.marked_total += s.marked_total
            total.cycles += s.cycles
            total.cross_cylinder_pointers += s.cross_cylinder_pointers
        return total

    # -- maintenance -------------------------------------------------------------
    def compact(self) -> int:
        """Reclaim records of retracted blocks (§6: "garbage collection
        between tracks in a cylinder can be done in the SPs without
        interacting with external processors").

        Drops every record whose block is no longer live in the
        database, compacts the tracks, and rebuilds the address map.
        Returns the number of records reclaimed.
        """
        live = {b.block_id for b in self.db}
        dropped = 0
        for sp in self.sps:
            dropped += sp.garbage_collect(lambda r: r.block_id in live)
        self.addresses = {}
        for sp in self.sps:
            for cyl, track in enumerate(sp.tracks):
                for rix, rec in enumerate(track.records):
                    self.addresses[rec.block_id] = BlockAddress(sp.sp_id, cyl, rix)
        return dropped

    # -- operations --------------------------------------------------------------
    def fetch_blocks(self, block_ids: Iterable[int]) -> tuple[set[int], float]:
        """Point-fetch: load whichever tracks hold the blocks (grouped so
        each needed track is loaded at most once); returns (found, cycles)."""
        cycles = 0.0
        found: set[int] = set()
        by_track: dict[tuple[int, int], list[int]] = {}
        for bid in block_ids:
            addr = self.addresses.get(bid)
            if addr is None:
                continue
            by_track.setdefault((addr.sp, addr.cylinder), []).append(bid)
        for (sp_ix, cyl), bids in sorted(by_track.items()):
            cycles += self.sps[sp_ix].load_cylinder(cyl)
            found.update(bids)
        return found, cycles

    def page_in(
        self,
        start_blocks: Sequence[int],
        radius: int = 1,
        name: Optional[str] = None,
    ) -> PageResult:
        """Extract the semantic page: ``start_blocks`` plus every block
        within pointer distance ``radius`` (following only ``name``-d
        pointers when given).

        Implemented exactly as the paper's ops: mark the start blocks
        (op 1), then ``radius`` rounds of follow (op 2); cross-track
        pointers are deferred and chased by loading their tracks.
        """
        result = PageResult()
        frontier: set[int] = set()
        for bid in start_blocks:
            if bid in self.addresses:
                frontier.add(bid)
        result.blocks |= frontier
        for _ in range(radius):
            if not frontier:
                break
            next_frontier: set[int] = set()
            by_track: dict[tuple[int, int], set[int]] = {}
            for bid in frontier:
                addr = self.addresses[bid]
                by_track.setdefault((addr.sp, addr.cylinder), set()).add(bid)
            for (sp_ix, cyl), bids in sorted(by_track.items()):
                sp = self.sps[sp_ix]
                loads_before = sp.stats.track_loads
                result.cycles += sp.load_cylinder(cyl)
                result.track_loads += sp.stats.track_loads - loads_before
                sp.clear_marks()
                _, cost = sp.search_mark(lambda r, want=bids: r.block_id in want)
                result.cycles += cost
                track = sp.cache
                assert track is not None
                local = {r.block_id: i for i, r in enumerate(track.records)}

                def resolve(target: int, _local=local, _cyl=cyl, _sp=sp_ix) -> Optional[int]:
                    addr = self.addresses.get(target)
                    if addr is None:
                        return None
                    if addr.sp == _sp and addr.cylinder == _cyl:
                        return _local.get(target)
                    return None

                newly, deferred, cost = sp.follow_marks(name=name, resolve=resolve)
                result.cycles += cost
                for i in newly:
                    bid = track.records[i].block_id
                    if bid not in result.blocks:
                        next_frontier.add(bid)
                for _, target, _w in deferred:
                    if target in self.addresses and target not in result.blocks:
                        next_frontier.add(target)
                        result.deferred_followed += 1
            result.blocks |= next_frontier
            frontier = next_frontier
        return result


class FixedPager:
    """Conventional fixed-size paging with LRU — the E7 baseline.

    Blocks are grouped into pages of ``blocks_per_page`` consecutive
    ids; ``touch`` faults the holding page in (cost = one track load)
    if absent, evicting LRU beyond ``cache_pages``.
    """

    def __init__(
        self,
        db: LinkedDatabase,
        blocks_per_page: int = 8,
        cache_pages: int = 4,
        page_load_cycles: float = 1050.0,  # seek_base + revolution, roughly
    ):
        if blocks_per_page < 1 or cache_pages < 1:
            raise ValueError("bad pager parameters")
        self.blocks_per_page = blocks_per_page
        self.cache_pages = cache_pages
        self.page_load_cycles = page_load_cycles
        self._cache: OrderedDict[int, None] = OrderedDict()
        self.faults = 0
        self.hits = 0
        self.cycles = 0.0

    def page_of(self, block_id: int) -> int:
        return block_id // self.blocks_per_page

    def touch(self, block_id: int) -> float:
        """Access a block; returns the cycles charged (0 on a hit)."""
        page = self.page_of(block_id)
        if page in self._cache:
            self._cache.move_to_end(page)
            self.hits += 1
            return 0.0
        self.faults += 1
        self._cache[page] = None
        self._cache.move_to_end(page)
        while len(self._cache) > self.cache_pages:
            self._cache.popitem(last=False)
        self.cycles += self.page_load_cycles
        return self.page_load_cycles

    def touch_all(self, block_ids: Iterable[int]) -> float:
        return sum(self.touch(b) for b in block_ids)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.faults
        return self.hits / total if total else 0.0
