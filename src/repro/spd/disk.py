"""The Semantic Paging Disk (SPD), figure 6 / section 6.

"The SPD consists of one or more search processors (SP).  Each SP has
one or more tracks [...], a read-write head [...], a random access
memory (a cache) able to hold a track's data, and logic to implement
the actions described below.  The blocks of the linked list are stored
in variable length records, which have a block number that is defined
to be the number of blocks above it in the track.  [...] The logic is
able to

1. Search the data in a block associatively and mark the blocks.
2. Follow all pointers, or only pointers with specified names, from
   marked blocks to other blocks and mark them.
3. Output, replace, insert and delete words in a marked block."

Model: each :class:`SearchProcessor` owns one surface = a list of
tracks (cylinder index → track).  Loading a track into the cache costs
a seek (cylinder distance) plus one disk revolution; the three logic
operations then run on the cache at RAM speed.  Costs are charged in
cycles through :class:`SpdStats` so the machine simulator can overlap
disk latency with computation.

Records carry the *database block id* of the
:class:`~repro.linkdb.blocks.Block` they store, its word size, and its
pointers ``(name, target block id, weight)`` — enough for marking and
pointer-following without re-parsing clause text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

__all__ = [
    "Record",
    "Track",
    "SpdStats",
    "SpdCosts",
    "SearchProcessor",
    "BlockAddress",
]


@dataclass(frozen=True)
class Record:
    """A variable-length record: one database block on disk."""

    block_id: int  # global database block id (clause id)
    words: int  # record length in memory words
    pointers: tuple[tuple[str, int, float], ...]  # (name, target block id, weight)
    payload: tuple = ()  # searchable words (head indicator symbols etc.)


@dataclass
class Track:
    """An ordered sequence of records; local block number = position."""

    records: list[Record] = field(default_factory=list)

    @property
    def words(self) -> int:
        return sum(r.words for r in self.records)

    def __len__(self) -> int:
        return len(self.records)


@dataclass(frozen=True)
class BlockAddress:
    """Physical location of a database block: (sp, cylinder, record index)."""

    sp: int
    cylinder: int
    index: int


@dataclass
class SpdCosts:
    """Cycle costs of the disk model."""

    seek_base: float = 50.0  # head settle
    seek_per_cylinder: float = 5.0
    words_per_revolution: int = 4096  # track capacity read in one revolution
    revolution_cycles: float = 1000.0  # full rotation
    cache_search_cycles: float = 2.0  # associative compare, whole cache
    cache_follow_cycles_per_mark: float = 1.0
    cache_update_cycles_per_word: float = 1.0

    def load_cost(self, from_cyl: Optional[int], to_cyl: int) -> float:
        """Seek + one revolution to stream the track into the cache."""
        seek = 0.0
        if from_cyl is None:
            seek = self.seek_base
        elif from_cyl != to_cyl:
            seek = self.seek_base + self.seek_per_cylinder * abs(from_cyl - to_cyl)
        return seek + self.revolution_cycles


@dataclass
class SpdStats:
    track_loads: int = 0
    cache_hits: int = 0  # operations served by the already-loaded track
    searches: int = 0
    follows: int = 0
    updates: int = 0
    marked_total: int = 0
    cycles: float = 0.0
    cross_cylinder_pointers: int = 0
    read_retries: int = 0  # injected-fault re-reads (failure injection)


class SearchProcessor:
    """One SP: a surface of tracks, a single-track cache, and mark logic."""

    def __init__(
        self,
        sp_id: int,
        tracks: Sequence[Track],
        costs: Optional[SpdCosts] = None,
    ):
        self.sp_id = sp_id
        self.tracks = list(tracks)
        self.costs = costs if costs is not None else SpdCosts()
        self.cached_cylinder: Optional[int] = None
        self.marks: set[int] = set()  # record indices marked in the cache
        self.stats = SpdStats()
        # failure injection: cylinder -> remaining transient read faults;
        # each fault costs one extra revolution (a re-read) on load
        self._faults: dict[int, int] = {}

    # -- failure injection ------------------------------------------------------
    def inject_fault(self, cylinder: int, retries: int = 1) -> None:
        """Make the next ``retries`` loads of ``cylinder`` each require
        one re-read revolution before the data verifies (a transient
        media fault).  The SP always recovers — the model is latency,
        not data loss."""
        if retries < 1:
            raise ValueError("retries must be >= 1")
        self._faults[cylinder] = self._faults.get(cylinder, 0) + retries

    # -- cache management -----------------------------------------------------
    @property
    def cache(self) -> Optional[Track]:
        if self.cached_cylinder is None:
            return None
        return self.tracks[self.cached_cylinder]

    def load_cylinder(self, cylinder: int) -> float:
        """Bring ``cylinder``'s track into the cache; returns cycles spent.

        A no-op (0 cycles, counted as a cache hit) when already loaded.
        """
        if not 0 <= cylinder < len(self.tracks):
            raise IndexError(f"SP{self.sp_id} has no cylinder {cylinder}")
        if self.cached_cylinder == cylinder:
            self.stats.cache_hits += 1
            return 0.0
        cost = self.costs.load_cost(self.cached_cylinder, cylinder)
        pending = self._faults.get(cylinder, 0)
        if pending:
            self._faults[cylinder] = pending - 1
            self.stats.read_retries += 1
            cost += self.costs.revolution_cycles  # one re-read
        self.cached_cylinder = cylinder
        self.marks.clear()
        self.stats.track_loads += 1
        self.stats.cycles += cost
        return cost

    # -- logic op 1: associative search ------------------------------------------
    def search_mark(self, predicate: Callable[[Record], bool]) -> tuple[set[int], float]:
        """Mark cached records satisfying ``predicate`` (associative scan).

        Returns (newly marked record indices, cycles).  The scan is
        content-addressable: one compare broadcast over the whole
        cache, so the cost is constant per call.
        """
        track = self.cache
        if track is None:
            raise RuntimeError(f"SP{self.sp_id}: no track cached")
        new = {
            i for i, r in enumerate(track.records) if predicate(r) and i not in self.marks
        }
        self.marks |= new
        self.stats.searches += 1
        self.stats.marked_total += len(new)
        cost = self.costs.cache_search_cycles
        self.stats.cycles += cost
        return new, cost

    # -- logic op 2: pointer following ----------------------------------------------
    def follow_marks(
        self,
        name: Optional[str] = None,
        resolve: Optional[Callable[[int], Optional[int]]] = None,
    ) -> tuple[set[int], list[tuple[str, int, float]], float]:
        """Follow pointers out of marked records; mark in-cache targets.

        ``resolve(block_id)`` maps a target block id to a record index
        in *this* cache, or None if it lives elsewhere; such pointers
        are returned as deferred (the SIMD layer saves them "until the
        other cylinder is loaded into the cache").  With ``name`` given,
        only pointers carrying that name are followed.
        """
        track = self.cache
        if track is None:
            raise RuntimeError(f"SP{self.sp_id}: no track cached")
        if resolve is None:
            local = {r.block_id: i for i, r in enumerate(track.records)}
            resolve = local.get
        newly: set[int] = set()
        deferred: list[tuple[str, int, float]] = []
        n_marked = len(self.marks)
        for i in sorted(self.marks):
            for pname, target, weight in track.records[i].pointers:
                if name is not None and pname != name:
                    continue
                ix = resolve(target)
                if ix is None:
                    deferred.append((pname, target, weight))
                    self.stats.cross_cylinder_pointers += 1
                elif ix not in self.marks and ix not in newly:
                    newly.add(ix)
        self.marks |= newly
        self.stats.follows += 1
        self.stats.marked_total += len(newly)
        cost = self.costs.cache_follow_cycles_per_mark * max(1, n_marked)
        self.stats.cycles += cost
        return newly, deferred, cost

    # -- logic op 3: update ----------------------------------------------------------
    def update_marked(
        self, transform: Callable[[Record], Record], words_touched: int = 1
    ) -> float:
        """Replace each marked record via ``transform`` (output/replace/
        insert/delete are all record rewrites at this granularity)."""
        track = self.cache
        if track is None:
            raise RuntimeError(f"SP{self.sp_id}: no track cached")
        for i in self.marks:
            track.records[i] = transform(track.records[i])
        self.stats.updates += 1
        cost = self.costs.cache_update_cycles_per_word * words_touched * max(
            1, len(self.marks)
        )
        self.stats.cycles += cost
        return cost

    def marked_records(self) -> list[Record]:
        track = self.cache
        if track is None:
            return []
        return [track.records[i] for i in sorted(self.marks)]

    def clear_marks(self) -> None:
        self.marks.clear()

    # -- maintenance --------------------------------------------------------------
    def garbage_collect(self, live: Callable[[Record], bool]) -> int:
        """Compact every track, dropping dead records ("garbage collection
        between tracks in a cylinder can be done in the SPs without
        interacting with external processors").  Returns records dropped."""
        dropped = 0
        for t in self.tracks:
            keep = [r for r in t.records if live(r)]
            dropped += len(t.records) - len(keep)
            t.records = keep
        self.marks.clear()
        self.cached_cylinder = None  # cache invalidated by compaction
        return dropped
