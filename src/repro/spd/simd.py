"""SIMD mode for multi-SP operation (§6).

"Where more than one SP is used, they can work independently (MIMD
mode) or interdependently (SIMD mode).  In SIMD mode, all SPs work on
the same track on their surface (a cylinder), and the tracks in a
cylinder are presumed ordered in a chain.  A global block number is
defined for each record [...] the number of records above its record in
the current track, plus the number of records in all the tracks above
this track.  The pointer becomes a pair (cylinder number, global
pointer).  [...] The associative search operation (1) and the pointer
transfer (2) can be performed simultaneously in all SPs [...] If the
pointer is to another cylinder, pointer transfer is handled by saving
the pointer until the other cylinder is loaded into the cache."

:class:`SimdSpd` lays the database out cylinder-major (a cylinder =
``n_sps`` tracks, chained in SP order), computes global block numbers,
and implements page extraction with per-cylinder batched deferral —
one cylinder load serves *all* pending pointers into it, which is the
SIMD payoff measured in E7.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..linkdb.build import LinkedDatabase
from .disk import Record, SpdCosts, Track
from .ops import PageResult, database_records

__all__ = ["SimdSpd", "GlobalAddress"]


@dataclass(frozen=True)
class GlobalAddress:
    """SIMD addressing: (cylinder, global block number within cylinder)."""

    cylinder: int
    global_number: int


class SimdSpd:
    """A cylinder-synchronous bank of SPs.

    All SPs always cache the same cylinder; a load costs one seek +
    revolution regardless of SP count (they rotate together), bringing
    in ``n_sps`` tracks' worth of records at once.
    """

    def __init__(
        self,
        db: LinkedDatabase,
        n_sps: int = 2,
        track_words: int = 512,
        costs: Optional[SpdCosts] = None,
    ):
        if n_sps < 1:
            raise ValueError("need at least one SP")
        self.db = db
        self.n_sps = n_sps
        self.costs = costs if costs is not None else SpdCosts()
        records = database_records(db)
        # cylinder-major layout: fill the n_sps tracks of cylinder 0 in
        # chain order, then cylinder 1, ...
        self.cylinders: list[list[Track]] = []
        cur: list[Track] = [Track() for _ in range(n_sps)]
        cur_track = 0
        for rec in records:
            if cur[cur_track].words + rec.words > track_words and len(cur[cur_track]) > 0:
                cur_track += 1
                if cur_track >= n_sps:
                    self.cylinders.append(cur)
                    cur = [Track() for _ in range(n_sps)]
                    cur_track = 0
            cur[cur_track].records.append(rec)
        self.cylinders.append(cur)
        # global block numbers: records above in track + in earlier tracks
        self.global_address: dict[int, GlobalAddress] = {}
        self._by_cyl_gnum: dict[tuple[int, int], Record] = {}
        for cix, tracks in enumerate(self.cylinders):
            gnum = 0
            for track in tracks:
                for rec in track.records:
                    addr = GlobalAddress(cix, gnum)
                    self.global_address[rec.block_id] = addr
                    self._by_cyl_gnum[(cix, gnum)] = rec
                    gnum += 1
        self.cached_cylinder: Optional[int] = None
        self.track_loads = 0
        self.cache_hits = 0
        self.cycles = 0.0
        self.searches = 0
        self.follows = 0
        self.deferred_served = 0

    # -- cache -----------------------------------------------------------------
    def load_cylinder(self, cylinder: int) -> float:
        """All SPs load ``cylinder`` together: one seek + revolution."""
        if not 0 <= cylinder < len(self.cylinders):
            raise IndexError(f"no cylinder {cylinder}")
        if self.cached_cylinder == cylinder:
            self.cache_hits += 1
            return 0.0
        cost = self.costs.load_cost(self.cached_cylinder, cylinder)
        self.cached_cylinder = cylinder
        self.track_loads += 1
        self.cycles += cost
        return cost

    def cached_records(self) -> list[Record]:
        if self.cached_cylinder is None:
            return []
        out: list[Record] = []
        for track in self.cylinders[self.cached_cylinder]:
            out.extend(track.records)
        return out

    # -- page extraction ------------------------------------------------------------
    def page_in(
        self,
        start_blocks: Sequence[int],
        radius: int = 1,
        name: Optional[str] = None,
    ) -> PageResult:
        """Semantic page extraction with cylinder-batched deferral.

        Pending pointer targets are grouped by cylinder; each loop
        iteration loads the cylinder with the most pending work and
        serves *all* of it with one SIMD search+follow — the "saving
        the pointer until the other cylinder is loaded" discipline.
        ``radius`` bounds the pointer distance from the start blocks.
        """
        result = PageResult()
        # pending[cylinder] = set of (block id, remaining radius)
        pending: dict[int, set[tuple[int, int]]] = defaultdict(set)
        for bid in start_blocks:
            addr = self.global_address.get(bid)
            if addr is None:
                continue
            result.blocks.add(bid)
            pending[addr.cylinder].add((bid, radius))
        # best remaining radius each block has been reached with
        seen_budget: dict[int, int] = {bid: radius for bid in result.blocks}
        while pending:
            cyl = max(pending, key=lambda c: len(pending[c]))
            work = pending.pop(cyl)
            loads_before = self.track_loads
            result.cycles += self.load_cylinder(cyl)
            result.track_loads += self.track_loads - loads_before
            want = {bid for bid, budget in work if budget > 0}
            if not want:
                continue
            budgets = {bid: budget for bid, budget in work}
            # SIMD search: one associative compare across all SPs
            self.searches += 1
            result.cycles += self.costs.cache_search_cycles
            # SIMD follow: all SPs transfer pointers simultaneously
            self.follows += 1
            result.cycles += self.costs.cache_follow_cycles_per_mark
            for rec in self.cached_records():
                if rec.block_id not in want:
                    continue
                budget = budgets[rec.block_id]
                for pname, target, _w in rec.pointers:
                    if name is not None and pname != name:
                        continue
                    taddr = self.global_address.get(target)
                    if taddr is None:
                        continue
                    remaining = budget - 1
                    prev = seen_budget.get(target, -1)
                    if prev >= remaining:
                        continue  # already reached with at least this budget
                    seen_budget[target] = remaining
                    result.blocks.add(target)
                    if remaining > 0:
                        if taddr.cylinder != cyl:
                            self.deferred_served += 1
                            result.deferred_followed += 1
                        pending[taddr.cylinder].add((target, remaining))
        return result
