"""Sequential depth-first SLD resolution — the Prolog baseline.

Section 2 of the paper walks through DEC-10-Prolog-style execution of
``?- gf(sam, G)``: depth-first, left-to-right, clauses tried in source
order.  This engine reproduces that behaviour exactly; it is the
baseline every B-LOG strategy is compared against (experiment E1) and
the oracle for solution-set equivalence tests.

The engine is generator-based: :meth:`Solver.solve` lazily yields
:class:`Solution` objects in Prolog order.  A depth bound turns runaway
recursion into countable cutoffs instead of a crash.

Supported control: conjunction, ``!`` (cut, standard transparent-through-
conjunction semantics), and the builtins of
:mod:`repro.logic.builtins`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from .builtins import BuiltinError, call_builtin, is_builtin
from .parser import Clause, parse_query
from .program import Program
from .terms import Atom, Struct, Term, Var, term_vars
from .unify import Bindings, UnifyStats, rename_apart, unify

__all__ = ["Solver", "Solution", "SolverStats", "prolog_solutions"]

_CUT = Atom("!")


@dataclass(frozen=True)
class Solution:
    """One answer: the query with bindings applied, plus named bindings."""

    goals: tuple[Term, ...]
    bindings: dict[str, Term]

    def __getitem__(self, name: str) -> Term:
        return self.bindings[name]

    def __contains__(self, name: str) -> bool:
        return name in self.bindings

    def __str__(self) -> str:
        if not self.bindings:
            return "true"
        return ", ".join(f"{k} = {v}" for k, v in sorted(self.bindings.items()))


@dataclass
class SolverStats:
    """Work counters for one or more queries."""

    inferences: int = 0  # goal reductions attempted (clause tries)
    resolutions: int = 0  # successful head unifications
    builtin_calls: int = 0
    solutions: int = 0
    max_depth: int = 0
    depth_cutoffs: int = 0
    unify: UnifyStats = field(default_factory=UnifyStats)

    def reset(self) -> None:
        self.inferences = 0
        self.resolutions = 0
        self.builtin_calls = 0
        self.solutions = 0
        self.max_depth = 0
        self.depth_cutoffs = 0
        self.unify.reset()


class Solver:
    """Depth-first SLD resolution over a :class:`Program`.

    Parameters
    ----------
    program:
        The knowledge base.
    max_depth:
        Resolution depth bound; exceeding it fails that branch (counted
        in ``stats.depth_cutoffs``), keeping left-recursive programs
        terminating.
    occurs_check:
        Enable the unification occurs check (off by default, as in
        standard Prolog).
    """

    def __init__(
        self,
        program: Program,
        max_depth: int = 512,
        occurs_check: bool = False,
    ):
        self.program = program
        self.max_depth = max_depth
        self.occurs_check = occurs_check
        self.stats = SolverStats()

    # -- public API ---------------------------------------------------------
    def solve(
        self,
        query: str | Sequence[Term],
        max_solutions: Optional[int] = None,
    ) -> Iterator[Solution]:
        """Yield solutions to ``query`` in Prolog (depth-first) order.

        ``query`` is either source text (``"gf(sam, G)"``) or a sequence
        of goal terms.
        """
        goals = parse_query(query) if isinstance(query, str) else tuple(query)
        bindings = Bindings(self.stats.unify)
        qvars = [v for g in goals for v in term_vars(g)]
        seen_names: dict[str, Var] = {}
        for v in qvars:
            if v.name and v.name != "_":
                seen_names.setdefault(v.name, v)
        count = 0
        for _ in self._solve(goals, bindings, 0, [False]):
            self.stats.solutions += 1
            yield Solution(
                goals=bindings.resolve_all(goals),
                bindings={n: bindings.resolve(v) for n, v in seen_names.items()},
            )
            count += 1
            if max_solutions is not None and count >= max_solutions:
                return

    def solve_all(
        self, query: str | Sequence[Term], max_solutions: Optional[int] = None
    ) -> list[Solution]:
        """All solutions as a list."""
        return list(self.solve(query, max_solutions))

    def succeeds(self, query: str | Sequence[Term]) -> bool:
        """True if the query has at least one solution."""
        for _ in self.solve(query, max_solutions=1):
            return True
        return False

    # -- engine ---------------------------------------------------------------
    def _solve(
        self,
        goals: tuple[Term, ...],
        b: Bindings,
        depth: int,
        cutflag: list[bool],
    ) -> Iterator[None]:
        if depth > self.stats.max_depth:
            self.stats.max_depth = depth
        if not goals:
            yield None
            return
        goal = b.walk(goals[0])
        rest = goals[1:]

        # conjunction flattening: (a, b) as a goal term
        if isinstance(goal, Struct) and goal.functor == "," and goal.arity == 2:
            yield from self._solve((goal.args[0], goal.args[1]) + rest, b, depth, cutflag)
            return

        if goal == _CUT:
            yield from self._solve(rest, b, depth, cutflag)
            cutflag[0] = True
            return

        if isinstance(goal, Var):
            raise BuiltinError("cannot call an unbound variable goal")

        # engine-level control constructs (need recursive solving, so
        # they live here rather than in the builtin table)
        if isinstance(goal, Struct) and goal.functor == "\\+" and goal.arity == 1:
            # negation as failure: succeeds iff the sub-goal has no
            # solution; never exports bindings
            mark = b.mark()
            solved = False
            for _ in self._solve((goal.args[0],), b, depth + 1, [False]):
                solved = True
                break
            b.undo_to(mark)
            if not solved:
                yield from self._solve(rest, b, depth, cutflag)
            return

        if isinstance(goal, Struct) and goal.functor == "call" and goal.arity == 1:
            yield from self._solve((goal.args[0],) + rest, b, depth + 1, cutflag)
            return

        if isinstance(goal, Struct) and goal.functor == "findall" and goal.arity == 3:
            template, sub, out = goal.args
            collected: list[Term] = []
            mark = b.mark()
            for _ in self._solve((sub,), b, depth + 1, [False]):
                collected.append(b.resolve(template))
            b.undo_to(mark)
            from .terms import make_list
            from .unify import unify as _unify

            mark = b.mark()
            if _unify(out, make_list(collected), b, self.occurs_check):
                yield from self._solve(rest, b, depth, cutflag)
                if cutflag[0]:
                    b.undo_to(mark)
                    return
            b.undo_to(mark)
            return

        if is_builtin(goal):
            self.stats.builtin_calls += 1
            mark = b.mark()
            try:
                for _ in call_builtin(goal, b):
                    yield from self._solve(rest, b, depth, cutflag)
                    if cutflag[0]:
                        b.undo_to(mark)
                        return
            finally:
                b.undo_to(mark)
            return

        if depth >= self.max_depth:
            self.stats.depth_cutoffs += 1
            return

        for cid in self.program.candidates(goal):
            self.stats.inferences += 1
            clause = self.program.clause(cid)
            head, body = _rename_clause(clause)
            mark = b.mark()
            if unify(goal, head, b, self.occurs_check):
                self.stats.resolutions += 1
                localcut = [False]
                for _ in self._solve(body, b, depth + 1, localcut):
                    yield from self._solve(rest, b, depth, cutflag)
                    if cutflag[0]:
                        b.undo_to(mark)
                        return
                b.undo_to(mark)
                if localcut[0]:
                    return
            else:
                b.undo_to(mark)


def _rename_clause(clause: Clause) -> tuple[Term, tuple[Term, ...]]:
    """Rename a clause apart: fresh variables shared by head and body."""
    mapping: dict[int, Var] = {}
    head = rename_apart(clause.head, mapping)
    body = tuple(rename_apart(g, mapping) for g in clause.body)
    return head, body


def prolog_solutions(
    program: Program,
    query: str | Sequence[Term],
    var: Optional[str] = None,
    max_depth: int = 512,
    max_solutions: Optional[int] = None,
) -> list:
    """Convenience: solutions of ``query`` against ``program``.

    With ``var`` given, returns the list of that variable's bindings (as
    terms); otherwise the list of :class:`Solution` objects.
    """
    solver = Solver(program, max_depth=max_depth)
    sols = solver.solve_all(query, max_solutions=max_solutions)
    if var is None:
        return sols
    return [s[var] for s in sols]
