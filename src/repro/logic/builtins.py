"""Built-in predicates for the sequential engine and the OR-tree expander.

The paper's examples only need pure Horn clauses, but realistic
workloads (N-queens, map coloring) need arithmetic and comparison.
Builtins are *deterministic tests/bindings*: they either fail or
succeed exactly once, optionally binding variables.  This keeps the
OR-tree model clean — a builtin goal never fans out.

Supported: ``true``, ``fail``/``false``, ``=``, ``\\=``, ``==``,
``\\==``, ``is``, ``<``, ``>``, ``=<``, ``>=``, ``=:=``, ``=\\=``,
``var``, ``nonvar``, ``atom``, ``integer``, ``between/3`` (the one
nondeterministic builtin, used by generators).
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from .terms import Atom, Int, Struct, Term, Var
from .unify import Bindings, unify

__all__ = ["BUILTINS", "is_builtin", "eval_arith", "call_builtin", "BuiltinError"]


class BuiltinError(ValueError):
    """Raised when a builtin is called with unusable arguments."""


def eval_arith(term: Term, bindings: Bindings) -> int:
    """Evaluate a ground arithmetic expression to an int (Prolog ``is``)."""
    term = bindings.walk(term)
    if isinstance(term, Int):
        return term.value
    if isinstance(term, Var):
        raise BuiltinError(f"arithmetic on unbound variable {term}")
    if isinstance(term, Struct):
        f, n = term.functor, term.arity
        if n == 2:
            a = eval_arith(term.args[0], bindings)
            b = eval_arith(term.args[1], bindings)
            if f == "+":
                return a + b
            if f == "-":
                return a - b
            if f == "*":
                return a * b
            if f in ("//", "/"):
                if b == 0:
                    raise BuiltinError("division by zero")
                return a // b
            if f == "mod":
                if b == 0:
                    raise BuiltinError("mod by zero")
                return a % b
            if f == "min":
                return min(a, b)
            if f == "max":
                return max(a, b)
        if n == 1:
            a = eval_arith(term.args[0], bindings)
            if f == "-":
                return -a
            if f == "abs":
                return abs(a)
    raise BuiltinError(f"unknown arithmetic term {term}")


# Each builtin is a function (args, bindings) -> iterator of "success"
# markers; it must leave bindings consistent on each yield and undo its
# own work between yields (the engine brackets the whole call with a
# trail mark anyway).


def _bi_true(args: tuple[Term, ...], b: Bindings) -> Iterator[None]:
    yield None


def _bi_fail(args: tuple[Term, ...], b: Bindings) -> Iterator[None]:
    return
    yield  # pragma: no cover


def _bi_unify(args: tuple[Term, ...], b: Bindings) -> Iterator[None]:
    mark = b.mark()
    if unify(args[0], args[1], b):
        yield None
    else:
        b.undo_to(mark)


def _bi_not_unify(args: tuple[Term, ...], b: Bindings) -> Iterator[None]:
    mark = b.mark()
    ok = unify(args[0], args[1], b)
    b.undo_to(mark)
    if not ok:
        yield None


def _struct_eq(x: Term, y: Term, b: Bindings) -> bool:
    x = b.walk(x)
    y = b.walk(y)
    if isinstance(x, Var) or isinstance(y, Var):
        return isinstance(x, Var) and isinstance(y, Var) and x.id == y.id
    if isinstance(x, Struct) and isinstance(y, Struct):
        return (
            x.functor == y.functor
            and x.arity == y.arity
            and all(_struct_eq(p, q, b) for p, q in zip(x.args, y.args))
        )
    return x == y


def _bi_struct_eq(args: tuple[Term, ...], b: Bindings) -> Iterator[None]:
    if _struct_eq(args[0], args[1], b):
        yield None


def _bi_struct_neq(args: tuple[Term, ...], b: Bindings) -> Iterator[None]:
    if not _struct_eq(args[0], args[1], b):
        yield None


def _bi_is(args: tuple[Term, ...], b: Bindings) -> Iterator[None]:
    value = Int(eval_arith(args[1], b))
    mark = b.mark()
    if unify(args[0], value, b):
        yield None
    else:
        b.undo_to(mark)


def _cmp(op: Callable[[int, int], bool]):
    def fn(args: tuple[Term, ...], b: Bindings) -> Iterator[None]:
        if op(eval_arith(args[0], b), eval_arith(args[1], b)):
            yield None

    return fn


def _bi_var(args: tuple[Term, ...], b: Bindings) -> Iterator[None]:
    if isinstance(b.walk(args[0]), Var):
        yield None


def _bi_nonvar(args: tuple[Term, ...], b: Bindings) -> Iterator[None]:
    if not isinstance(b.walk(args[0]), Var):
        yield None


def _bi_atom(args: tuple[Term, ...], b: Bindings) -> Iterator[None]:
    if isinstance(b.walk(args[0]), Atom):
        yield None


def _bi_integer(args: tuple[Term, ...], b: Bindings) -> Iterator[None]:
    if isinstance(b.walk(args[0]), Int):
        yield None


def _bi_between(args: tuple[Term, ...], b: Bindings) -> Iterator[None]:
    lo = eval_arith(args[0], b)
    hi = eval_arith(args[1], b)
    x = b.walk(args[2])
    if isinstance(x, Int):
        if lo <= x.value <= hi:
            yield None
        return
    if not isinstance(x, Var):
        return
    for v in range(lo, hi + 1):
        mark = b.mark()
        if unify(x, Int(v), b):
            yield None
        b.undo_to(mark)


BUILTINS: dict[tuple[str, int], Callable[[tuple[Term, ...], Bindings], Iterator[None]]] = {
    ("true", 0): _bi_true,
    ("fail", 0): _bi_fail,
    ("false", 0): _bi_fail,
    ("=", 2): _bi_unify,
    ("\\=", 2): _bi_not_unify,
    ("==", 2): _bi_struct_eq,
    ("\\==", 2): _bi_struct_neq,
    ("is", 2): _bi_is,
    ("<", 2): _cmp(lambda a, b: a < b),
    (">", 2): _cmp(lambda a, b: a > b),
    ("=<", 2): _cmp(lambda a, b: a <= b),
    (">=", 2): _cmp(lambda a, b: a >= b),
    ("=:=", 2): _cmp(lambda a, b: a == b),
    ("=\\=", 2): _cmp(lambda a, b: a != b),
    ("var", 1): _bi_var,
    ("nonvar", 1): _bi_nonvar,
    ("atom", 1): _bi_atom,
    ("integer", 1): _bi_integer,
    ("between", 3): _bi_between,
}


def is_builtin(goal: Term) -> bool:
    """True if ``goal`` is handled by a builtin rather than the database."""
    try:
        return goal.indicator in BUILTINS
    except TypeError:
        return False


def call_builtin(goal: Term, bindings: Bindings) -> Iterator[None]:
    """Run the builtin for ``goal``; yields once per solution."""
    ind = goal.indicator
    fn = BUILTINS[ind]
    args = goal.args if isinstance(goal, Struct) else ()
    return fn(args, bindings)
