"""Parser for the Prolog subset used throughout the reproduction.

The paper's figure 1 gives programs in Edinburgh syntax::

    gf(X,Z) :- f(X,Y), f(Y,Z).
    f(curt, elain).
    ?- gf(sam, G).

We parse that subset plus what the workloads need:

* facts, rules (``Head :- Body``), and queries (``?- Goals``);
* atoms, integers, variables (capitalised or ``_``-prefixed);
* compound terms, lists ``[a, b | T]``;
* infix operators with standard priorities: ``is``, ``=``, ``\\=``,
  ``==``, ``\\==``, ``<``, ``>``, ``=<``, ``>=``, ``=:=``, ``=\\=``,
  arithmetic ``+ - * // mod``, and unary minus;
* ``%`` line comments and ``/* ... */`` block comments;
* quoted atoms ``'like this'``.

Variables with the same name within one clause share a
:class:`~repro.logic.terms.Var`; across clauses they are distinct
(clause-local scoping, as in Prolog).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Iterator, Optional, Sequence

from .terms import NIL, Atom, Int, Struct, Term, Var, make_list

__all__ = [
    "Clause",
    "ParseError",
    "Token",
    "tokenize",
    "parse_program",
    "parse_term",
    "parse_query",
    "parse_clause",
    "format_clause",
]


class ParseError(ValueError):
    """Raised on any syntax error, with line/column info."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        super().__init__(f"{message} (line {line}, col {col})")
        self.line = line
        self.col = col


@dataclass(frozen=True)
class Token:
    kind: str  # atom, var, int, punct, end
    text: str
    line: int
    col: int


_PUNCT2 = (":-", "?-", "\\+", "\\=", "=<", ">=", "=:=", "=\\=", "==", "\\==", "//", "->")
_PUNCT1 = "()[]|,.!;+-*/<>="


def tokenize(src: str) -> list[Token]:
    """Tokenize ``src`` into a list of tokens ending with an ``end`` token."""
    toks: list[Token] = []
    i, line, col = 0, 1, 1
    n = len(src)

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and src[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        c = src[i]
        if c in " \t\r\n":
            advance(1)
            continue
        if c == "%":
            while i < n and src[i] != "\n":
                advance(1)
            continue
        if src.startswith("/*", i):
            end = src.find("*/", i + 2)
            if end < 0:
                raise ParseError("unterminated block comment", line, col)
            advance(end + 2 - i)
            continue
        if c == "'":
            j = i + 1
            while j < n and src[j] != "'":
                j += 1
            if j >= n:
                raise ParseError("unterminated quoted atom", line, col)
            toks.append(Token("atom", src[i + 1 : j], line, col))
            advance(j + 1 - i)
            continue
        if c.isdigit():
            j = i
            while j < n and src[j].isdigit():
                j += 1
            toks.append(Token("int", src[i:j], line, col))
            advance(j - i)
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (src[j].isalnum() or src[j] == "_"):
                j += 1
            word = src[i:j]
            kind = "var" if (c == "_" or c.isupper()) else "atom"
            toks.append(Token(kind, word, line, col))
            advance(j - i)
            continue
        matched = False
        # Longest punctuation first, but a '.' followed by layout/EOF is a
        # clause terminator even when a 3-char operator could start here.
        for p in sorted(_PUNCT2, key=len, reverse=True):
            if src.startswith(p, i):
                toks.append(Token("punct", p, line, col))
                advance(len(p))
                matched = True
                break
        if matched:
            continue
        if c in _PUNCT1:
            toks.append(Token("punct", c, line, col))
            advance(1)
            continue
        raise ParseError(f"unexpected character {c!r}", line, col)
    toks.append(Token("end", "", line, col))
    return toks


@dataclass(frozen=True)
class Clause:
    """A Horn clause ``head :- body`` (a fact when ``body`` is empty)."""

    head: Term
    body: tuple[Term, ...] = ()

    @property
    def is_fact(self) -> bool:
        return not self.body

    @property
    def indicator(self) -> tuple[str, int]:
        return self.head.indicator

    def __str__(self) -> str:
        return format_clause(self)


def format_clause(clause: Clause) -> str:
    """Render a clause back to Edinburgh syntax."""
    if clause.is_fact:
        return f"{clause.head}."
    body = ", ".join(str(g) for g in clause.body)
    return f"{clause.head} :- {body}."


class _Parser:
    """Recursive-descent parser with operator-precedence expressions."""

    # priority table (higher binds looser), standard Prolog xfx/yfx subset
    _INFIX: ClassVar[dict[str, tuple[int, str]]] = {
        "is": (700, "xfx"),
        "=": (700, "xfx"),
        "\\=": (700, "xfx"),
        "==": (700, "xfx"),
        "\\==": (700, "xfx"),
        "<": (700, "xfx"),
        ">": (700, "xfx"),
        "=<": (700, "xfx"),
        ">=": (700, "xfx"),
        "=:=": (700, "xfx"),
        "=\\=": (700, "xfx"),
        "+": (500, "yfx"),
        "-": (500, "yfx"),
        "*": (400, "yfx"),
        "/": (400, "yfx"),
        "//": (400, "yfx"),
        "mod": (400, "yfx"),
    }

    def __init__(self, tokens: Sequence[Token]):
        self.toks = tokens
        self.pos = 0
        self.varmap: dict[str, Var] = {}

    # -- token helpers ---------------------------------------------------
    def peek(self) -> Token:
        return self.toks[self.pos]

    def next(self) -> Token:
        t = self.toks[self.pos]
        self.pos += 1
        return t

    def expect(self, text: str) -> Token:
        t = self.next()
        if t.text != text:
            raise ParseError(f"expected {text!r}, found {t.text!r}", t.line, t.col)
        return t

    def at_punct(self, text: str) -> bool:
        t = self.peek()
        return t.kind == "punct" and t.text == text

    # -- grammar ----------------------------------------------------------
    def clause(self) -> Clause:
        """clause := term ( ':-' goals )? '.'"""
        self.varmap = {}
        head = self.expr(699)
        body: tuple[Term, ...] = ()
        if self.at_punct(":-"):
            self.next()
            body = tuple(self.goals())
        self.expect(".")
        return Clause(head, body)

    def query(self) -> tuple[Term, ...]:
        """query := ('?-')? goals '.'"""
        self.varmap = {}
        if self.at_punct("?-"):
            self.next()
        goals = tuple(self.goals())
        if self.at_punct("."):
            self.next()
        return goals

    def goals(self) -> list[Term]:
        out = [self.expr(999)]
        while self.at_punct(","):
            self.next()
            out.append(self.expr(999))
        return out

    def expr(self, max_prio: int) -> Term:
        left = self.primary()
        while True:
            t = self.peek()
            key = t.text
            if t.kind not in ("punct", "atom") or key not in self._INFIX:
                return left
            prio, kind = self._INFIX[key]
            if prio > max_prio:
                return left
            self.next()
            # both xfx and yfx take a strictly tighter right operand; the
            # loop itself provides left associativity for yfx
            right = self.expr(prio - 1)
            left = Struct(key, (left, right))

    def primary(self) -> Term:
        t = self.next()
        if t.kind == "int":
            return Int(int(t.text))
        if t.kind == "var":
            if t.text == "_":
                return Var("_")
            v = self.varmap.get(t.text)
            if v is None:
                v = Var(t.text)
                self.varmap[t.text] = v
            return v
        if t.kind == "atom":
            if self.at_punct("("):
                self.next()
                args = [self.expr(999)]
                while self.at_punct(","):
                    self.next()
                    args.append(self.expr(999))
                self.expect(")")
                return Struct(t.text, tuple(args))
            return Atom(t.text)
        if t.kind == "punct":
            if t.text == "(":
                inner = self.expr(1200)
                self.expect(")")
                return inner
            if t.text == "[":
                return self.list_tail()
            if t.text == "-":
                arg = self.primary()
                if isinstance(arg, Int):
                    return Int(-arg.value)
                return Struct("-", (Int(0), arg))
            if t.text == "\\+":
                # negation as failure: prefix, priority 900 (fy)
                return Struct("\\+", (self.expr(900),))
            if t.text == "!":
                return Atom("!")
        raise ParseError(f"unexpected token {t.text!r}", t.line, t.col)

    def list_tail(self) -> Term:
        if self.at_punct("]"):
            self.next()
            return NIL
        items = [self.expr(999)]
        while self.at_punct(","):
            self.next()
            items.append(self.expr(999))
        tail: Term = NIL
        if self.at_punct("|"):
            self.next()
            tail = self.expr(999)
        self.expect("]")
        return make_list(items, tail)


def parse_term(src: str) -> Term:
    """Parse a single term (no trailing '.')."""
    p = _Parser(tokenize(src))
    term = p.expr(1200)
    t = p.peek()
    if t.kind != "end" and not (t.kind == "punct" and t.text == "."):
        raise ParseError(f"trailing input {t.text!r}", t.line, t.col)
    return term


def parse_clause(src: str) -> Clause:
    """Parse a single clause terminated with '.'."""
    p = _Parser(tokenize(src))
    cl = p.clause()
    t = p.peek()
    if t.kind != "end":
        raise ParseError(f"trailing input {t.text!r}", t.line, t.col)
    return cl


def parse_query(src: str) -> tuple[Term, ...]:
    """Parse a query: optional '?-' prefix, comma-separated goals."""
    p = _Parser(tokenize(src))
    goals = p.query()
    t = p.peek()
    if t.kind != "end":
        raise ParseError(f"trailing input {t.text!r}", t.line, t.col)
    return goals


def parse_program(src: str) -> list[Clause]:
    """Parse a whole program: a sequence of clauses."""
    toks = tokenize(src)
    p = _Parser(toks)
    out: list[Clause] = []
    while p.peek().kind != "end":
        out.append(p.clause())
    return out
