"""A small pure-Prolog standard library, loadable into any program.

All definitions are plain Horn clauses over the engine's builtins, so
they run identically on the sequential baseline, the OR-tree
strategies, the B-LOG engine and the simulated machine — no special
casing anywhere.  ``with_library(program)`` appends them (predicates
already defined by the user are left alone and simply shadow by clause
order).

Provided: ``append/3``, ``member/2``, ``length/2``, ``reverse/2`` (the
accumulator version), ``nth0/3``, ``nth1/3``, ``last/2``, ``select/3``,
``permutation/2``, ``delete_all/3``, ``sum_list/2``, ``max_list/2``,
``min_list/2``, ``numlist/3``.
"""

from __future__ import annotations

from .parser import parse_program
from .program import Program

__all__ = ["LIBRARY_SOURCE", "library_clauses", "with_library"]

LIBRARY_SOURCE = """\
% ---- lists ------------------------------------------------------------
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

length([], 0).
length([_|T], N) :- length(T, M), N is M + 1.

reverse(L, R) :- rev_acc(L, [], R).
rev_acc([], Acc, Acc).
rev_acc([H|T], Acc, R) :- rev_acc(T, [H|Acc], R).

nth0(0, [X|_], X).
nth0(N, [_|T], X) :- N > 0, M is N - 1, nth0(M, T, X).

nth1(1, [X|_], X).
nth1(N, [_|T], X) :- N > 1, M is N - 1, nth1(M, T, X).

last([X], X).
last([_|T], X) :- last(T, X).

select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).

permutation([], []).
permutation(L, [H|T]) :- select(H, L, R), permutation(R, T).

delete_all([], _, []).
delete_all([X|T], X, R) :- delete_all(T, X, R).
delete_all([H|T], X, [H|R]) :- H \\= X, delete_all(T, X, R).

% ---- arithmetic over lists ---------------------------------------------
sum_list([], 0).
sum_list([H|T], S) :- sum_list(T, R), S is R + H.

max_list([X], X).
max_list([H|T], M) :- max_list(T, N), M is max(H, N).

min_list([X], X).
min_list([H|T], M) :- min_list(T, N), M is min(H, N).

numlist(L, H, []) :- L > H.
numlist(L, H, [L|T]) :- L =< H, M is L + 1, numlist(M, H, T).
"""


def library_clauses():
    """The library as parsed clauses."""
    return parse_program(LIBRARY_SOURCE)


def with_library(program: Program) -> Program:
    """Append the library clauses to ``program`` (in place); returns it."""
    for clause in library_clauses():
        program.add(clause)
    return program
