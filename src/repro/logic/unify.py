"""Unification with trailed bindings.

Resolution in the OR-tree (paper section 2: "A match is found wherever
this graph can be embedded as a subgraph in the data base or in the left
side of a rule") is implemented the standard way: Robinson unification
of the goal against clause heads.  The binding store keeps a **trail**
so the depth-first baseline can backtrack cheaply, and supports
**snapshot/undo** so the OR-tree expander can explore alternatives from
one node.

The paper's section 6 notes that structure sharing is hard to do in
parallel; our OR-tree layer therefore *reifies* bindings per node by
applying the substitution (``resolve``), trading copying for
independence — exactly the copy traffic the multiply-write memory of
section 6 is designed to absorb (modeled in
:mod:`repro.machine.memory`).
"""

from __future__ import annotations

from typing import Iterable, Optional

from .terms import Atom, Int, Struct, Term, Var, fresh_var

__all__ = [
    "Bindings",
    "UnifyStats",
    "unify",
    "rename_apart",
    "occurs_in",
]


class UnifyStats:
    """Counters for unification work (used by engine statistics)."""

    __slots__ = ("attempts", "successes", "bind_ops", "deref_ops")

    def __init__(self) -> None:
        self.attempts = 0
        self.successes = 0
        self.bind_ops = 0
        self.deref_ops = 0

    def reset(self) -> None:
        self.attempts = 0
        self.successes = 0
        self.bind_ops = 0
        self.deref_ops = 0


class Bindings:
    """A mutable substitution with a trail for backtracking.

    ``walk`` dereferences a term one level; ``resolve`` applies the
    substitution fully.  ``mark``/``undo_to`` implement the trail.
    """

    __slots__ = ("map", "trail", "stats")

    def __init__(self, stats: Optional[UnifyStats] = None):
        self.map: dict[int, Term] = {}
        self.trail: list[int] = []
        self.stats = stats

    def __len__(self) -> int:
        return len(self.map)

    def __contains__(self, var: Var) -> bool:
        return var.id in self.map

    def bind(self, var: Var, term: Term) -> None:
        """Record ``var := term`` on the trail."""
        if var.id in self.map:
            raise ValueError(f"variable {var} already bound")
        self.map[var.id] = term
        self.trail.append(var.id)
        if self.stats is not None:
            self.stats.bind_ops += 1

    def mark(self) -> int:
        """Snapshot the trail position."""
        return len(self.trail)

    def undo_to(self, mark: int) -> None:
        """Pop bindings recorded after ``mark``."""
        while len(self.trail) > mark:
            vid = self.trail.pop()
            del self.map[vid]

    def walk(self, term: Term) -> Term:
        """Dereference ``term`` through bound variables (shallow)."""
        while isinstance(term, Var):
            if self.stats is not None:
                self.stats.deref_ops += 1
            nxt = self.map.get(term.id)
            if nxt is None:
                return term
            term = nxt
        return term

    def resolve(self, term: Term) -> Term:
        """Apply the substitution fully, rebuilding structures."""
        term = self.walk(term)
        if isinstance(term, Struct):
            return Struct(term.functor, tuple(self.resolve(a) for a in term.args))
        return term

    def resolve_all(self, terms: Iterable[Term]) -> tuple[Term, ...]:
        return tuple(self.resolve(t) for t in terms)

    def copy(self) -> "Bindings":
        """An independent copy (map copied, trail restarted)."""
        out = Bindings(self.stats)
        out.map = dict(self.map)
        return out

    def as_dict(self) -> dict[int, Term]:
        """Resolved view keyed by variable id."""
        return {vid: self.resolve(t) for vid, t in self.map.items()}


def occurs_in(var: Var, term: Term, bindings: Bindings) -> bool:
    """Occurs check: does ``var`` occur in ``term`` under ``bindings``?"""
    term = bindings.walk(term)
    if isinstance(term, Var):
        return term.id == var.id
    if isinstance(term, Struct):
        return any(occurs_in(var, a, bindings) for a in term.args)
    return False


def unify(a: Term, b: Term, bindings: Bindings, occurs_check: bool = False) -> bool:
    """Unify ``a`` and ``b`` destructively in ``bindings``.

    Returns True on success.  On failure the *caller* is responsible for
    undoing via the trail mark taken before the call (partial bindings
    may remain otherwise) — the engine always brackets unify with
    ``mark``/``undo_to``.
    """
    if bindings.stats is not None:
        bindings.stats.attempts += 1
    ok = _unify(a, b, bindings, occurs_check)
    if ok and bindings.stats is not None:
        bindings.stats.successes += 1
    return ok


def _unify(a: Term, b: Term, bindings: Bindings, occurs_check: bool) -> bool:
    stack: list[tuple[Term, Term]] = [(a, b)]
    while stack:
        x, y = stack.pop()
        x = bindings.walk(x)
        y = bindings.walk(y)
        if x is y:
            continue
        if isinstance(x, Var):
            if isinstance(y, Var) and y.id == x.id:
                continue
            if occurs_check and occurs_in(x, y, bindings):
                return False
            bindings.bind(x, y)
            continue
        if isinstance(y, Var):
            if occurs_check and occurs_in(y, x, bindings):
                return False
            bindings.bind(y, x)
            continue
        if isinstance(x, Atom) and isinstance(y, Atom):
            if x.name != y.name:
                return False
            continue
        if isinstance(x, Int) and isinstance(y, Int):
            if x.value != y.value:
                return False
            continue
        if isinstance(x, Struct) and isinstance(y, Struct):
            if x.functor != y.functor or x.arity != y.arity:
                return False
            stack.extend(zip(x.args, y.args))
            continue
        return False
    return True


def rename_apart(term: Term, mapping: Optional[dict[int, Var]] = None) -> Term:
    """Return ``term`` with every variable replaced by a fresh one.

    A shared ``mapping`` lets several terms (e.g. a clause head and its
    body goals) be renamed consistently.
    """
    if mapping is None:
        mapping = {}

    def go(t: Term) -> Term:
        if isinstance(t, Var):
            nv = mapping.get(t.id)
            if nv is None:
                nv = fresh_var(t.name)
                mapping[t.id] = nv
            return nv
        if isinstance(t, Struct):
            return Struct(t.functor, tuple(go(a) for a in t.args))
        return t

    return go(term)
