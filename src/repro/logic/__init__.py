"""Logic-programming substrate: terms, unification, parser, knowledge
base, and the sequential depth-first engine (the Prolog baseline of the
paper's section 2)."""

from .builtins import BUILTINS, BuiltinError, call_builtin, eval_arith, is_builtin
from .library import LIBRARY_SOURCE, library_clauses, with_library
from .parser import (
    Clause,
    ParseError,
    format_clause,
    parse_clause,
    parse_program,
    parse_query,
    parse_term,
    tokenize,
)
from .program import Program
from .solver import Solution, Solver, SolverStats, prolog_solutions
from .terms import (
    NIL,
    TRUE,
    Atom,
    Int,
    Struct,
    Term,
    Var,
    fresh_var,
    is_list,
    list_to_python,
    make_list,
    reset_var_counter,
    term_depth,
    term_size,
    term_vars,
    variant_of,
)
from .unify import Bindings, UnifyStats, occurs_in, rename_apart, unify

__all__ = [
    "Atom",
    "Int",
    "Struct",
    "Term",
    "Var",
    "NIL",
    "TRUE",
    "fresh_var",
    "reset_var_counter",
    "make_list",
    "list_to_python",
    "is_list",
    "term_vars",
    "term_size",
    "term_depth",
    "variant_of",
    "Bindings",
    "UnifyStats",
    "unify",
    "occurs_in",
    "rename_apart",
    "Clause",
    "ParseError",
    "tokenize",
    "parse_term",
    "parse_clause",
    "parse_query",
    "parse_program",
    "format_clause",
    "Program",
    "Solver",
    "Solution",
    "SolverStats",
    "prolog_solutions",
    "BUILTINS",
    "BuiltinError",
    "is_builtin",
    "call_builtin",
    "eval_arith",
    "LIBRARY_SOURCE",
    "library_clauses",
    "with_library",
]
