"""The knowledge base: an indexed store of Horn clauses.

Section 5 of the paper stores the database "as a linked list data
structure, with blocks representing each Horn clause (rule or fact), and
pointers to blocks representing other rules or facts in the database
that can resolve the rule".  This module is the *logical* view of that
store: clauses indexed by predicate indicator and (optionally) first
argument.  The *physical* linked-list/weighted-pointer view lives in
:mod:`repro.linkdb` and is built from a :class:`Program`.

Every clause gets a stable integer id; the weight scheme
(:mod:`repro.weights`) keys pointer weights by ``(caller context,
clause id)``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Optional

from .parser import Clause, parse_program
from .terms import Atom, Int, Struct, Term, Var

__all__ = ["Program", "IndexStats"]


class IndexStats:
    """Counters for clause retrieval (candidate filtering effectiveness)."""

    __slots__ = ("lookups", "candidates", "first_arg_hits")

    def __init__(self) -> None:
        self.lookups = 0
        self.candidates = 0
        self.first_arg_hits = 0


def _first_arg_key(term: Term) -> Optional[tuple]:
    """Index key of a callable term's first argument, or None if a var."""
    if not isinstance(term, Struct):
        return None
    a0 = term.args[0]
    if isinstance(a0, Atom):
        return ("atom", a0.name)
    if isinstance(a0, Int):
        return ("int", a0.value)
    if isinstance(a0, Struct):
        return ("struct", a0.functor, a0.arity)
    return None  # variable: matches everything


class Program:
    """An ordered, indexed collection of Horn clauses.

    Clause order matters (Prolog semantics for the depth-first
    baseline); first-argument indexing only *filters* candidates, never
    reorders them.
    """

    def __init__(self, clauses: Iterable[Clause] = ()):
        self._clauses: list[Clause] = []
        self._alive: list[bool] = []
        self._by_pred: dict[tuple[str, int], list[int]] = defaultdict(list)
        self._by_first_arg: dict[tuple, list[int]] = defaultdict(list)
        self.stats = IndexStats()
        for c in clauses:
            self.add(c)

    # -- construction ------------------------------------------------------
    @classmethod
    def from_source(cls, src: str) -> "Program":
        """Build a program from Edinburgh-syntax source text."""
        return cls(parse_program(src))

    def add(self, clause: Clause) -> int:
        """Append ``clause``; returns its stable clause id."""
        cid = len(self._clauses)
        self._clauses.append(clause)
        self._alive.append(True)
        ind = clause.indicator
        self._by_pred[ind].append(cid)
        key = _first_arg_key(clause.head)
        if key is not None:
            self._by_first_arg[(ind, key)].append(cid)
        return cid

    def add_source(self, src: str) -> list[int]:
        """Parse and add clauses from source; returns their ids."""
        return [self.add(c) for c in parse_program(src)]

    def retract(self, cid: int) -> None:
        """Logically remove clause ``cid`` (ids stay stable)."""
        self._alive[cid] = False

    # -- access -------------------------------------------------------------
    def __len__(self) -> int:
        return sum(self._alive)

    def __iter__(self) -> Iterator[Clause]:
        for cid, c in enumerate(self._clauses):
            if self._alive[cid]:
                yield c

    def clause(self, cid: int) -> Clause:
        return self._clauses[cid]

    def clause_ids(self) -> list[int]:
        return [cid for cid in range(len(self._clauses)) if self._alive[cid]]

    @property
    def predicates(self) -> list[tuple[str, int]]:
        """All predicate indicators with at least one live clause."""
        return [
            ind
            for ind, cids in self._by_pred.items()
            if any(self._alive[c] for c in cids)
        ]

    def clauses_for(self, indicator: tuple[str, int]) -> list[int]:
        """Ids of live clauses whose head matches ``indicator``, in order."""
        return [c for c in self._by_pred.get(indicator, ()) if self._alive[c]]

    def candidates(self, goal: Term) -> list[int]:
        """Ids of clauses that might resolve ``goal`` (indexing filter).

        The goal's first argument must already be dereferenced by the
        caller for indexing to help; an unbound first argument falls
        back to the full predicate bucket.
        """
        self.stats.lookups += 1
        ind = goal.indicator
        key = _first_arg_key(goal)
        if key is None:
            out = self.clauses_for(ind)
            self.stats.candidates += len(out)
            return out
        self.stats.first_arg_hits += 1
        # Clauses whose first arg matches the key, plus clauses whose own
        # first argument is a variable (they match anything).  Preserve
        # source order by merging.
        keyed = set(self._by_first_arg.get((ind, key), ()))
        out = []
        for cid in self._by_pred.get(ind, ()):
            if not self._alive[cid]:
                continue
            if cid in keyed or _first_arg_key(self._clauses[cid].head) is None:
                out.append(cid)
        self.stats.candidates += len(out)
        return out

    # -- introspection ------------------------------------------------------
    def facts(self) -> list[Clause]:
        return [c for c in self if c.is_fact]

    def rules(self) -> list[Clause]:
        return [c for c in self if not c.is_fact]

    def listing(self) -> str:
        """Source listing of all live clauses."""
        return "\n".join(str(c) for c in self)

    def __repr__(self) -> str:
        return f"Program({len(self)} clauses, {len(self.predicates)} predicates)"
