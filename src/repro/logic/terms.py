"""Term representation for the B-LOG logic substrate.

The paper (section 2) models a logic program as facts and rules over
first-order terms: constants are lower-case, variables capitalized.  This
module provides the term algebra used by every other layer:

* :class:`Atom`   — a constant symbol (``sam``, ``[]``).
* :class:`Int`    — an integer constant (Prolog's integers).
* :class:`Var`    — a logic variable, identified by a globally unique id.
* :class:`Struct` — a compound term ``f(t1, ..., tn)``.

Terms are **immutable** and hashable; variable bindings live in a
separate :class:`Bindings` store (see :mod:`repro.logic.unify`), which
matches the structure-sharing discussion in section 6 of the paper (the
"very peculiar character of the logic variable").

Helper constructors build Prolog lists (``'.'/2`` cells terminated by
``[]``) and rename clauses apart for resolution.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence, Union

__all__ = [
    "Term",
    "Atom",
    "Int",
    "Var",
    "Struct",
    "NIL",
    "TRUE",
    "make_list",
    "list_to_python",
    "is_list",
    "term_vars",
    "term_size",
    "term_depth",
    "fresh_var",
    "reset_var_counter",
    "variant_of",
]


class Term:
    """Abstract base class of all terms."""

    __slots__ = ()

    @property
    def indicator(self) -> tuple[str, int]:
        """The predicate indicator ``name/arity`` of a callable term."""
        raise TypeError(f"term {self!r} is not callable")

    def walk(self) -> Iterator["Term"]:
        """Yield this term and all subterms, pre-order."""
        yield self


class Atom(Term):
    """A constant symbol.

    Atoms are interned by name equality only; two ``Atom("sam")`` objects
    compare and hash equal.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    @property
    def indicator(self) -> tuple[str, int]:
        return (self.name, 0)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Atom) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Atom", self.name))

    def __repr__(self) -> str:
        return f"Atom({self.name!r})"

    def __str__(self) -> str:
        return self.name


class Int(Term):
    """An integer constant."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = int(value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Int) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Int", self.value))

    def __repr__(self) -> str:
        return f"Int({self.value})"

    def __str__(self) -> str:
        return str(self.value)


_VAR_COUNTER = itertools.count(1)


def reset_var_counter() -> None:
    """Reset the global variable id counter (for reproducible tests)."""
    global _VAR_COUNTER
    _VAR_COUNTER = itertools.count(1)


class Var(Term):
    """A logic variable.

    Identity is the unique ``id``; ``name`` is only for display.  Two
    occurrences of ``X`` in one clause share an id; renaming a clause
    apart allocates fresh ids (see :func:`rename_apart` in
    :mod:`repro.logic.unify`).
    """

    __slots__ = ("name", "id")

    def __init__(self, name: str = "_", vid: int | None = None):
        self.name = name
        self.id = next(_VAR_COUNTER) if vid is None else vid

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.id == self.id

    def __hash__(self) -> int:
        return hash(("Var", self.id))

    def __repr__(self) -> str:
        return f"Var({self.name!r}, {self.id})"

    def __str__(self) -> str:
        if self.name and self.name != "_":
            return self.name
        return f"_G{self.id}"


def fresh_var(name: str = "_") -> Var:
    """Allocate a brand-new variable."""
    return Var(name)


class Struct(Term):
    """A compound term ``functor(arg1, ..., argn)`` with arity >= 1."""

    __slots__ = ("functor", "args", "_hash")

    def __init__(self, functor: str, args: Sequence[Term]):
        if not args:
            raise ValueError("Struct needs at least one argument; use Atom")
        self.functor = functor
        self.args = tuple(args)
        self._hash = hash(("Struct", functor, self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def indicator(self) -> tuple[str, int]:
        return (self.functor, len(self.args))

    def walk(self) -> Iterator[Term]:
        yield self
        for a in self.args:
            yield from a.walk()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Struct)
            and other._hash == self._hash
            and other.functor == self.functor
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Struct({self.functor!r}, {list(self.args)!r})"

    def __str__(self) -> str:
        if self.functor == "." and len(self.args) == 2:
            return _format_list(self)
        args = ", ".join(str(a) for a in self.args)
        return f"{self.functor}({args})"


NIL = Atom("[]")
TRUE = Atom("true")


def make_list(items: Iterable[Term], tail: Term = NIL) -> Term:
    """Build a Prolog list term from ``items`` with the given ``tail``."""
    out = tail
    for item in reversed(list(items)):
        out = Struct(".", (item, out))
    return out


def is_list(term: Term) -> bool:
    """True if ``term`` is a proper (NIL-terminated) list skeleton."""
    while isinstance(term, Struct) and term.functor == "." and term.arity == 2:
        term = term.args[1]
    return term == NIL


def list_to_python(term: Term) -> list[Term]:
    """Convert a proper Prolog list term to a Python list of elements.

    Raises ``ValueError`` on an improper list.
    """
    out: list[Term] = []
    while isinstance(term, Struct) and term.functor == "." and term.arity == 2:
        out.append(term.args[0])
        term = term.args[1]
    if term != NIL:
        raise ValueError(f"not a proper list (tail {term})")
    return out


def _format_list(term: Term) -> str:
    parts: list[str] = []
    while isinstance(term, Struct) and term.functor == "." and term.arity == 2:
        parts.append(str(term.args[0]))
        term = term.args[1]
    inner = ", ".join(parts)
    if term == NIL:
        return f"[{inner}]"
    return f"[{inner}|{term}]"


def term_vars(term: Term) -> list[Var]:
    """All distinct variables in ``term``, in first-occurrence order."""
    seen: dict[int, Var] = {}
    for sub in term.walk():
        if isinstance(sub, Var) and sub.id not in seen:
            seen[sub.id] = sub
    return list(seen.values())


def term_size(term: Term) -> int:
    """Number of symbols in ``term`` (atoms, ints, vars, functors)."""
    return sum(1 for _ in term.walk())


def term_depth(term: Term) -> int:
    """Nesting depth: atoms/vars/ints have depth 1."""
    if isinstance(term, Struct):
        return 1 + max(term_depth(a) for a in term.args)
    return 1


def variant_of(a: Term, b: Term) -> bool:
    """True if ``a`` and ``b`` are identical up to variable renaming."""
    fwd: dict[int, int] = {}
    rev: dict[int, int] = {}

    def go(x: Term, y: Term) -> bool:
        if isinstance(x, Var) and isinstance(y, Var):
            if x.id in fwd and fwd[x.id] != y.id:
                return False
            if y.id in rev and rev[y.id] != x.id:
                return False
            fwd[x.id] = y.id
            rev[y.id] = x.id
            return True
        if isinstance(x, Atom) and isinstance(y, Atom):
            return x.name == y.name
        if isinstance(x, Int) and isinstance(y, Int):
            return x.value == y.value
        if isinstance(x, Struct) and isinstance(y, Struct):
            if x.functor != y.functor or x.arity != y.arity:
                return False
            return all(go(p, q) for p, q in zip(x.args, y.args))
        return False

    return go(a, b)


TermLike = Union[Term, str, int]


def to_term(value: TermLike) -> Term:
    """Coerce a Python value to a term: str->Atom, int->Int, Term->itself."""
    if isinstance(value, Term):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not terms")
    if isinstance(value, int):
        return Int(value)
    if isinstance(value, str):
        return Atom(value)
    raise TypeError(f"cannot convert {value!r} to a term")
