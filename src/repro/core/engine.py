"""The B-LOG engine: best-first branch-and-bound execution of logic
programs with adaptive pointer weights and sessions.

This is the paper's primary contribution assembled: queries are solved
by expanding the OR-tree least-bound-first, where bounds come from the
weight store (§4–5); every solution/failure outcome updates the store
through the §5 rules ("This heuristic employs some adaptive control
strategy.  If a successful query is found, the next search will try
this path early and if an unsuccessful search is detected, its path
will be avoided until all the others have been attempted"); and the
session protocol separates strong local learning from conservative
global knowledge.

Completeness: the engine never *discards* chains — weights only order
them (plus the optional §3 incumbent cutoff) — so "B-LOG offers an
alternative to Prolog's sequentially oriented depth-first search,
without giving up completeness" (§8).  Tests verify solution-set
equality against the Prolog baseline on a corpus of programs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from ..logic.program import Program
from ..logic.terms import Term
from ..ortree.tree import NodeStatus, OrNode, OrTree
from ..weights.policies import on_failure_policy, on_success_policy
from ..weights.session import MergeReport, SessionManager
from ..weights.store import WeightStore
from ..weights.update import UpdateLog
from .config import BLogConfig

__all__ = ["BLogEngine", "QueryResult"]


@dataclass
class QueryResult:
    """Outcome of one B-LOG query."""

    query: str | Sequence[Term]
    answers: list[dict[str, Term]] = field(default_factory=list)
    solution_bounds: list[float] = field(default_factory=list)
    expansions: int = 0
    generated: int = 0
    pruned: int = 0
    expansions_to_first: Optional[int] = None
    failures: int = 0
    update_logs: list[UpdateLog] = field(default_factory=list)
    tree: Optional[OrTree] = None

    @property
    def solved(self) -> bool:
        return bool(self.answers)

    def answer_values(self, var: str) -> list[Term]:
        """Bindings of ``var`` across the answers (order of discovery)."""
        return [a[var] for a in self.answers if var in a]


class BLogEngine:
    """Best-first branch-and-bound logic-program executor.

    Parameters
    ----------
    program:
        The knowledge base.
    config:
        Engine constants (N, A, α, policies); see :class:`BLogConfig`.
    global_store:
        Pre-seeded global weight store (e.g. from
        :func:`~repro.weights.theory.store_from_theory`); a fresh one
        is created when omitted.
    """

    def __init__(
        self,
        program: Program,
        config: Optional[BLogConfig] = None,
        global_store: Optional[WeightStore] = None,
    ):
        self.program = program
        self.config = config or BLogConfig()
        # explicit None check: an empty WeightStore is falsy (len 0)
        if global_store is None:
            global_store = WeightStore(n=self.config.n, a=self.config.a)
        store = global_store
        self.sessions = SessionManager(store, alpha=self.config.alpha)
        self.queries_run = 0

    # -- session protocol -------------------------------------------------------
    @property
    def store(self) -> WeightStore:
        """The weight store queries currently read and update."""
        return self.sessions.active

    def begin_session(self) -> None:
        """Start a session: subsequent updates are local (strong)."""
        self.sessions.begin_session()

    def end_session(self, conservative: bool = True) -> MergeReport:
        """End the session, merging into the global store (§5 rules)."""
        return self.sessions.end_session(conservative=conservative)

    # -- querying ------------------------------------------------------------------
    def query(
        self,
        query: str | Sequence[Term],
        max_solutions: Optional[int] = None,
        keep_tree: bool = False,
        update_weights: bool = True,
    ) -> QueryResult:
        """Run ``query`` best-first under the current weights.

        The frontier is ordered by chain bound (ties: generation
        order).  Each solution/failure leaf triggers the §5 update rules
        on the *active* store immediately when ``live_updates`` is on,
        so later expansions of the same query already see the new
        weights; with it off, updates are applied after the search in
        discovery order (the "update at end of search" variant).
        """
        it = self.query_iter(
            query,
            max_solutions=max_solutions,
            keep_tree=keep_tree,
            update_weights=update_weights,
        )
        for _ in it:
            pass
        return self.last_result

    def query_iter(
        self,
        query: str | Sequence[Term],
        max_solutions: Optional[int] = None,
        keep_tree: bool = False,
        update_weights: bool = True,
    ):
        """Lazily yield answers as best-first search discovers them.

        Learning happens incrementally: by the time an answer is
        yielded, its chain's §5 update has already been applied, so a
        consumer can stop at any point and keep the partial knowledge.
        The full :class:`QueryResult` is available afterwards as
        :attr:`last_result`.
        """
        cfg = self.config
        store = self.store
        tree = OrTree(
            self.program,
            query,
            weight_fn=store.weight_fn(),
            arc_key_policy=cfg.arc_key_policy,
            max_depth=cfg.max_depth,
            selection_rule=cfg.selection_rule,
        )
        result = QueryResult(query=query)
        self.last_result = result  # available even on early consumer exit
        deferred: list[tuple[bool, int]] = []  # (solved, leaf id)

        def apply_update(solved: bool, nid: int) -> UpdateLog:
            arcs = tree.chain_arcs(nid)
            if solved:
                return on_success_policy(store, arcs, cfg.success_distribute)
            return on_failure_policy(store, arcs, cfg.failure_blame)

        def outcome(solved: bool, nid: int) -> None:
            if not update_weights:
                return
            if cfg.live_updates:
                result.update_logs.append(apply_update(solved, nid))
            else:
                deferred.append((solved, nid))

        heap: list[tuple[float, int, int]] = []
        counter = 0
        heapq.heappush(heap, (tree.root.bound, counter, tree.root.nid))
        incumbent: Optional[float] = None
        try:
            yield from self._search_loop(
                heap, counter, incumbent, tree, result, cfg,
                max_solutions, outcome,
            )
        finally:
            for solved, nid in deferred:
                result.update_logs.append(apply_update(solved, nid))
            if keep_tree:
                result.tree = tree
            self.queries_run += 1

    def _search_loop(
        self, heap, counter, incumbent, tree, result, cfg, max_solutions, outcome
    ):
        import heapq

        while heap:
            if result.expansions >= cfg.max_expansions:
                break
            bound, _, nid = heapq.heappop(heap)
            node = tree.node(nid)
            if node.status is NodeStatus.SOLUTION:
                answer = tree.solution_answer(node)
                result.answers.append(answer)
                result.solution_bounds.append(node.bound)
                if result.expansions_to_first is None:
                    result.expansions_to_first = result.expansions
                outcome(True, nid)
                if incumbent is None or node.bound < incumbent:
                    incumbent = node.bound
                yield answer
                if max_solutions is not None and len(result.answers) >= max_solutions:
                    break
                continue
            if cfg.prune_bound and incumbent is not None and bound > incumbent:
                result.pruned += 1
                continue
            before = tree.generated
            children = tree.expand(nid)
            result.expansions += 1
            result.generated += tree.generated - before
            if not children:
                result.failures += 1
                outcome(False, nid)
                continue
            for cid in children:
                child = tree.node(cid)
                counter += 1
                heapq.heappush(heap, (child.bound, counter, cid))

    def solve_values(
        self,
        query: str | Sequence[Term],
        var: str,
        max_solutions: Optional[int] = None,
    ) -> list[Term]:
        """Convenience: bindings of ``var`` for each answer."""
        return self.query(query, max_solutions=max_solutions).answer_values(var)

    def run_session(
        self,
        queries: Sequence[str | Sequence[Term]],
        max_solutions: Optional[int] = None,
        conservative: bool = True,
    ) -> list[QueryResult]:
        """Run a whole session: begin, execute queries, merge, return results."""
        self.begin_session()
        try:
            results = [self.query(q, max_solutions=max_solutions) for q in queries]
        except Exception:
            self.sessions.abort_session()
            raise
        self.end_session(conservative=conservative)
        return results
