"""The B-LOG core: configuration, the adaptive best-first engine, and
the OS-process OR-parallel backend."""

from .config import BLogConfig
from .engine import BLogEngine, QueryResult
from .procpool import ParallelAnswer, or_parallel_solve, or_split
from .system import BLogSystem

__all__ = [
    "BLogConfig",
    "BLogEngine",
    "BLogSystem",
    "QueryResult",
    "ParallelAnswer",
    "or_parallel_solve",
    "or_split",
]
