"""OS-process OR-parallel backend (wall-clock sanity check).

The simulated machine (:mod:`repro.machine`) is the faithful model of
the paper's architecture; this module is the pragmatic counterpart: it
splits the top OR fan-out of a query across ``multiprocessing`` worker
processes, each running the sequential engine on its alternative.
Because CPython's GIL serializes threads, real processes are the only
way to observe genuine OR-parallel wall-clock speedup in Python — and
even then only for coarse-grain alternatives (fork + pickle overhead
swamps small trees, which is itself an honest datum for the paper's
communication-cost discussion, the constant ``D`` of §6).

The split mirrors Conery & Kibler's OR-parallelism: alternatives of
the root goal are independent searches sharing nothing.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..logic.program import Program
from ..logic.solver import Solver
from ..logic.terms import Term
from ..ortree.tree import NodeStatus, OrTree

__all__ = [
    "ParallelAnswer",
    "or_parallel_solve",
    "or_split",
    "run_engine_query",
    "lane_worker_main",
]


@dataclass
class ParallelAnswer:
    """Answers gathered from all branches, with per-branch accounting."""

    answers: list[dict[str, str]] = field(default_factory=list)
    branches: int = 0
    per_branch_solutions: list[int] = field(default_factory=list)


def or_split(program: Program, query: str | Sequence[Term]) -> list[tuple[Term, ...]]:
    """Resolvents after one resolution step at the root (the OR fan-out)."""
    tree = OrTree(program, query)
    tree.expand(0)
    out: list[tuple[Term, ...]] = []
    for cid in tree.root.children:
        node = tree.node(cid)
        out.append((node.goals, node.answer))  # type: ignore[arg-type]
    return out


def _solve_branch(payload: bytes) -> bytes:
    """Worker: run the sequential solver on one resolvent."""
    program, goals, answer, query_names, max_depth, max_solutions = pickle.loads(
        payload
    )
    solver = Solver(program, max_depth=max_depth)
    from ..logic.unify import Bindings, unify

    answers: list[dict[str, str]] = []
    if not goals:  # the branch is already a solution
        b = Bindings()
        sols = [answer]
    else:
        sols = []
        bindings = Bindings(solver.stats.unify)
        count = 0
        for _ in solver._solve(tuple(goals), bindings, 0, [False]):
            sols.append(tuple(bindings.resolve(a) for a in answer))
            count += 1
            if max_solutions is not None and count >= max_solutions:
                break
    for inst in sols:
        named: dict[str, str] = {}
        b = Bindings()
        from ..logic.terms import term_vars

        # Recover named query-variable bindings by unifying the original
        # query pattern against this instance.
        for q, a in zip(query_names["query"], inst):
            unify(q, a, b)
        for name, var in query_names["vars"].items():
            named[name] = str(b.resolve(var))
        answers.append(named)
    return pickle.dumps(answers)


def or_parallel_solve(
    program: Program,
    query: str | Sequence[Term],
    processes: int = 2,
    max_depth: int = 256,
    max_solutions_per_branch: Optional[int] = None,
) -> ParallelAnswer:
    """Solve ``query`` with the top OR fan-out spread over processes.

    Answers across branches are concatenated in branch order; within a
    branch they follow Prolog order.  Solution *sets* therefore match
    the sequential engine (order may interleave differently).
    """
    tree = OrTree(program, query)
    tree.expand(0)
    if not tree.root.children:
        # Zero OR alternatives at the root (unknown predicate, empty
        # fan-out): there is nothing to distribute, and handing an empty
        # job list to a pool would be wasted forks at best.  Answer
        # immediately with an empty result.
        return ParallelAnswer()
    query_names = {"query": tree.query, "vars": tree.query_vars}
    payloads = []
    direct: list[dict[str, str]] = []
    for cid in tree.root.children:
        node = tree.node(cid)
        if node.status is NodeStatus.SOLUTION:
            direct.append({k: str(v) for k, v in tree.solution_answer(node).items()})
            continue
        try:
            payloads.append(
                pickle.dumps(
                    (
                        program,
                        node.goals,
                        node.answer,
                        query_names,
                        max_depth,
                        max_solutions_per_branch,
                    )
                )
            )
        except Exception as exc:
            raise ValueError(
                "OR-parallel branch is not picklable for process transport "
                f"(branch goals: {', '.join(map(str, node.goals))}): {exc}"
            ) from exc
    result = ParallelAnswer(branches=len(payloads) + len(direct))
    result.answers.extend(direct)
    result.per_branch_solutions.extend([1] * len(direct))
    if not payloads:
        return result
    if processes <= 1 or len(payloads) == 1:
        chunks = [_solve_branch(p) for p in payloads]
    else:
        ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp
        with ctx.Pool(min(processes, len(payloads))) as pool:
            chunks = pool.map(_solve_branch, payloads)
    for chunk in chunks:
        answers = pickle.loads(chunk)
        result.answers.extend(answers)
        result.per_branch_solutions.append(len(answers))
    return result


# -- lane workers: the long-lived child behind a process lane ---------------
#
# The serving layer's process backend spawns one of these per lane: a
# warm subprocess that holds the lane's programs, a mirror of each
# program's global weight store (caught up by deltas, never reshipped
# whole), and the session-local engines of every session routed to the
# lane.  The parent speaks length-prefixed pickles over a duplex pipe,
# one request at a time (lanes are serial queues, so there is never a
# second in-flight request to interleave with).


def run_engine_query(
    engine_used: str,
    blog_engine,
    program: Program,
    config,
    machine_config,
    goals,
    max_solutions: Optional[int],
    processes: int = 1,
    attrs: Optional[dict] = None,
) -> tuple[list[dict[str, str]], Optional[int]]:
    """Run one query on the chosen engine against a session's engine state.

    Shared by the thread backend (called on a worker thread with the
    router's engine) and the lane worker (called in the child with its
    own engine); both sides stringify bindings the same way so answers
    are backend-independent.

    ``attrs``, when given, is filled with engine-level counters
    (expansions, pruned chains, solution bounds, machine makespan …) for
    the telemetry layer: the thread backend reads the dict directly, the
    lane worker ships it back inside the pickled reply, so the same
    attributes land on the request's ``engine`` span either way.
    """
    if engine_used == "blog":
        result = blog_engine.query(goals, max_solutions=max_solutions)
        answers = [{k: str(v) for k, v in a.items()} for a in result.answers]
        if attrs is not None:
            attrs["expansions"] = result.expansions
            attrs["generated"] = result.generated
            attrs["pruned"] = result.pruned
            attrs["failures"] = result.failures
            if result.expansions_to_first is not None:
                attrs["expansions_to_first"] = result.expansions_to_first
            if result.solution_bounds:
                attrs["solution_bounds"] = [
                    round(b, 6) for b in result.solution_bounds[:16]
                ]
        return answers, result.expansions
    if engine_used == "machine":
        from dataclasses import replace as _replace

        from ..machine.blog_machine import BLogMachine

        store = blog_engine.store
        tree = OrTree(
            program,
            goals,
            weight_fn=store.weight_fn(),
            arc_key_policy=config.arc_key_policy,
            max_depth=config.max_depth,
        )
        cfg = machine_config
        if max_solutions is not None:
            cfg = _replace(cfg, max_solutions=max_solutions)
        res = BLogMachine(cfg, store=store).run(tree)
        answers = [{k: str(v) for k, v in a.items()} for a in res.answers]
        if attrs is not None:
            attrs["expansions"] = res.expansions
            attrs["makespan"] = res.makespan
            attrs["migrations"] = res.migrations
            attrs["utilization"] = round(res.mean_utilization, 6)
        return answers, res.expansions
    if engine_used == "procpool":
        # Inside a daemonic lane worker this must stay serial (daemons
        # cannot fork grandchildren); processes=1 short-circuits the pool.
        par = or_parallel_solve(
            program,
            goals,
            processes=processes,
            max_depth=config.max_depth,
            max_solutions_per_branch=max_solutions,
        )
        if attrs is not None:
            attrs["branches"] = par.branches
            attrs["branch_solutions"] = list(par.per_branch_solutions)
        return list(par.answers), None
    raise ValueError(f"unknown engine {engine_used!r}")


def lane_worker_main(conn, lane: int) -> None:  # pragma: no cover — subprocess
    """Main loop of a process-lane worker (runs in the child).

    Protocol: the parent sends one pickled dict per request and reads
    one pickled dict back.  Ops:

    * ``ping`` — liveness/pid probe;
    * ``load_program`` — install a program + configs, create an empty
      global-store mirror for it;
    * ``sync_store`` — apply a weight delta to a program's mirror;
    * ``open_session`` — begin a session (local store = mirror copy);
    * ``query`` — execute on the named session's engine;
    * ``close_session`` — return the session's touched-keys delta (the
      parent merges it into the true global store);
    * ``abandon_session`` — drop a session without a delta;
    * ``shutdown`` — acknowledge and exit.

    Any exception inside an op becomes an ``{"ok": False}`` reply; the
    loop only exits on EOF (parent gone) or ``shutdown``.
    """
    import os
    import signal

    from ..logic.parser import parse_query
    from ..weights.persist import apply_delta, store_delta
    from ..weights.store import WeightStore
    from .engine import BLogEngine

    # The parent owns lifecycle; a stray terminal SIGINT (e.g. during
    # pytest) must not kill lanes before the parent can shut them down.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    programs: dict[str, tuple[Program, object, object]] = {}
    mirrors: dict[str, WeightStore] = {}
    sessions: dict[tuple[str, str], tuple[BLogEngine, int]] = {}

    def handle(msg: dict) -> dict:
        op = msg["op"]
        if op == "ping":
            return {"ok": True, "pid": os.getpid(), "lane": lane}
        if op == "load_program":
            name = msg["name"]
            config = msg["config"]
            programs[name] = (msg["program"], config, msg["machine_config"])
            mirrors[name] = WeightStore(n=config.n, a=config.a)
            return {"ok": True}
        if op == "sync_store":
            applied = apply_delta(mirrors[msg["name"]], msg["delta"])
            return {"ok": True, "applied": applied}
        if op == "open_session":
            name, session = msg["name"], msg["session"]
            program, config, _ = programs[name]
            engine = BLogEngine(program, config, global_store=mirrors[name])
            engine.begin_session()
            sessions[(name, session)] = (engine, engine.store.generation)
            return {"ok": True}
        if op == "query":
            name, session = msg["name"], msg["session"]
            engine, _ = sessions[(name, session)]
            program, config, machine_config = programs[name]
            goals = parse_query(msg["query"])
            attrs: dict = {}
            answers, expansions = run_engine_query(
                msg["engine"],
                engine,
                program,
                config,
                machine_config,
                goals,
                msg.get("max_solutions"),
                processes=1,
                attrs=attrs,
            )
            # engine counters ride the pickled reply so the parent can
            # attach them to the request's engine span (telemetry)
            return {
                "ok": True,
                "answers": answers,
                "expansions": expansions,
                "engine_attrs": attrs,
            }
        if op == "close_session":
            name, session = msg["name"], msg["session"]
            state = sessions.pop((name, session), None)
            if state is None:
                return {"ok": True, "delta": None}
            engine, base_generation = state
            delta = store_delta(engine.store, since=base_generation)
            return {"ok": True, "delta": delta}
        if op == "abandon_session":
            dropped = sessions.pop((msg["name"], msg["session"]), None) is not None
            return {"ok": True, "dropped": dropped}
        if op == "shutdown":
            return {"ok": True, "shutdown": True}
        return {"ok": False, "error": f"unknown lane op {op!r}"}

    while True:
        try:
            msg = pickle.loads(conn.recv_bytes())
        # parent hung up: the child's only move is to exit; the parent
        # side counts the lane reset
        except (EOFError, OSError):  # blogcheck: ignore[BLG005]
            return
        try:
            reply = handle(msg)
        except Exception as exc:  # noqa: BLE001 — shipped to the parent
            reply = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        try:
            conn.send_bytes(pickle.dumps(reply))
        # reply pipe gone: parent died or reset the lane; the parent
        # already treats the silence as WorkerDied
        except (BrokenPipeError, OSError):  # blogcheck: ignore[BLG005]
            return
        if reply.get("shutdown"):
            return
