"""OS-process OR-parallel backend (wall-clock sanity check).

The simulated machine (:mod:`repro.machine`) is the faithful model of
the paper's architecture; this module is the pragmatic counterpart: it
splits the top OR fan-out of a query across ``multiprocessing`` worker
processes, each running the sequential engine on its alternative.
Because CPython's GIL serializes threads, real processes are the only
way to observe genuine OR-parallel wall-clock speedup in Python — and
even then only for coarse-grain alternatives (fork + pickle overhead
swamps small trees, which is itself an honest datum for the paper's
communication-cost discussion, the constant ``D`` of §6).

The split mirrors Conery & Kibler's OR-parallelism: alternatives of
the root goal are independent searches sharing nothing.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..logic.program import Program
from ..logic.solver import Solver
from ..logic.terms import Term
from ..ortree.tree import NodeStatus, OrTree

__all__ = ["ParallelAnswer", "or_parallel_solve", "or_split"]


@dataclass
class ParallelAnswer:
    """Answers gathered from all branches, with per-branch accounting."""

    answers: list[dict[str, str]] = field(default_factory=list)
    branches: int = 0
    per_branch_solutions: list[int] = field(default_factory=list)


def or_split(program: Program, query: str | Sequence[Term]) -> list[tuple[Term, ...]]:
    """Resolvents after one resolution step at the root (the OR fan-out)."""
    tree = OrTree(program, query)
    tree.expand(0)
    out: list[tuple[Term, ...]] = []
    for cid in tree.root.children:
        node = tree.node(cid)
        out.append((node.goals, node.answer))  # type: ignore[arg-type]
    return out


def _solve_branch(payload: bytes) -> bytes:
    """Worker: run the sequential solver on one resolvent."""
    program, goals, answer, query_names, max_depth, max_solutions = pickle.loads(
        payload
    )
    solver = Solver(program, max_depth=max_depth)
    from ..logic.unify import Bindings, unify

    answers: list[dict[str, str]] = []
    if not goals:  # the branch is already a solution
        b = Bindings()
        sols = [answer]
    else:
        sols = []
        bindings = Bindings(solver.stats.unify)
        count = 0
        for _ in solver._solve(tuple(goals), bindings, 0, [False]):
            sols.append(tuple(bindings.resolve(a) for a in answer))
            count += 1
            if max_solutions is not None and count >= max_solutions:
                break
    for inst in sols:
        named: dict[str, str] = {}
        b = Bindings()
        from ..logic.terms import term_vars

        # Recover named query-variable bindings by unifying the original
        # query pattern against this instance.
        for q, a in zip(query_names["query"], inst):
            unify(q, a, b)
        for name, var in query_names["vars"].items():
            named[name] = str(b.resolve(var))
        answers.append(named)
    return pickle.dumps(answers)


def or_parallel_solve(
    program: Program,
    query: str | Sequence[Term],
    processes: int = 2,
    max_depth: int = 256,
    max_solutions_per_branch: Optional[int] = None,
) -> ParallelAnswer:
    """Solve ``query`` with the top OR fan-out spread over processes.

    Answers across branches are concatenated in branch order; within a
    branch they follow Prolog order.  Solution *sets* therefore match
    the sequential engine (order may interleave differently).
    """
    tree = OrTree(program, query)
    tree.expand(0)
    if not tree.root.children:
        # Zero OR alternatives at the root (unknown predicate, empty
        # fan-out): there is nothing to distribute, and handing an empty
        # job list to a pool would be wasted forks at best.  Answer
        # immediately with an empty result.
        return ParallelAnswer()
    query_names = {"query": tree.query, "vars": tree.query_vars}
    payloads = []
    direct: list[dict[str, str]] = []
    for cid in tree.root.children:
        node = tree.node(cid)
        if node.status is NodeStatus.SOLUTION:
            direct.append({k: str(v) for k, v in tree.solution_answer(node).items()})
            continue
        try:
            payloads.append(
                pickle.dumps(
                    (
                        program,
                        node.goals,
                        node.answer,
                        query_names,
                        max_depth,
                        max_solutions_per_branch,
                    )
                )
            )
        except Exception as exc:
            raise ValueError(
                "OR-parallel branch is not picklable for process transport "
                f"(branch goals: {', '.join(map(str, node.goals))}): {exc}"
            ) from exc
    result = ParallelAnswer(branches=len(payloads) + len(direct))
    result.answers.extend(direct)
    result.per_branch_solutions.extend([1] * len(direct))
    if not payloads:
        return result
    if processes <= 1 or len(payloads) == 1:
        chunks = [_solve_branch(p) for p in payloads]
    else:
        ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp
        with ctx.Pool(min(processes, len(payloads))) as pool:
            chunks = pool.map(_solve_branch, payloads)
    for chunk in chunks:
        answers = pickle.loads(chunk)
        result.answers.extend(answers)
        result.per_branch_solutions.append(len(answers))
    return result
