"""The assembled B-LOG system: one object, the whole paper.

:class:`BLogSystem` wires together everything a §6 deployment has:

* the clause database (logical :class:`Program` + physical
  :class:`LinkedDatabase` with weighted pointers);
* the semantic paging disks holding it;
* the global weight store with sessions (strong local learning,
  conservative merges) and optional JSON persistence;
* two executors over the same search space — the sequential adaptive
  engine and the simulated parallel machine — selected per query;
* session-end write-back of learned weights into the disk-resident
  records.

This is the "downstream user" API: consult a program, open a session,
ask queries (sequentially or on an N-processor machine), close the
session, and the knowledge persists.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from ..linkdb.build import LinkedDatabase
from ..logic.program import Program
from ..logic.terms import Term
from ..machine.blog_machine import BLogMachine, MachineConfig, MachineResult
from ..ortree.tree import OrTree
from ..spd.ops import SemanticPagingDisk
from ..spd.weights_io import WriteBackReport, write_back_weights
from ..weights.persist import load_store, save_store
from ..weights.store import WeightStore
from .config import BLogConfig
from .engine import BLogEngine, QueryResult

__all__ = ["BLogSystem"]


class BLogSystem:
    """A complete B-LOG installation over one knowledge base.

    Parameters
    ----------
    program:
        The knowledge base (or source text).
    config:
        Engine constants; see :class:`BLogConfig`.
    machine:
        Machine topology for :meth:`query_parallel`; a default
        4-processor machine is used when omitted.
    n_sps / track_words:
        SPD bank geometry.
    store_path:
        Optional JSON path: the global weight store is loaded from it
        at startup (when it exists) and written by :meth:`save`.
    """

    def __init__(
        self,
        program: Union[Program, str],
        config: Optional[BLogConfig] = None,
        machine: Optional[MachineConfig] = None,
        n_sps: int = 2,
        track_words: int = 256,
        store_path: Optional[Union[str, Path]] = None,
    ):
        self.program = (
            program if isinstance(program, Program) else Program.from_source(program)
        )
        self.config = config if config is not None else BLogConfig()
        self.machine_config = (
            machine if machine is not None else MachineConfig(n_processors=4)
        )
        self.store_path = Path(store_path) if store_path is not None else None
        if self.store_path is not None and self.store_path.exists():
            global_store = load_store(self.store_path)
        else:
            global_store = WeightStore(n=self.config.n, a=self.config.a)
        self.engine = BLogEngine(self.program, self.config, global_store=global_store)
        self.database = LinkedDatabase(self.program, global_store)
        self._n_sps = n_sps
        self._track_words = track_words
        self.disk = SemanticPagingDisk(
            self.database, n_sps=n_sps, track_words=track_words
        )
        self.writeback_reports: list[WriteBackReport] = []

    # -- sessions ---------------------------------------------------------------
    @property
    def store(self) -> WeightStore:
        """The weight store queries currently read (local in-session)."""
        return self.engine.store

    def begin_session(self) -> None:
        self.engine.begin_session()

    def end_session(self, conservative: bool = True, write_back: bool = True):
        """Merge the session and (by default) persist the learned
        weights into the disk-resident records; returns (merge report,
        write-back report or None)."""
        merge = self.engine.end_session(conservative=conservative)
        report = None
        if write_back:
            report = write_back_weights(
                self.disk, self.engine.sessions.global_store
            )
            self.writeback_reports.append(report)
        return merge, report

    # -- querying ------------------------------------------------------------------
    def query(
        self,
        query: str | Sequence[Term],
        max_solutions: Optional[int] = None,
    ) -> QueryResult:
        """Sequential adaptive best-first execution."""
        return self.engine.query(query, max_solutions=max_solutions)

    def query_parallel(
        self,
        query: str | Sequence[Term],
        max_solutions: Optional[int] = None,
    ) -> MachineResult:
        """Run on the simulated machine against the same weight store
        (updates apply live, exactly like sequential queries)."""
        store = self.engine.store
        tree = OrTree(
            self.program,
            query,
            weight_fn=store.weight_fn(),
            arc_key_policy=self.config.arc_key_policy,
            max_depth=self.config.max_depth,
        )
        cfg = self.machine_config
        if max_solutions is not None:
            from dataclasses import replace

            cfg = replace(cfg, max_solutions=max_solutions)
        machine = BLogMachine(cfg, disk=self.disk, store=store)
        return machine.run(tree)

    # -- persistence -----------------------------------------------------------------
    def save(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Write the global weight store to JSON; returns the path."""
        target = Path(path) if path is not None else self.store_path
        if target is None:
            raise ValueError("no store path configured; pass one to save()")
        save_store(self.engine.sessions.global_store, target)
        return target

    # -- maintenance ---------------------------------------------------------------
    def consult(self, source: str) -> None:
        """Add clauses at run time: the linked database and disk are
        rebuilt (the inverted-file update of §5, wholesale)."""
        self.program.add_source(source)
        self.database.rebuild()
        self.disk = SemanticPagingDisk(
            self.database, n_sps=self._n_sps, track_words=self._track_words
        )

    def __repr__(self) -> str:
        return (
            f"BLogSystem({len(self.program)} clauses, "
            f"{self.machine_config.n_processors} processors, "
            f"{self.disk.n_sps} SPDs, {len(self.store)} learned weights)"
        )
