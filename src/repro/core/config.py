"""Configuration knobs of the B-LOG engine and machine.

Collects the constants the paper introduces by name:

* ``n`` — the common bound N of successful chains (§5);
* ``a`` — the longest chain length A; infinity encodes as A·N (§5);
* ``alpha`` — session averaging rate for conservative merges (§5
  "averaging of modifications over different sessions");
* ``d`` — the chain-migration communication threshold D (§6);
* engine limits and policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BLogConfig"]


@dataclass
class BLogConfig:
    """Engine/machine configuration (defaults follow the paper's spirit:
    N is arbitrary, A bounds the deepest chain we expect)."""

    n: float = 16.0
    a: int = 16
    alpha: float = 0.5
    d: float = 4.0
    arc_key_policy: str = "pointer"  # "pointer" (fig 4) or "goal" (§4 req 1)
    selection_rule: str = "leftmost"  # computation rule: "leftmost"
    # (Prolog/§2), "most-bound", or "fewest-candidates" (§7 ordering)
    max_depth: int = 128
    max_expansions: int = 200_000
    prune_bound: bool = False  # incumbent cutoff (§3) — off when all
    # solutions are wanted with imperfect weights, on for first-solution runs
    live_updates: bool = True  # apply §5 rules as outcomes appear mid-search
    occurs_check: bool = False
    failure_blame: str = "leafmost"  # §5 default; or "rootmost" / "all"
    success_distribute: str = "equal"  # §5 default; or "leaf-weighted" /
    # "root-weighted" (E11 ablates these)

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError("N must be positive")
        if self.a < 2:
            raise ValueError("A must be >= 2")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.d < 0:
            raise ValueError("D must be non-negative")
        if self.arc_key_policy not in ("pointer", "goal"):
            raise ValueError("arc_key_policy must be 'pointer' or 'goal'")
        if self.selection_rule not in (
            "leftmost",
            "most-bound",
            "fewest-candidates",
        ):
            raise ValueError(
                "selection_rule must be leftmost/most-bound/fewest-candidates"
            )
        if self.failure_blame not in ("leafmost", "rootmost", "all"):
            raise ValueError("failure_blame must be leafmost/rootmost/all")
        if self.success_distribute not in (
            "equal",
            "leaf-weighted",
            "root-weighted",
        ):
            raise ValueError(
                "success_distribute must be equal/leaf-weighted/root-weighted"
            )
