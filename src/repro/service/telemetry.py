"""Structured tracing and metrics for the B-LOG service.

The service layer (admission → cache → lane dispatch → engine → merge)
answers *what* happened through :class:`~repro.service.stats.ServiceStats`;
this module answers *where the time went*, per request, across both lane
backends:

* **Spans** — a span is one named phase of a request (``admission``,
  ``queue``, ``lane-dispatch``, ``engine``, ``cache``, ``merge``, plus
  ``respawn``/``replay`` on the process backend) with a start, an end, a
  parent, and free-form attributes.  Every request the service finishes
  owns exactly one root span; the phases hang off it as a tree.  Engine
  counters (expansions, pruned chains, solution bounds) flow up as span
  attributes from both thread and process lanes — process lanes ship
  them back inside the pickled reply.
* **Metrics** — a zero-dependency registry of counters, gauges, and
  bounded-reservoir histograms with a Prometheus-flavoured text
  exposition (the ``metrics`` TCP verb).  The registry is the substrate
  :class:`ServiceStats` folds onto; the p50/p95 summary is unchanged.
* **Exports** — an optional JSONL trace log (one line per span, size
  rotation) and a slow-query log that dumps the full span tree of any
  request over a configurable threshold.

Everything here runs on the event-loop thread (spans are started and
ended there even when the work they time runs on a worker thread or in
a lane subprocess), so plain data structures suffice.  Timestamps come
from one monotonic clock per tracer and are clamped so time never runs
backwards within a span tree — an invariant the test harness checks.
"""

from __future__ import annotations

import json
import os
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Optional

from .stats import percentile

__all__ = [
    "Span",
    "Trace",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRIC_CATALOG",
    "JsonlTraceLog",
    "Telemetry",
    "format_trace",
    "read_trace_log",
]


#: Every metric series the service emits, name -> kind.  The registry
#: registers lazily, so a typo at a call site would otherwise mint a new
#: series nobody reads; blogcheck rule BLG006 pins every literal
#: registration in ``src/`` to this catalog.  Add the name here first,
#: then use it.
METRIC_CATALOG: dict[str, str] = {
    # request path (stats.py)
    "blog_requests_total": "counter",
    "blog_requests_engine_total": "counter",
    "blog_request_cache_hits_total": "counter",
    "blog_errors_total": "counter",
    "blog_degraded_total": "counter",
    "blog_retries_total": "counter",
    "blog_request_seconds": "histogram",
    "blog_queue_wait_seconds": "histogram",
    "blog_engine_seconds": "histogram",
    "blog_rejection_seconds": "histogram",
    # sessions (router.py)
    "blog_sessions_opened_total": "counter",
    "blog_sessions_merged_total": "counter",
    "blog_sessions_abandoned_total": "counter",
    "blog_sessions_open": "gauge",
    # admission (admission.py)
    "blog_pending": "gauge",
    "blog_peak_pending": "gauge",
    "blog_admitted_total": "counter",
    "blog_rejected_total": "counter",
    # answer cache (cache.py)
    "blog_cache_hits_total": "counter",
    "blog_cache_misses_total": "counter",
    "blog_cache_stale_total": "counter",
    "blog_cache_entries": "gauge",
    # transport (server.py)
    "blog_lane_resets_total": "counter",
    "blog_client_disconnects_total": "counter",
    # durability + lifecycle (server.py, lifecycle.py)
    "blog_wal_appends_total": "counter",
    "blog_wal_fsync_seconds": "histogram",
    "blog_checkpoint_seconds": "histogram",
    "blog_checkpoint_errors_total": "counter",
    "blog_recovery_records_replayed_total": "counter",
    "blog_drain_seconds": "histogram",
}


# -- spans -------------------------------------------------------------------


@dataclass
class Span:
    """One named phase of a request: an interval with attributes."""

    name: str
    trace_id: str
    span_id: int
    parent_id: Optional[int]
    start_s: float
    end_s: Optional[float] = None
    attributes: dict[str, Any] = field(default_factory=dict)

    def set(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    @property
    def duration_s(self) -> float:
        return (self.end_s if self.end_s is not None else self.start_s) - self.start_s

    def to_dict(self) -> dict:
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "attrs": self.attributes,
        }


class _SpanContext:
    """``with trace.span("engine") as sp:`` — starts on enter, ends on
    exit; an escaping exception is recorded as the span's ``error``."""

    def __init__(self, trace: "Trace", name: str, attrs: dict[str, Any]):
        self._trace = trace
        self._name = name
        self._attrs = attrs
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self._trace.start_span(self._name, **self._attrs)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None and self.span is not None:
            self.span.set("error", f"{exc_type.__name__}: {exc}")
        self._trace.end_span(self.span)
        return False


class Trace:
    """One request's span tree.  Created by :meth:`Tracer.start_trace`;
    every span operation goes through the trace so the tree shares one
    clamped clock (timestamps never decrease within a tree)."""

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        name: str,
        attributes: dict[str, Any],
    ):
        self._tracer = tracer
        self.trace_id = trace_id
        self._next_id = 0
        self._last_ts = tracer.clock()
        self.root = Span(
            name=name,
            trace_id=trace_id,
            span_id=self._take_id(),
            parent_id=None,
            start_s=self._last_ts,
            attributes=dict(attributes),
        )
        self.spans: list[Span] = [self.root]
        self._stack: list[Span] = [self.root]
        self.ended = False

    # -- clock -------------------------------------------------------------
    def _take_id(self) -> int:
        sid = self._next_id
        self._next_id += 1
        return sid

    def _now(self) -> float:
        """The tracer clock, clamped so it never runs backwards within
        this trace (OS clock hiccups must not produce negative spans)."""
        t = self._tracer.clock()
        if t < self._last_ts:
            t = self._last_ts
        self._last_ts = t
        return t

    # -- building the tree -------------------------------------------------
    @property
    def current(self) -> Span:
        return self._stack[-1]

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Context manager for a child span of the current span."""
        return _SpanContext(self, name, attrs)

    def start_span(self, name: str, **attrs: Any) -> Span:
        span = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=self._take_id(),
            parent_id=self.current.span_id,
            start_s=self._now(),
            attributes=attrs,
        )
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end_span(self, span: Optional[Span]) -> None:
        if span is None or span.end_s is not None:
            return
        span.end_s = self._now()
        if span in self._stack:
            # pop it and anything opened after it that was left dangling
            while self._stack[-1] is not span:
                dangling = self._stack.pop()
                if dangling.end_s is None:
                    dangling.end_s = span.end_s
            self._stack.pop()

    def span_at(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Record a phase whose interval was measured elsewhere (queue
        wait stamped by the worker pool, a lane respawn timed inside the
        backend).  The interval is clamped into the parent so nesting
        invariants hold even against foreign timestamps."""
        parent = parent if parent is not None else self.current
        start_s = max(float(start_s), parent.start_s)
        end_s = max(float(end_s), start_s)
        self._last_ts = max(self._last_ts, end_s)
        span = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=self._take_id(),
            parent_id=parent.span_id,
            start_s=start_s,
            end_s=end_s,
            attributes=attrs,
        )
        self.spans.append(span)
        return span

    def end(self, **attrs: Any) -> None:
        """Finish the root span (closing any dangling children first) and
        hand the trace to the tracer's exporters.  Idempotent."""
        if self.ended:
            return
        while len(self._stack) > 1:
            self.end_span(self._stack[-1])
        for k, v in attrs.items():
            self.root.set(k, v)
        self.root.end_s = self._now()
        self.ended = True
        self._tracer._finish(self)

    # -- reading -----------------------------------------------------------
    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]


class Tracer:
    """Creates traces, keeps the recent finished ones, fans out exports."""

    def __init__(self, clock: Callable[[], float] = time.monotonic, keep: int = 512):
        self.clock = clock
        self.finished: deque[Trace] = deque(maxlen=keep)
        self.on_finish: list[Callable[[Trace], None]] = []
        self.started = 0
        self.completed = 0
        self.export_errors = 0

    def start_trace(self, trace_id: str, name: str = "request", **attrs: Any) -> Trace:
        self.started += 1
        return Trace(self, trace_id, name, attrs)

    def _finish(self, trace: Trace) -> None:
        self.completed += 1
        self.finished.append(trace)
        for hook in self.on_finish:
            try:
                hook(trace)
            except Exception:  # noqa: BLE001 — telemetry must not fail requests
                self.export_errors += 1


def format_trace(trace: Trace) -> str:
    """Indented one-span-per-line rendering of a trace (slow-query log)."""

    def attrs_text(span: Span) -> str:
        parts = []
        for k, v in span.attributes.items():
            if isinstance(v, float):
                parts.append(f"{k}={v:.6g}")
            else:
                parts.append(f"{k}={v}")
        return ("  " + " ".join(parts)) if parts else ""

    lines = [
        f"trace {trace.trace_id} {trace.root.name} "
        f"{trace.root.duration_s * 1000.0:.2f}ms{attrs_text(trace.root)}"
    ]

    def walk(span: Span, depth: int) -> None:
        for child in trace.children(span):
            lines.append(
                f"{'  ' * depth}{child.name} "
                f"{child.duration_s * 1000.0:.2f}ms{attrs_text(child)}"
            )
            walk(child, depth + 1)

    walk(trace.root, 1)
    return "\n".join(lines)


# -- metrics -----------------------------------------------------------------


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Gauge:
    """A value that goes up and down (queue depth, open sessions)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n


class Histogram:
    """Exact count/sum/min/max plus a bounded reservoir for quantiles.

    The reservoir replacement slot is a deterministic hash of the sample
    ordinal (no ``random``), so runs are reproducible; count and sum are
    always exact regardless of reservoir size.
    """

    kind = "histogram"

    def __init__(self, reservoir: int = 512) -> None:
        if reservoir < 1:
            raise ValueError("reservoir must hold at least one sample")
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._cap = int(reservoir)
        self.reservoir: list[float] = []

    def observe(self, v: float) -> None:
        v = float(v)
        self.count += 1
        self.sum += v
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)
        if len(self.reservoir) < self._cap:
            self.reservoir.append(v)
        else:  # deterministic pseudo-random replacement (Knuth multiplicative)
            self.reservoir[(self.count * 2654435761) % self._cap] = v

    def quantile(self, q: float) -> float:
        return percentile(self.reservoir, q * 100.0)

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
        }


def _format_value(v: float) -> str:
    if isinstance(v, float) and v.is_integer():
        return str(int(v))
    return f"{v:.9g}"


class MetricsRegistry:
    """Named metric series: ``registry.counter("blog_requests_total")``.

    A series is identified by (name, labels); asking again returns the
    same object, so call sites register lazily.  One name has one kind —
    re-registering a name as a different kind is a programming error and
    raises immediately.
    """

    _KINDS: ClassVar[dict[str, type]] = {
        "counter": Counter,
        "gauge": Gauge,
        "histogram": Histogram,
    }

    def __init__(self) -> None:
        self._series: dict[tuple[str, tuple[tuple[str, str], ...]], Any] = {}
        self._kinds: dict[str, str] = {}

    def _get(self, kind: str, name: str, labels: dict[str, str], **kw: Any):
        known = self._kinds.get(name)
        if known is not None and known != kind:
            raise ValueError(f"metric {name!r} already registered as {known}")
        self._kinds[name] = kind
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        series = self._series.get(key)
        if series is None:
            series = self._KINDS[kind](**kw)
            self._series[key] = series
        return series

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, reservoir: int = 512, **labels: str) -> Histogram:
        return self._get("histogram", name, labels, reservoir=reservoir)

    # -- exposition --------------------------------------------------------
    @staticmethod
    def _label_text(labels: tuple[tuple[str, str], ...]) -> str:
        if not labels:
            return ""
        return "{" + ",".join(f'{k}="{v}"' for k, v in labels) + "}"

    def expose(self) -> str:
        """Text exposition: ``# TYPE`` headers, one ``name{labels} value``
        line per series, deterministic ordering (names, then labels).
        Histograms emit ``_count``, ``_sum``, two quantile lines, and
        ``_max``."""
        lines: list[str] = []
        for name in sorted(self._kinds):
            kind = self._kinds[name]
            lines.append(f"# TYPE {name} {kind}")
            keys = sorted(k for k in self._series if k[0] == name)
            for key in keys:
                labels = key[1]
                series = self._series[key]
                lt = self._label_text(labels)
                if kind in ("counter", "gauge"):
                    lines.append(f"{name}{lt} {_format_value(series.value)}")
                    continue
                lines.append(f"{name}_count{lt} {_format_value(float(series.count))}")
                lines.append(f"{name}_sum{lt} {_format_value(series.sum)}")
                for q in ("0.5", "0.95"):
                    qlt = self._label_text(labels + (("q", q),))
                    lines.append(
                        f"{name}{qlt} {_format_value(series.quantile(float(q)))}"
                    )
                lines.append(
                    f"{name}_max{lt} {_format_value(float(series.max or 0.0))}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


# -- exports -----------------------------------------------------------------


class JsonlTraceLog:
    """Span export: one JSON object per span, appended per finished trace,
    with size-based rotation (``path`` → ``path.1`` → ``path.2`` …)."""

    def __init__(self, path: str, max_bytes: int = 10_000_000, backups: int = 2):
        self.path = str(path)
        self.max_bytes = int(max_bytes)
        self.backups = int(backups)
        self.spans_written = 0
        self.rotations = 0
        self._fh = open(self.path, "a", encoding="utf-8")

    def __call__(self, trace: Trace) -> None:
        payload = "".join(
            json.dumps(span.to_dict(), default=str) + "\n" for span in trace.spans
        )
        if self._fh.tell() > 0 and self._fh.tell() + len(payload) > self.max_bytes:
            self._rotate()
        self._fh.write(payload)
        self._fh.flush()
        self.spans_written += len(trace.spans)

    def _rotate(self) -> None:
        self._fh.close()
        for i in range(self.backups, 0, -1):
            src = self.path if i == 1 else f"{self.path}.{i - 1}"
            dst = f"{self.path}.{i}"
            if os.path.exists(src):
                os.replace(src, dst)
        self._fh = open(self.path, "w", encoding="utf-8")
        self.rotations += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


def read_trace_log(path: str) -> list[dict]:
    """All spans from a JSONL trace log, rotated backups first (i.e. in
    the order they were written)."""
    paths = []
    i = 1
    while os.path.exists(f"{path}.{i}"):
        paths.append(f"{path}.{i}")
        i += 1
    paths.reverse()
    if os.path.exists(path):
        paths.append(path)
    spans: list[dict] = []
    for p in paths:
        with open(p, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    spans.append(json.loads(line))
    return spans


# -- the bundle the service holds -------------------------------------------


class Telemetry:
    """One tracer + one metrics registry + the export/slow-query wiring."""

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        slow_query_s: Optional[float] = None,
        slow_query_sink: Optional[Callable[[str], None]] = None,
        keep_traces: int = 512,
    ):
        self.tracer = Tracer(clock=clock, keep=keep_traces)
        self.registry = MetricsRegistry()
        self.slow_query_s = slow_query_s
        self.slow_query_sink = slow_query_sink or (
            lambda text: print(text, file=sys.stderr)
        )
        self.slow_queries = 0
        self.trace_log: Optional[JsonlTraceLog] = None
        self.tracer.on_finish.append(self._on_finish)

    def attach_trace_log(
        self, path: str, max_bytes: int = 10_000_000, backups: int = 2
    ) -> JsonlTraceLog:
        self.trace_log = JsonlTraceLog(path, max_bytes=max_bytes, backups=backups)
        self.tracer.on_finish.append(self.trace_log)
        return self.trace_log

    def _on_finish(self, trace: Trace) -> None:
        if (
            self.slow_query_s is not None
            and trace.root.duration_s >= self.slow_query_s
        ):
            self.slow_queries += 1
            self.slow_query_sink(format_trace(trace))

    def close(self) -> None:
        if self.trace_log is not None:
            self.trace_log.close()
