"""Per-request trace events and service-level aggregation.

Every request the service finishes (served, failed, or timed out)
produces one :class:`TraceEvent` recording where its time went — queue
wait, engine time — and what happened to it (cache hit, degradation,
retries).  :class:`ServiceStats` folds the stream of events into the
numbers an operator actually watches: p50/p95 latency, throughput,
cache hit rate, per-engine counts, and overload rejections.

Nothing here is asynchronous: the service records events from the
event-loop thread only, so plain counters suffice.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # telemetry imports this module; keep the edge type-only
    from .telemetry import MetricsRegistry

__all__ = [
    "TraceEvent",
    "ServiceStats",
    "percentile",
    "format_stats",
    "format_lane_stats",
]


def percentile(values: list[float], q: float) -> float:
    """The q-th percentile (0..100) by linear interpolation; 0.0 when empty.

    Hardened edges (each pinned by a regression test): the input need
    not be sorted; a single sample is returned for any q; q is clamped
    into [0, 100] (so q=0 is the min and q=100 exactly the max, never
    an index error or a wrapped-around ``xs[-1]``); NaN samples are
    dropped so the result is NaN-free whenever any finite sample
    exists.
    """
    xs = sorted(v for v in values if not math.isnan(v))
    if not xs:
        return 0.0
    if len(xs) == 1:
        return xs[0]
    q = min(100.0, max(0.0, q))
    pos = (q / 100.0) * (len(xs) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(xs) - 1)
    frac = pos - lo
    return xs[lo] * (1.0 - frac) + xs[hi] * frac


@dataclass
class TraceEvent:
    """Where one request's time went, and what happened to it."""

    request_id: str
    program: str
    session: str
    engine_requested: str
    engine_used: str  # "cache" for cache hits
    ok: bool
    answers: int = 0
    cache_hit: bool = False
    degraded: bool = False  # machine -> blog fallback under load
    retries: int = 0
    queue_wait_s: float = 0.0
    engine_s: float = 0.0
    total_s: float = 0.0
    error: Optional[str] = None
    done_at: float = field(default_factory=time.monotonic)


class ServiceStats:
    """Aggregates trace events into operator-facing counters.

    With a :class:`~repro.service.telemetry.MetricsRegistry` attached,
    every recorded event is also folded into registry series
    (``blog_requests_total``, latency histograms, per-engine counts) so
    the ``metrics`` exposition and this summary always agree; the
    summary's own p50/p95 output is computed from the event list exactly
    as before.
    """

    def __init__(self, registry: Optional["MetricsRegistry"] = None):
        self.events: list[TraceEvent] = []
        self.rejected = 0
        #: rejection trace events (kept apart from ``events`` so the
        #: served/error counts and latency percentiles are unchanged);
        #: populated so *every* exit path carries measured durations
        self.rejections: list[TraceEvent] = []
        self._started_at = time.monotonic()
        self._first_done: Optional[float] = None
        self._last_done: Optional[float] = None
        self._registry = registry

    # -- recording ---------------------------------------------------------
    def record(self, event: TraceEvent) -> None:
        self.events.append(event)
        if self._first_done is None:
            self._first_done = event.done_at
        self._last_done = event.done_at
        reg = self._registry
        if reg is None:
            return
        reg.counter("blog_requests_total").inc()
        reg.counter("blog_requests_engine_total", engine=event.engine_used).inc()
        if not event.ok:
            reg.counter("blog_errors_total").inc()
        if event.cache_hit:
            reg.counter("blog_request_cache_hits_total").inc()
        if event.degraded:
            reg.counter("blog_degraded_total").inc()
        if event.retries:
            reg.counter("blog_retries_total").inc(event.retries)
        reg.histogram("blog_request_seconds").observe(event.total_s)
        reg.histogram("blog_queue_wait_seconds").observe(event.queue_wait_s)
        if not event.cache_hit:
            reg.histogram("blog_engine_seconds").observe(event.engine_s)

    def record_rejection(self, event: Optional[TraceEvent] = None) -> None:
        self.rejected += 1
        if event is not None:
            self.rejections.append(event)
            if self._registry is not None:
                self._registry.histogram("blog_rejection_seconds").observe(
                    event.total_s
                )

    # -- reading -----------------------------------------------------------
    def summary(self) -> dict:
        """One flat dict of everything: counts, latency, throughput."""
        served = [e for e in self.events if e.ok]
        errors = [e for e in self.events if not e.ok]
        hits = sum(1 for e in self.events if e.cache_hit)
        lookups = len(self.events)
        lat = [e.total_s * 1000.0 for e in served]
        waits = [e.queue_wait_s * 1000.0 for e in served]
        span = 0.0
        if self._first_done is not None and self._last_done is not None:
            span = self._last_done - self._first_done
        by_engine: dict[str, int] = {}
        for e in self.events:
            by_engine[e.engine_used] = by_engine.get(e.engine_used, 0) + 1
        return {
            "served": len(served),
            "errors": len(errors),
            "rejected": self.rejected,
            "cache_hits": hits,
            "cache_hit_rate": hits / lookups if lookups else 0.0,
            "retries": sum(e.retries for e in self.events),
            "degraded": sum(1 for e in self.events if e.degraded),
            "p50_ms": percentile(lat, 50.0),
            "p95_ms": percentile(lat, 95.0),
            "mean_ms": sum(lat) / len(lat) if lat else 0.0,
            "p95_queue_wait_ms": percentile(waits, 95.0),
            "throughput_qps": len(served) / span if span > 0 else float(len(served)),
            "by_engine": by_engine,
        }


def format_lane_stats(lanes: list[dict]) -> str:
    """One line per lane: backend, call count, respawns, IPC traffic."""
    out = []
    for lane in lanes:
        line = (
            f"lane {lane['lane']} [{lane['backend']}]  "
            f"calls {lane.get('calls', 0)}  respawns {lane.get('respawns', 0)}"
        )
        ipc = lane.get("ipc_bytes_out", 0) + lane.get("ipc_bytes_in", 0)
        if ipc:
            line += (
                f"  ipc {lane['ipc_bytes_out']}B out / {lane['ipc_bytes_in']}B in"
            )
        if lane.get("pid") is not None:
            line += f"  pid {lane['pid']}"
        out.append(line)
    return "\n".join(out)


def format_stats(summary: dict) -> str:
    """Human-readable one-screen rendering of :meth:`BLogService.stats`
    (or a bare :meth:`ServiceStats.summary`)."""
    lines = [
        f"served {summary['served']}  errors {summary['errors']}  "
        f"rejected {summary['rejected']}",
        f"latency p50 {summary['p50_ms']:.1f} ms  p95 {summary['p95_ms']:.1f} ms  "
        f"mean {summary['mean_ms']:.1f} ms",
        f"throughput {summary['throughput_qps']:.1f} q/s  "
        f"queue-wait p95 {summary['p95_queue_wait_ms']:.1f} ms",
        f"cache hit rate {summary['cache_hit_rate']:.2f}  "
        f"retries {summary['retries']}  degraded {summary['degraded']}",
        "engines: "
        + ", ".join(f"{k}={v}" for k, v in sorted(summary["by_engine"].items())),
    ]
    if "backend" in summary:
        lines.append(
            f"backend {summary['backend']}  "
            f"lane resets {summary.get('lane_resets', 0)}  "
            f"sessions abandoned {summary.get('sessions_abandoned', 0)}"
        )
    if "lifecycle" in summary:
        line = f"lifecycle {summary['lifecycle']}"
        durability = summary.get("durability") or {}
        for name, d in sorted(durability.items()):
            rec = d.get("recovery", {})
            line += (
                f"\ndurable {name}: seq {d.get('seq', 0)}  "
                f"wal appends {d.get('wal_appends', 0)} "
                f"({d.get('wal_bytes', 0)}B)  "
                f"checkpoints {d.get('checkpoints', 0)}  "
                f"recovered {rec.get('records_replayed', 0)} replayed / "
                f"{rec.get('records_skipped', 0)} skipped"
            )
        lines.append(line)
    if summary.get("lanes"):
        lines.append(format_lane_stats(summary["lanes"]))
    return "\n".join(lines)
