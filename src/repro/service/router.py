"""Session-affinity routing: one session, one lane, one local store.

The paper's session protocol (§5) is *strong local learning,
conservative global merging*: during a session every weight update goes
to a session-local copy of the store, and only the end-of-session merge
touches the global database.  Serving many clients concurrently, that
rule becomes a routing constraint: all queries of one session must be
executed serially against the same local store, while *distinct*
sessions are free to run in parallel (their local stores share
nothing until merge time).

:class:`SessionRouter` implements exactly that: a session id hashes to
a fixed lane (a serial execution queue owned by the worker pool), and
the router owns the per-session state — a :class:`BLogEngine` with an
open session whose local store lives for the session's lifetime.  The
hash is ``crc32``, not Python's randomized ``hash``, so placement is
stable across runs and processes.

With the *process* lane backend the session's engine and local store
live in the lane's subprocess, not here; the router then tracks a
:class:`SessionState` with ``engine=None`` for accounting, ships
weight-store **deltas** (what changed since the lane's mirror last
synced — :func:`~repro.weights.persist.store_delta` — never the whole
store), and merges the touched-keys delta a lane returns at session
close.  When a lane subprocess dies, every session routed to it dies
with it: :meth:`drop_lane` discards their states without merging, so
an abandoned session can never leak into the global store.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..core.config import BLogConfig
from ..core.engine import BLogEngine
from ..logic.program import Program
from ..weights.persist import delta_store, store_delta
from ..weights.session import MergeReport, merge_conservative, merge_strong
from ..weights.store import WeightStore

if TYPE_CHECKING:  # telemetry imports stats; keep this edge type-only
    from .telemetry import MetricsRegistry

__all__ = ["SessionState", "SessionRouter"]


@dataclass
class SessionState:
    """One live session: its engine (holding the local store, for thread
    lanes; ``None`` when the state lives in a lane subprocess) and
    accounting."""

    program: str
    session: str
    engine: Optional[BLogEngine]
    lane: int
    remote: bool = False  # True: engine/local store live in the lane child
    created_at: float = field(default_factory=time.monotonic)
    queries: int = 0

    @property
    def local_store(self) -> Optional[WeightStore]:
        return self.engine.store if self.engine is not None else None


class SessionRouter:
    """Maps sessions to lanes and owns per-session engine state."""

    def __init__(self, n_lanes: int, registry: Optional["MetricsRegistry"] = None):
        if n_lanes < 1:
            raise ValueError("need at least one lane")
        self.n_lanes = int(n_lanes)
        self._sessions: dict[tuple[str, str], SessionState] = {}
        self.sessions_opened = 0
        self.sessions_merged = 0
        self._m_opened = (
            registry.counter("blog_sessions_opened_total") if registry else None
        )
        self._m_merged = (
            registry.counter("blog_sessions_merged_total") if registry else None
        )
        self._m_abandoned = (
            registry.counter("blog_sessions_abandoned_total") if registry else None
        )
        self._m_live = registry.gauge("blog_sessions_open") if registry else None

    def _count_open(self) -> None:
        self.sessions_opened += 1
        if self._m_opened is not None:
            self._m_opened.inc()
        if self._m_live is not None:
            self._m_live.set(len(self._sessions))

    def _count_merge(self) -> None:
        self.sessions_merged += 1
        if self._m_merged is not None:
            self._m_merged.inc()
        if self._m_live is not None:
            self._m_live.set(len(self._sessions))

    def _count_abandoned(self, n: int = 1) -> None:
        if self._m_abandoned is not None and n:
            self._m_abandoned.inc(n)
        if self._m_live is not None:
            self._m_live.set(len(self._sessions))

    # -- placement ---------------------------------------------------------
    def lane_for(self, session: str) -> int:
        """The lane a session's queries execute on (stable affinity)."""
        return zlib.crc32(session.encode("utf-8")) % self.n_lanes

    # -- session state -----------------------------------------------------
    def get(self, program: str, session: str) -> Optional[SessionState]:
        return self._sessions.get((program, session))

    def open(
        self,
        program_name: str,
        session: str,
        program: Program,
        global_store: WeightStore,
        config: BLogConfig,
    ) -> SessionState:
        """The session's state, opening it on first touch.

        Opening copies the global store into the session-local store
        (the §5 session begin).  Must be called from the event-loop
        thread, which is the only mutator of global stores.
        """
        key = (program_name, session)
        state = self._sessions.get(key)
        if state is None:
            engine = BLogEngine(program, config, global_store=global_store)
            engine.begin_session()
            state = SessionState(
                program=program_name,
                session=session,
                engine=engine,
                lane=self.lane_for(session),
            )
            self._sessions[key] = state
            self._count_open()
        return state

    def close(
        self, program_name: str, session: str, conservative: bool = True
    ) -> Optional[MergeReport]:
        """End a session: merge its local store into the global store
        (bumping the store generation if anything was learned) and drop
        the state.  Returns None for a session that was never opened.

        The caller (the service) is responsible for running this on the
        session's lane so it cannot race an in-flight query of the same
        session, and on the event-loop thread because it writes the
        global store.
        """
        state = self._sessions.pop((program_name, session), None)
        if state is None:
            return None
        if state.engine is None:  # remote session: close_remote owns the merge
            return None
        report = state.engine.end_session(conservative=conservative)
        self._count_merge()
        return report

    # -- process-lane sessions ---------------------------------------------
    def open_remote(self, program_name: str, session: str) -> SessionState:
        """The state of a session whose engine lives in a lane subprocess,
        opening it on first touch.  Pure parent-side accounting — the
        caller is responsible for telling the lane child to open its
        engine (and for shipping it the store delta first)."""
        key = (program_name, session)
        state = self._sessions.get(key)
        if state is None:
            state = SessionState(
                program=program_name,
                session=session,
                engine=None,
                lane=self.lane_for(session),
                remote=True,
            )
            self._sessions[key] = state
            self._count_open()
        return state

    def store_sync(
        self, global_store: WeightStore, synced_generation: Optional[int]
    ) -> Optional[dict]:
        """The delta a lane mirror needs to catch up to ``global_store``,
        or None when it is already current.

        ``synced_generation=None`` means the lane has never synced this
        program: the delta is the full entry set.  This is the "ship
        deltas, not stores" half of the session-open protocol; after a
        few sessions the typical open ships only the keys the previous
        merges actually moved.
        """
        if synced_generation is not None and (
            synced_generation >= global_store.generation
        ):
            return None
        return store_delta(global_store, since=synced_generation)

    def close_remote(
        self,
        program_name: str,
        session: str,
        delta: Optional[dict],
        global_store: WeightStore,
        alpha: float = 0.5,
        conservative: bool = True,
    ) -> Optional[MergeReport]:
        """End a process-lane session: merge the touched-keys delta its
        lane child shipped back into the global store (same §5 policy as
        a thread-lane merge) and drop the state.  ``delta=None`` (the
        child had no such session, e.g. it respawned) just drops the
        state — an abandoned session is never merged.
        """
        state = self._sessions.pop((program_name, session), None)
        if state is None:
            return None
        if delta is None:
            return None
        local = delta_store(delta)
        if conservative:
            report = merge_conservative(global_store, local, alpha)
        else:
            report = merge_strong(global_store, local)
        self._count_merge()
        return report

    def drop_lane(self, lane: int) -> int:
        """Abandon every session routed to ``lane`` (no merges).

        Called when a lane subprocess dies or is killed after a
        timeout: the child held these sessions' engines and local
        stores, so there is nothing trustworthy left to merge.  The
        next query of each session opens a fresh state.
        """
        doomed = [k for k, s in self._sessions.items() if s.lane == lane]
        for k in doomed:
            del self._sessions[k]
        self._count_abandoned(len(doomed))
        return len(doomed)

    def abandon(self, program_name: str, session: str) -> bool:
        """Drop a session *without* merging.

        Used after a timed-out query: the abandoned worker thread may
        still be running and mutating the session-local store, so that
        store can never be trusted for a merge nor handed to another
        query.  The next query of the same session opens a fresh state.
        """
        dropped = self._sessions.pop((program_name, session), None) is not None
        if dropped:
            self._count_abandoned()
        return dropped

    # -- introspection -----------------------------------------------------
    def live_sessions(self) -> list[SessionState]:
        return list(self._sessions.values())

    def open_session_keys(self) -> list[tuple[str, str]]:
        """``(program, session)`` for every live session — what a graceful
        drain walks to merge surviving sessions before the final
        checkpoint (snapshot of the dict: end_session mutates it)."""
        return sorted(self._sessions.keys())

    def __len__(self) -> int:
        return len(self._sessions)
