"""Session-affinity routing: one session, one lane, one local store.

The paper's session protocol (§5) is *strong local learning,
conservative global merging*: during a session every weight update goes
to a session-local copy of the store, and only the end-of-session merge
touches the global database.  Serving many clients concurrently, that
rule becomes a routing constraint: all queries of one session must be
executed serially against the same local store, while *distinct*
sessions are free to run in parallel (their local stores share
nothing until merge time).

:class:`SessionRouter` implements exactly that: a session id hashes to
a fixed lane (a serial execution queue owned by the worker pool), and
the router owns the per-session state — a :class:`BLogEngine` with an
open session whose local store lives for the session's lifetime.  The
hash is ``crc32``, not Python's randomized ``hash``, so placement is
stable across runs and processes.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Optional

from ..core.config import BLogConfig
from ..core.engine import BLogEngine
from ..logic.program import Program
from ..weights.session import MergeReport
from ..weights.store import WeightStore

__all__ = ["SessionState", "SessionRouter"]


@dataclass
class SessionState:
    """One live session: its engine (holding the local store) and accounting."""

    program: str
    session: str
    engine: BLogEngine
    lane: int
    created_at: float = field(default_factory=time.monotonic)
    queries: int = 0

    @property
    def local_store(self) -> WeightStore:
        return self.engine.store


class SessionRouter:
    """Maps sessions to lanes and owns per-session engine state."""

    def __init__(self, n_lanes: int):
        if n_lanes < 1:
            raise ValueError("need at least one lane")
        self.n_lanes = int(n_lanes)
        self._sessions: dict[tuple[str, str], SessionState] = {}
        self.sessions_opened = 0
        self.sessions_merged = 0

    # -- placement ---------------------------------------------------------
    def lane_for(self, session: str) -> int:
        """The lane a session's queries execute on (stable affinity)."""
        return zlib.crc32(session.encode("utf-8")) % self.n_lanes

    # -- session state -----------------------------------------------------
    def get(self, program: str, session: str) -> Optional[SessionState]:
        return self._sessions.get((program, session))

    def open(
        self,
        program_name: str,
        session: str,
        program: Program,
        global_store: WeightStore,
        config: BLogConfig,
    ) -> SessionState:
        """The session's state, opening it on first touch.

        Opening copies the global store into the session-local store
        (the §5 session begin).  Must be called from the event-loop
        thread, which is the only mutator of global stores.
        """
        key = (program_name, session)
        state = self._sessions.get(key)
        if state is None:
            engine = BLogEngine(program, config, global_store=global_store)
            engine.begin_session()
            state = SessionState(
                program=program_name,
                session=session,
                engine=engine,
                lane=self.lane_for(session),
            )
            self._sessions[key] = state
            self.sessions_opened += 1
        return state

    def close(
        self, program_name: str, session: str, conservative: bool = True
    ) -> Optional[MergeReport]:
        """End a session: merge its local store into the global store
        (bumping the store generation if anything was learned) and drop
        the state.  Returns None for a session that was never opened.

        The caller (the service) is responsible for running this on the
        session's lane so it cannot race an in-flight query of the same
        session, and on the event-loop thread because it writes the
        global store.
        """
        state = self._sessions.pop((program_name, session), None)
        if state is None:
            return None
        report = state.engine.end_session(conservative=conservative)
        self.sessions_merged += 1
        return report

    def abandon(self, program_name: str, session: str) -> bool:
        """Drop a session *without* merging.

        Used after a timed-out query: the abandoned worker thread may
        still be running and mutating the session-local store, so that
        store can never be trusted for a merge nor handed to another
        query.  The next query of the same session opens a fresh state.
        """
        return self._sessions.pop((program_name, session), None) is not None

    # -- introspection -----------------------------------------------------
    def live_sessions(self) -> list[SessionState]:
        return list(self._sessions.values())

    def __len__(self) -> int:
        return len(self._sessions)
