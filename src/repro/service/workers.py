"""The bounded worker pool: serial lanes over a thread executor.

Execution model
---------------
The pool owns ``n_lanes`` *lanes*.  A lane is a serial queue drained by
one asyncio task; the router pins every session to one lane, which is
what makes session-local weight stores safe without locks — a session's
queries can never run concurrently with each other (nor with that
session's end-of-session merge, which is enqueued on the same lane).

The actual query execution is synchronous, CPU-bound engine code, so a
lane hands it to a shared :class:`~concurrent.futures.ThreadPoolExecutor`
(one thread per lane) and awaits it with a deadline.  Failure handling:

* **timeout** — the await is abandoned and the request fails with
  :class:`QueryTimeout`.  (The worker thread itself cannot be killed;
  it finishes into a dropped future.  The admission bound still holds
  because the request releases its slot on the way out.)
* **worker death** — an execution that raises :class:`WorkerDied`
  (a crashed OR-split worker process, an injected fault) is retried
  exactly once on the same lane; a second death fails the request.

Queue-wait per job is measured here (enqueue → start) and surfaced to
the stats layer.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Optional

__all__ = ["WorkerDied", "QueryTimeout", "Job", "WorkerPool"]


class WorkerDied(RuntimeError):
    """The worker executing a query died mid-flight (retryable once)."""


class QueryTimeout(RuntimeError):
    """The query missed its deadline."""


@dataclass
class Job:
    """One unit of lane work (a query execution or a session merge)."""

    run: Callable[["Job"], Awaitable[Any]]
    future: asyncio.Future
    enqueued_at: float = field(default_factory=time.monotonic)
    started_at: Optional[float] = None
    retries: int = 0

    @property
    def queue_wait_s(self) -> float:
        if self.started_at is None:
            return 0.0
        return self.started_at - self.enqueued_at


class WorkerPool:
    """``n_lanes`` serial queues over a shared thread executor."""

    def __init__(self, n_lanes: int):
        if n_lanes < 1:
            raise ValueError("need at least one lane")
        self.n_lanes = int(n_lanes)
        self._queues: list[asyncio.Queue] = []
        self._tasks: list[asyncio.Task] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self.started = False

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        if self.started:
            return
        self._executor = ThreadPoolExecutor(
            max_workers=self.n_lanes, thread_name_prefix="blog-worker"
        )
        self._queues = [asyncio.Queue() for _ in range(self.n_lanes)]
        self._tasks = [
            asyncio.create_task(self._lane_main(q), name=f"blog-lane-{i}")
            for i, q in enumerate(self._queues)
        ]
        self.started = True

    async def stop(self) -> None:
        if not self.started:
            return
        for q in self._queues:
            q.put_nowait(None)  # sentinel: drain then exit
        await asyncio.gather(*self._tasks, return_exceptions=True)
        assert self._executor is not None
        self._executor.shutdown(wait=False, cancel_futures=True)
        self._executor = None
        self._tasks = []
        self._queues = []
        self.started = False

    # -- submission --------------------------------------------------------
    def submit(self, lane: int, run: Callable[[Job], Awaitable[Any]]) -> Job:
        """Enqueue work on a lane; await ``job.future`` for the result."""
        if not self.started:
            raise RuntimeError("worker pool is not running; call start()")
        job = Job(run=run, future=asyncio.get_running_loop().create_future())
        self._queues[lane].put_nowait(job)
        return job

    def depth(self, lane: int) -> int:
        return self._queues[lane].qsize() if self.started else 0

    # -- execution helpers -------------------------------------------------
    async def run_sync(
        self,
        job: Job,
        fn: Callable[[], Any],
        timeout: Optional[float],
    ) -> Any:
        """Run ``fn`` on the executor with a deadline and one retry on
        :class:`WorkerDied`; meant to be called from a job's ``run``."""
        assert self._executor is not None
        loop = asyncio.get_running_loop()
        attempts = 0
        while True:
            attempts += 1
            try:
                return await asyncio.wait_for(
                    loop.run_in_executor(self._executor, fn), timeout
                )
            except asyncio.TimeoutError:
                raise QueryTimeout(
                    f"query exceeded its {timeout:g}s deadline"
                ) from None
            except WorkerDied:
                if attempts > 1:
                    raise
                job.retries += 1

    # -- lane loop ---------------------------------------------------------
    async def _lane_main(self, queue: asyncio.Queue) -> None:
        while True:
            job = await queue.get()
            if job is None:
                queue.task_done()
                return
            job.started_at = time.monotonic()
            try:
                result = await job.run(job)
            except Exception as exc:  # noqa: BLE001 — delivered to the caller
                if not job.future.done():
                    job.future.set_exception(exc)
            else:
                if not job.future.done():
                    job.future.set_result(result)
            finally:
                queue.task_done()
