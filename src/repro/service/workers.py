"""The bounded worker pool: serial lanes over a pluggable execution backend.

Execution model
---------------
The pool owns ``n_lanes`` *lanes*.  A lane is a serial queue drained by
one asyncio task; the router pins every session to one lane, which is
what makes session-local weight stores safe without locks — a session's
queries can never run concurrently with each other (nor with that
session's end-of-session merge, which is enqueued on the same lane).

What actually executes a lane's work is a :class:`LaneBackend`:

* ``thread`` — the historical backend: synchronous engine code runs on
  a shared :class:`~concurrent.futures.ThreadPoolExecutor` (one thread
  per lane).  Cheap, zero serialization, but the GIL serializes the
  CPU-bound engine work, so cache-off throughput is flat no matter how
  many lanes exist (measured as E16).
* ``process`` — each lane owns a warm, long-lived worker subprocess
  (spawned once at pool start, reused across queries) holding the
  lane's programs and session-local weight stores; the event loop
  speaks to it over a pickled request/response pipe.  Genuinely
  independent execution state, the way the paper's MIMD processors
  are independent — measured as E17.

Failure handling:

* **timeout** — thread: the await is abandoned and the request fails
  with :class:`QueryTimeout` (the worker thread cannot be killed; it
  finishes into a dropped future).  process: the lane subprocess *is*
  killed and respawned — the lane is immediately healthy again, at the
  cost of the child-side sessions that lived in it (the reset callback
  lets the router drop them so they are never merged).
* **worker death** — an execution that raises :class:`WorkerDied` (a
  SIGKILLed lane subprocess, an injected fault) is retried exactly once;
  a second death fails the request.  For process lanes the dead child
  is respawned before the retry, and the retry replays the in-flight
  query against a freshly opened session.

Queue-wait per job is measured here (enqueue → start) and surfaced to
the stats layer, as are per-lane respawn and IPC byte counters.
"""

from __future__ import annotations

import asyncio
import contextlib
import multiprocessing as mp
import pickle
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Optional

__all__ = [
    "WorkerDied",
    "QueryTimeout",
    "Job",
    "WorkerPool",
    "LaneBackend",
    "ThreadLaneBackend",
    "ProcessLaneBackend",
    "BACKENDS",
]

BACKENDS = ("thread", "process")


class WorkerDied(RuntimeError):
    """The worker executing a query died mid-flight (retryable once)."""


class QueryTimeout(RuntimeError):
    """The query missed its deadline."""


@dataclass
class Job:
    """One unit of lane work (a query execution or a session merge)."""

    run: Callable[["Job"], Awaitable[Any]]
    future: asyncio.Future
    enqueued_at: float = field(default_factory=time.monotonic)
    started_at: Optional[float] = None
    retries: int = 0

    @property
    def queue_wait_s(self) -> float:
        if self.started_at is None:
            return 0.0
        return self.started_at - self.enqueued_at


# -- backends ---------------------------------------------------------------


class LaneBackend:
    """How a lane's work is executed; see the module docstring."""

    kind: str = "?"
    #: called with the lane index after a lane loses its worker (process
    #: backend: kill/respawn); declared on the base so the service can
    #: install its hook without knowing which backend it got
    on_lane_reset: Optional[Callable[[int], None]] = None

    async def start(self, n_lanes: int) -> None:
        raise NotImplementedError

    async def stop(self) -> None:
        raise NotImplementedError

    def lane_stats(self) -> list[dict]:
        """Per-lane operator counters (backend, respawns, IPC bytes)."""
        raise NotImplementedError


class ThreadLaneBackend(LaneBackend):
    """One worker thread per lane on a shared executor (GIL-bound)."""

    kind = "thread"

    def __init__(self) -> None:
        self.executor: Optional[ThreadPoolExecutor] = None
        self._n_lanes = 0
        self._calls: list[int] = []

    async def start(self, n_lanes: int) -> None:
        self._n_lanes = n_lanes
        self._calls = [0] * n_lanes
        self.executor = ThreadPoolExecutor(
            max_workers=n_lanes, thread_name_prefix="blog-worker"
        )

    async def stop(self) -> None:
        if self.executor is not None:
            self.executor.shutdown(wait=False, cancel_futures=True)
            self.executor = None

    def count_call(self, lane: int) -> None:
        if 0 <= lane < len(self._calls):
            self._calls[lane] += 1

    def lane_stats(self) -> list[dict]:
        return [
            {
                "lane": i,
                "backend": self.kind,
                "calls": self._calls[i] if i < len(self._calls) else 0,
                "respawns": 0,
                "ipc_bytes_out": 0,
                "ipc_bytes_in": 0,
            }
            for i in range(self._n_lanes)
        ]


class _LaneProcess:
    """Parent-side handle of one lane subprocess: pipe, counters, and the
    parent's view of what the child currently holds."""

    def __init__(self, lane: int, ctx) -> None:
        self.lane = lane
        self._ctx = ctx
        self.proc = None
        self.conn = None
        self.epoch = 0  # bumped per (re)spawn; resets the views below
        self.respawns = 0
        #: monotonic (start, end) of the most recent kill+respawn — the
        #: service turns this into a ``respawn`` span on the request
        #: whose failure triggered the reset
        self.last_reset: Optional[tuple[float, float]] = None
        self.calls = 0
        self.bytes_out = 0
        self.bytes_in = 0
        # what the current child has been told, maintained by the server:
        self.loaded: set[str] = set()  # program names installed
        self.synced_gen: dict[str, int] = {}  # program -> mirror generation
        self.open_sessions: set[tuple[str, str]] = set()
        # parent ends of pipes whose reader thread may still be blocked in
        # recv when the lane is reset; closed at pool stop, not mid-read
        self.retired_conns: list = []

    def spawn(self) -> None:
        from ..core.procpool import lane_worker_main

        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        self.proc = self._ctx.Process(
            target=lane_worker_main,
            args=(child_conn, self.lane),
            name=f"blog-lane-{self.lane}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()  # the child's copy is the only live one now
        self.conn = parent_conn
        self.epoch += 1
        self.loaded = set()
        self.synced_gen = {}
        self.open_sessions = set()

    def roundtrip(self, payload: bytes) -> bytes:
        """Blocking send+recv (runs on the pool's IO executor)."""
        conn = self.conn
        conn.send_bytes(payload)
        return conn.recv_bytes()

    def reset(self) -> None:
        """Kill the child (if any) and bring up a fresh one."""
        if self.proc is not None and self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=5.0)
        if self.conn is not None:
            # a timed-out reader thread may still be blocked inside
            # recv_bytes on this connection; closing it under the reader
            # races fd reuse, so retire it and close at pool stop (the
            # dead child's end is closed, so the reader gets EOF anyway)
            self.retired_conns.append(self.conn)
            self.conn = None
        self.respawns += 1
        self.spawn()

    def shutdown(self) -> None:
        if self.proc is None:
            return
        try:
            if self.proc.is_alive() and self.conn is not None:
                self.conn.send_bytes(pickle.dumps({"op": "shutdown"}))
                self.proc.join(timeout=1.0)
        # shutdown path: the pipe dying here means the child already
        # exited; the kill() below is the handling
        except (BrokenPipeError, OSError):  # blogcheck: ignore[BLG005]
            pass
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=5.0)
        for conn in self.retired_conns:
            try:
                conn.close()
            except OSError:  # blogcheck: ignore[BLG005] — retired conn, already dead
                pass
        self.retired_conns = []
        if self.conn is not None:
            self.conn.close()
            self.conn = None
        self.proc = None

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None


class ProcessLaneBackend(LaneBackend):
    """One warm, long-lived subprocess per lane, spoken to over a pipe."""

    kind = "process"

    def __init__(self, mp_context: Optional[str] = None) -> None:
        if mp_context is None:
            mp_context = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(mp_context)
        self.mp_context = mp_context
        self.lanes: list[_LaneProcess] = []
        self._io: Optional[ThreadPoolExecutor] = None
        #: the reset hook fires before the triggering exception
        #: propagates; the service drops the lane's router sessions
        #: there so a lost child is never merged
        self.on_lane_reset = None

    async def start(self, n_lanes: int) -> None:
        self._io = ThreadPoolExecutor(
            max_workers=n_lanes, thread_name_prefix="blog-lane-io"
        )
        self.lanes = [_LaneProcess(i, self._ctx) for i in range(n_lanes)]
        for lp in self.lanes:
            lp.spawn()

    async def stop(self) -> None:
        for lp in self.lanes:
            lp.shutdown()
        self.lanes = []
        if self._io is not None:
            self._io.shutdown(wait=False, cancel_futures=True)
            self._io = None

    def _reset(self, lane: int) -> None:
        lp = self.lanes[lane]
        t0 = time.monotonic()
        lp.reset()
        lp.last_reset = (t0, time.monotonic())
        if self.on_lane_reset is not None:
            self.on_lane_reset(lane)

    async def call(
        self, lane: int, msg: dict, timeout: Optional[float]
    ) -> dict:
        """One request/response roundtrip with the lane's child.

        * deadline missed → the child is killed and respawned (the lane
          must come back healthy; a hung child cannot be un-hung), then
          :class:`QueryTimeout`;
        * pipe breaks (child died) → respawn, then :class:`WorkerDied`
          so the caller can replay exactly once.
        """
        lp = self.lanes[lane]
        payload = pickle.dumps(msg)
        loop = asyncio.get_running_loop()
        try:
            raw = await asyncio.wait_for(
                loop.run_in_executor(self._io, lp.roundtrip, payload), timeout
            )
        except asyncio.TimeoutError:
            self._reset(lane)
            raise QueryTimeout(
                f"lane {lane} request exceeded its {timeout:g}s deadline "
                "(worker respawned)"
            ) from None
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
            self._reset(lane)
            raise WorkerDied(
                f"lane {lane} subprocess died mid-request: {type(exc).__name__}"
            ) from None
        lp.calls += 1
        lp.bytes_out += len(payload)
        lp.bytes_in += len(raw)
        reply = pickle.loads(raw)
        if not reply.get("ok", False):
            raise RuntimeError(reply.get("error", "lane worker error"))
        return reply

    def lane_stats(self) -> list[dict]:
        return [
            {
                "lane": lp.lane,
                "backend": self.kind,
                "calls": lp.calls,
                "respawns": lp.respawns,
                "ipc_bytes_out": lp.bytes_out,
                "ipc_bytes_in": lp.bytes_in,
                "pid": lp.pid,
            }
            for lp in self.lanes
        ]


# -- the pool ---------------------------------------------------------------


class WorkerPool:
    """``n_lanes`` serial queues over a pluggable lane backend."""

    def __init__(
        self,
        n_lanes: int,
        backend: str = "thread",
        mp_context: Optional[str] = None,
    ):
        if n_lanes < 1:
            raise ValueError("need at least one lane")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, not {backend!r}")
        self.n_lanes = int(n_lanes)
        self.backend_name = backend
        if backend == "process":
            self.backend: LaneBackend = ProcessLaneBackend(mp_context)
        else:
            self.backend = ThreadLaneBackend()
        self._queues: list[asyncio.Queue] = []
        self._tasks: list[asyncio.Task] = []
        self.started = False

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        if self.started:
            return
        await self.backend.start(self.n_lanes)
        self._queues = [asyncio.Queue() for _ in range(self.n_lanes)]
        self._tasks = [
            asyncio.create_task(self._lane_main(q), name=f"blog-lane-{i}")
            for i, q in enumerate(self._queues)
        ]
        self.started = True

    async def stop(self) -> None:
        if not self.started:
            return
        for q in self._queues:
            q.put_nowait(None)  # sentinel: drain then exit
        await asyncio.gather(*self._tasks, return_exceptions=True)
        await self.backend.stop()
        self._tasks = []
        self._queues = []
        self.started = False

    # -- submission --------------------------------------------------------
    def submit(self, lane: int, run: Callable[[Job], Awaitable[Any]]) -> Job:
        """Enqueue work on a lane; await ``job.future`` for the result."""
        if not self.started:
            raise RuntimeError("worker pool is not running; call start()")
        job = Job(run=run, future=asyncio.get_running_loop().create_future())
        self._queues[lane].put_nowait(job)
        return job

    def depth(self, lane: int) -> int:
        return self._queues[lane].qsize() if self.started else 0

    def pending_jobs(self) -> int:
        """Jobs enqueued but not yet resolved (drain watches this)."""
        return sum(q.qsize() for q in self._queues) if self.started else 0

    def cancel_queued(self) -> int:
        """Fail every job still *waiting* in a lane queue (in-flight jobs
        are untouched).  The drain deadline uses this: work that never
        started is refused rather than run past the deadline."""
        cancelled = 0
        for q in self._queues:
            survivors: list = []
            # qsize is exact here: queues are touched from the loop thread only
            while q.qsize():
                job = q.get_nowait()
                q.task_done()
                if job is None:  # keep the stop() sentinel in place
                    survivors.append(job)
                    continue
                if not job.future.done():
                    job.future.set_exception(
                        QueryTimeout("service draining: queued work cancelled")
                    )
                    cancelled += 1
            for job in survivors:
                q.put_nowait(job)
        return cancelled

    def lane_stats(self) -> list[dict]:
        return self.backend.lane_stats()

    # -- thread-backend execution ------------------------------------------
    async def run_sync(
        self,
        job: Job,
        fn: Callable[[], Any],
        timeout: Optional[float],
        lane: Optional[int] = None,
        trace=None,
    ) -> Any:
        """Run ``fn`` on the thread executor with a deadline and one retry
        on :class:`WorkerDied`; meant to be called from a job's ``run``.
        With a trace attached, the retry attempt is wrapped in a
        ``replay`` span (mirroring the process backend's replay path)."""
        backend = self.backend
        assert isinstance(backend, ThreadLaneBackend) and backend.executor is not None
        loop = asyncio.get_running_loop()
        attempts = 0
        while True:
            attempts += 1
            span_cm = (
                trace.span("replay", lane=lane)
                if trace is not None and attempts > 1
                else contextlib.nullcontext()
            )
            try:
                with span_cm:
                    if lane is not None:
                        backend.count_call(lane)
                    return await asyncio.wait_for(
                        loop.run_in_executor(backend.executor, fn), timeout
                    )
            except asyncio.TimeoutError:
                raise QueryTimeout(
                    f"query exceeded its {timeout:g}s deadline"
                ) from None
            except WorkerDied:
                if attempts > 1:
                    raise
                job.retries += 1

    # -- process-backend execution -----------------------------------------
    async def remote_call(
        self, lane: int, msg: dict, timeout: Optional[float]
    ) -> dict:
        """One pickled request/response with a process lane's child."""
        backend = self.backend
        assert isinstance(backend, ProcessLaneBackend)
        return await backend.call(lane, msg, timeout)

    def lane_process(self, lane: int) -> _LaneProcess:
        backend = self.backend
        assert isinstance(backend, ProcessLaneBackend)
        return backend.lanes[lane]

    def lane_pid(self, lane: int) -> Optional[int]:
        """PID of a process lane's child (None for the thread backend)."""
        if isinstance(self.backend, ProcessLaneBackend):
            return self.backend.lanes[lane].pid
        return None

    # -- lane loop ---------------------------------------------------------
    async def _lane_main(self, queue: asyncio.Queue) -> None:
        while True:
            job = await queue.get()
            if job is None:
                queue.task_done()
                return
            job.started_at = time.monotonic()
            try:
                result = await job.run(job)
            except Exception as exc:  # noqa: BLE001 — delivered to the caller
                if not job.future.done():
                    job.future.set_exception(exc)
            else:
                if not job.future.done():
                    job.future.set_result(result)
            finally:
                queue.task_done()
