"""The B-LOG query service: a concurrent front-end over the engine.

This is the serving layer the ROADMAP's north star asks for: many
clients, one installation.  One :class:`BLogService` holds a registry
of named programs, each with its own global weight store, and serves
:class:`QueryRequest`\\ s two ways:

* **in-process** — ``await service.submit(request)``;
* **over TCP** — one JSON object per line (``serve_tcp``), the same
  requests and responses serialized.

Concurrency contract (who touches what, from where):

* The **event loop thread** is the only mutator of global weight
  stores: sessions open (copy global → local) and merge (local →
  global) there, serialized per lane.
* **Worker threads** (``backend="thread"``) execute queries and touch
  only the session-local store of the session they were routed for;
  the router's lane affinity guarantees at most one in-flight query
  per session.
* **Lane subprocesses** (``backend="process"``) hold their sessions'
  engines and local stores outright; the loop ships them weight-store
  *deltas* on session open and merges the touched-keys delta they
  return at close.  A dead or hung child is killed, respawned warm,
  and the in-flight query replayed exactly once against a freshly
  opened session; every other session that lived in the dead child is
  abandoned, never merged.
* The answer cache and stats are loop-thread-only.

Request lifecycle: admission (bounded pending, explicit
:class:`~repro.service.admission.Overloaded`) → cache lookup
(generation-guarded) → route to the session's lane → execute with
deadline and one retry on worker death → record trace, fill cache.
A ``machine``-engine request degrades to the sequential ``blog`` engine
when the service is loaded past ``degrade_pending`` — the simulator is
the expensive engine, and under pressure a correct answer now beats a
cycle-accurate answer later.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional, Union

from ..core.config import BLogConfig
from ..core.procpool import run_engine_query
from ..logic.parser import ParseError, parse_query
from ..logic.program import Program
from ..logic.terms import Term
from ..machine.blog_machine import MachineConfig
from ..weights.persist import store_delta
from ..weights.session import MergeReport
from ..weights.store import WeightStore
from ..weights.wal import DurableStore
from .admission import AdmissionController, Overloaded
from .cache import AnswerCache, cache_key, canonical_query, slot_names
from .lifecycle import LifecycleState, NotServing, ServiceLifecycle
from .router import SessionRouter, SessionState
from .stats import ServiceStats, TraceEvent
from .telemetry import Telemetry, Trace
from .workers import Job, QueryTimeout, WorkerDied, WorkerPool

__all__ = ["QueryRequest", "QueryResponse", "ProgramEntry", "BLogService"]

ENGINES = ("blog", "machine", "procpool")


@dataclass
class QueryRequest:
    """One query: which program, what goals, whose session, which engine."""

    program: str
    query: str
    session: str = "default"
    engine: str = "blog"
    max_solutions: Optional[int] = None
    timeout: Optional[float] = None  # seconds; service default when None
    cache: bool = True  # False: always execute (and don't fill the cache)
    request_id: Optional[str] = None

    @classmethod
    def from_dict(cls, d: dict) -> "QueryRequest":
        return cls(
            program=d.get("program", "default"),
            query=d["query"],
            session=str(d.get("session", "default")),
            engine=d.get("engine", "blog"),
            max_solutions=d.get("max_solutions"),
            timeout=d.get("timeout"),
            cache=bool(d.get("cache", True)),
            request_id=d.get("id"),
        )


@dataclass
class QueryResponse:
    """What came back, plus where the request's time went."""

    request_id: str
    ok: bool
    answers: list[dict[str, str]] = field(default_factory=list)
    error: Optional[str] = None
    cached: bool = False
    engine: str = "blog"
    degraded: bool = False
    retries: int = 0
    expansions: Optional[int] = None
    queue_wait_ms: float = 0.0
    engine_ms: float = 0.0

    def to_dict(self) -> dict:
        return {"id": self.request_id, **{
            k: v for k, v in asdict(self).items() if k != "request_id"
        }}


@dataclass
class ProgramEntry:
    """One served knowledge base: program + its global weight store."""

    name: str
    program: Program
    global_store: WeightStore
    config: BLogConfig
    machine_config: MachineConfig


class BLogService:
    """A concurrent B-LOG query service over named programs.

    Parameters
    ----------
    programs:
        ``{name: Program | source text}`` — the knowledge bases served.
    config / machine:
        Engine constants and machine topology shared by all programs.
    n_workers:
        Lane count = worker-thread count = max truly concurrent queries.
    max_pending:
        Admission bound on queued + executing queries (backpressure).
    default_timeout:
        Per-query deadline (seconds) when the request names none.
    degrade_pending:
        Pending-query level above which ``machine`` requests fall back
        to the sequential engine; defaults to ``2 * n_workers``.
    processes:
        Process count for the ``procpool`` engine's OR split.
    backend:
        Lane execution backend: ``"thread"`` (shared GIL-bound
        executor, zero serialization) or ``"process"`` (one warm
        subprocess per lane, genuinely parallel engine work; E17).
    mp_context:
        multiprocessing start method for process lanes (default: fork
        where available, else spawn).
    slow_query_ms:
        When set, any request whose wall time crosses the threshold has
        its full span tree dumped to the slow-query sink (stderr by
        default; see :class:`~repro.service.telemetry.Telemetry`).
    trace_log:
        When set, every finished request's spans are appended to this
        JSONL file (one object per span, size-rotated).
    data_dir:
        When set, the global weight stores are **durable**: every
        acknowledged session merge is WAL-journaled (fsynced before the
        ack) under ``data_dir/<program>/``, boot replays snapshot +
        journal, and ``stop``/drain writes a final checkpoint.  None
        (the default) keeps the historical in-memory behavior.
    checkpoint_interval:
        Seconds between periodic snapshots compacting the journal
        (only meaningful with ``data_dir``); None disables the periodic
        task — checkpoints then happen only at stop/drain.
    drain_timeout:
        Deadline (seconds) for in-flight work during a graceful drain;
        queued work past it is cancelled, never run late.
    """

    def __init__(
        self,
        programs: dict[str, Union[Program, str]],
        config: Optional[BLogConfig] = None,
        machine: Optional[MachineConfig] = None,
        n_workers: int = 4,
        max_pending: int = 64,
        cache_capacity: int = 1024,
        default_timeout: float = 30.0,
        degrade_pending: Optional[int] = None,
        processes: int = 2,
        backend: str = "thread",
        mp_context: Optional[str] = None,
        slow_query_ms: Optional[float] = None,
        trace_log: Optional[str] = None,
        trace_log_max_bytes: int = 10_000_000,
        data_dir: Optional[Union[str, Path]] = None,
        checkpoint_interval: Optional[float] = None,
        drain_timeout: float = 10.0,
    ):
        self.config = config if config is not None else BLogConfig()
        self.machine_config = (
            machine if machine is not None else MachineConfig(n_processors=4)
        )
        self.programs: dict[str, ProgramEntry] = {}
        for name, prog in programs.items():
            self.add_program(name, prog)
        self.n_workers = int(n_workers)
        self.default_timeout = float(default_timeout)
        self.degrade_pending = (
            int(degrade_pending) if degrade_pending is not None else 2 * self.n_workers
        )
        self.processes = int(processes)
        self.backend = backend
        self.telemetry = Telemetry(
            slow_query_s=(slow_query_ms / 1000.0) if slow_query_ms else None,
        )
        if trace_log:
            self.telemetry.attach_trace_log(
                trace_log, max_bytes=trace_log_max_bytes
            )
        registry = self.telemetry.registry
        self.router = SessionRouter(self.n_workers, registry=registry)
        self.pool = WorkerPool(self.n_workers, backend=backend, mp_context=mp_context)
        self.lane_resets = 0
        self.sessions_abandoned = 0
        if backend == "process":
            self.pool.backend.on_lane_reset = self._on_lane_reset
        self.admission = AdmissionController(max_pending, registry=registry)
        self.cache = AnswerCache(cache_capacity, registry=registry)
        self.stats_agg = ServiceStats(registry=registry)
        self._req_counter = 0
        self._tcp_server: Optional[asyncio.base_events.Server] = None
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.checkpoint_interval = (
            float(checkpoint_interval) if checkpoint_interval else None
        )
        self.lifecycle = ServiceLifecycle(self, drain_timeout=drain_timeout)
        self._durable: dict[str, DurableStore] = {}
        #: single-threaded on purpose: WAL appends must hit the journal in
        #: the order their merges hit the store (the loop thread computes
        #: deltas in merge order; a FIFO one-worker executor preserves it)
        self._wal_io: Optional[ThreadPoolExecutor] = None
        self._checkpoint_task: Optional[asyncio.Task] = None

    # -- registry ----------------------------------------------------------
    def add_program(self, name: str, program: Union[Program, str]) -> ProgramEntry:
        if isinstance(program, str):
            program = Program.from_source(program)
        entry = ProgramEntry(
            name=name,
            program=program,
            global_store=WeightStore(n=self.config.n, a=self.config.a),
            config=self.config,
            machine_config=self.machine_config,
        )
        self.programs[name] = entry
        return entry

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        already = self.pool.started
        await self.pool.start()
        if self.data_dir is not None and not self._durable:
            self.lifecycle.transition(LifecycleState.RECOVERING)
            self._wal_io = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="blog-wal"
            )
            self._recover()
        self.lifecycle.transition(LifecycleState.SERVING)
        if (
            not already
            and self._durable
            and self.checkpoint_interval is not None
            and self._checkpoint_task is None
        ):
            self._checkpoint_task = asyncio.create_task(
                self._checkpoint_loop(), name="blog-checkpoint"
            )

    async def close_ingress(self) -> None:
        """Stop accepting new TCP connections (drain step 1; established
        connections keep reading replies for work already admitted)."""
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None

    async def stop(self) -> None:
        if self._checkpoint_task is not None:
            self._checkpoint_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._checkpoint_task
            self._checkpoint_task = None
        await self.close_ingress()
        await self.pool.stop()
        if self._durable:
            await self.checkpoint()  # the final checkpoint: nothing is lost
            for ds in self._durable.values():
                ds.close()
            self._durable = {}
        if self._wal_io is not None:
            self._wal_io.shutdown(wait=True)
            self._wal_io = None
        self.telemetry.close()
        self.lifecycle.transition(LifecycleState.STOPPED)

    # -- durability (recovery, journaling, checkpoints) ---------------------
    def _recover(self) -> None:
        """Rebuild every program's global store from its data dir.

        Synchronous on the event-loop thread, by design: recovery runs
        before the first request is admitted (``ready`` is false in
        RECOVERING), and the stores must not be observable half-replayed.
        Emits one ``recovery`` root trace with a per-program child span.
        """
        assert self.data_dir is not None
        trace = self.telemetry.tracer.start_trace(
            self._next_id(), name="recovery", data_dir=str(self.data_dir)
        )
        try:
            replayed_total = 0
            for name in sorted(self.programs):
                entry = self.programs[name]
                with trace.span("recover-program", program=name) as span:
                    ds = DurableStore(
                        self.data_dir / name, n=self.config.n, a=self.config.a
                    )
                    store, info = ds.recover()
                    entry.global_store = store
                    self._durable[name] = ds
                    span.set("snapshot_loaded", info.snapshot_loaded)
                    span.set("records_replayed", info.records_replayed)
                    span.set("records_skipped", info.records_skipped)
                    span.set("torn_tail", info.torn_tail)
                    span.set("generation", store.generation)
                    replayed_total += info.records_replayed
            if replayed_total:
                self.telemetry.registry.counter(
                    "blog_recovery_records_replayed_total"
                ).inc(replayed_total)
        finally:
            trace.end()

    async def _journal_merge(
        self, entry: ProgramEntry, session: str, pre_generation: int, trace: Trace
    ) -> None:
        """WAL-append what a just-completed merge changed, fsynced before
        the caller acknowledges the merge.  The delta is computed *here*,
        on the loop thread with no await since the merge applied (so it
        is exactly the store change being acknowledged); only the disk
        write runs on the WAL executor.  A no-op merge (generation
        unchanged) journals nothing.
        """
        ds = self._durable.get(entry.name)
        if ds is None:
            return
        store = entry.global_store
        if store.generation == pre_generation:
            return
        delta = store_delta(store, since=pre_generation)
        generation = store.generation
        loop = asyncio.get_running_loop()
        with trace.span("wal-append", program=entry.name) as span:
            await loop.run_in_executor(
                self._wal_io, ds.log_merge, session, generation, delta
            )
            span.set("seq", ds.wal.seq)
        registry = self.telemetry.registry
        registry.counter("blog_wal_appends_total").inc()
        registry.histogram("blog_wal_fsync_seconds").observe(ds.wal.last_fsync_s)

    async def checkpoint(self) -> None:
        """Snapshot every durable store and compact its journal.

        The payload is prepared on the loop thread (consistent store +
        seq view); only the atomic file write runs on the WAL executor,
        serialized behind any in-flight appends.
        """
        if not self._durable:
            return
        loop = asyncio.get_running_loop()
        t0 = time.monotonic()
        try:
            for name, ds in sorted(self._durable.items()):
                entry = self.programs[name]
                payload = ds.prepare_checkpoint(entry.global_store)
                await loop.run_in_executor(self._wal_io, ds.write_checkpoint, payload)
        finally:
            self.telemetry.registry.histogram("blog_checkpoint_seconds").observe(
                time.monotonic() - t0
            )

    async def _checkpoint_loop(self) -> None:
        while True:
            await asyncio.sleep(self.checkpoint_interval)
            try:
                await self.checkpoint()
            except Exception:  # noqa: BLE001 — a failed snapshot must not kill serving
                self.telemetry.registry.counter("blog_checkpoint_errors_total").inc()

    # -- the in-process API ------------------------------------------------
    async def submit(self, request: QueryRequest) -> QueryResponse:
        """Serve one request; raises :class:`Overloaded` when at the
        admission bound (the TCP layer turns that into an error reply).

        Every request — served, failed, or rejected — owns exactly one
        root span; the phases (admission, cache, queue, lane-dispatch,
        engine, and on the process backend respawn/replay) hang off it.
        """
        rid = request.request_id or self._next_id()
        trace = self.telemetry.tracer.start_trace(
            rid,
            name="request",
            program=request.program,
            session=request.session,
            engine=request.engine,
        )
        try:
            if not self.lifecycle.accepting:
                trace.end(ok=False, outcome="not-serving")
                self.stats_agg.record_rejection(
                    TraceEvent(
                        request_id=rid,
                        program=request.program,
                        session=request.session,
                        engine_requested=request.engine,
                        engine_used="rejected",
                        ok=False,
                        total_s=trace.root.duration_s,
                        error="not-serving",
                    )
                )
                raise NotServing(
                    f"service is {self.lifecycle.state.value}, not accepting queries"
                )
            try:
                with trace.span("admission"):
                    self.admission.acquire()
            except Overloaded:
                trace.end(ok=False, outcome="rejected")
                self.stats_agg.record_rejection(
                    TraceEvent(
                        request_id=rid,
                        program=request.program,
                        session=request.session,
                        engine_requested=request.engine,
                        engine_used="rejected",
                        ok=False,
                        queue_wait_s=trace.root.duration_s,
                        total_s=trace.root.duration_s,
                        error="overloaded",
                    )
                )
                raise
            try:
                return await self._admitted(request, rid, trace)
            finally:
                self.admission.release()
        finally:
            if not trace.ended:  # crash safety: a root span never leaks open
                trace.end(ok=False, outcome="internal-error")

    async def _admitted(
        self, request: QueryRequest, rid: str, trace: Trace
    ) -> QueryResponse:
        entry = self.programs.get(request.program)
        if entry is None:
            return self._finish(
                request, rid, error=f"unknown program {request.program!r}",
                trace=trace,
            )
        if request.engine not in ENGINES:
            return self._finish(
                request, rid, error=f"unknown engine {request.engine!r}", trace=trace
            )
        try:
            goals = self._parse(request.query)
        except ParseError as exc:
            return self._finish(
                request, rid, error=f"syntax error: {exc}", trace=trace
            )

        # Cache lookup under the program's current weight generation: a
        # session merge bumps the generation and silently invalidates
        # every answer computed under the old weights.  Entries hold
        # answers keyed by canonical variable slots, re-keyed here to
        # whatever names this asker used (gf(sam, G) can serve
        # gf(sam, Who)).
        generation = entry.global_store.generation
        key = cache_key(entry.name, goals, request.max_solutions)
        slots = slot_names(canonical_query(goals)[1])
        if request.cache:
            with trace.span("cache") as cache_span:
                canon = self.cache.get(key, generation)
                cache_span.set("hit", canon is not None)
            if canon is not None:
                by_slot = {slot: name for name, slot in slots.items()}
                answers = [
                    {by_slot[s]: v for s, v in a.items() if s in by_slot}
                    for a in canon
                ]
                return self._finish(
                    request, rid, answers=answers, cache_hit=True,
                    engine_used="cache", trace=trace,
                )

        engine_used = request.engine
        degraded = False
        if engine_used == "machine" and self.admission.pending > self.degrade_pending:
            engine_used = "blog"
            degraded = True

        timeout = request.timeout if request.timeout is not None else self.default_timeout
        lane = self.router.lane_for(request.session)

        if self.backend == "process":
            # Session state lives in the lane subprocess; everything —
            # opening included — happens inside the job so a replay
            # after a worker death re-opens against the fresh child.
            async def run(job: Job):
                trace.span_at(
                    "queue",
                    job.enqueued_at,
                    job.started_at or job.enqueued_at,
                    lane=lane,
                )
                with trace.span("lane-dispatch", lane=lane, backend="process"):
                    attempts = 0
                    while True:
                        attempts += 1
                        replay_cm = (
                            trace.span("replay", lane=lane)
                            if attempts > 1
                            else contextlib.nullcontext()
                        )
                        try:
                            with replay_cm:
                                await self._remote_prepare(
                                    lane, entry, request.session, trace=trace
                                )
                                with trace.span(
                                    "engine", engine=engine_used, backend="process"
                                ) as engine_span:
                                    reply = await self.pool.remote_call(
                                        lane,
                                        {
                                            "op": "query",
                                            "name": entry.name,
                                            "session": request.session,
                                            "engine": engine_used,
                                            "query": request.query,
                                            "max_solutions": request.max_solutions,
                                        },
                                        timeout,
                                    )
                                    for k, v in (
                                        reply.get("engine_attrs") or {}
                                    ).items():
                                        engine_span.set(k, v)
                                return reply["answers"], reply.get("expansions")
                        except WorkerDied:
                            self._record_respawn(trace, lane)
                            if attempts > 1:
                                raise
                            job.retries += 1
                        except QueryTimeout:
                            self._record_respawn(trace, lane)
                            raise

        else:
            state = self.router.open(
                entry.name, request.session, entry.program,
                entry.global_store, self.config,
            )
            state.queries += 1

            async def run(job: Job):  # type: ignore[no-redef]
                trace.span_at(
                    "queue",
                    job.enqueued_at,
                    job.started_at or job.enqueued_at,
                    lane=lane,
                )
                with trace.span("lane-dispatch", lane=lane, backend="thread"):
                    attrs: dict = {}
                    with trace.span(
                        "engine", engine=engine_used, backend="thread"
                    ) as engine_span:
                        result = await self.pool.run_sync(
                            job,
                            lambda: self._execute(
                                engine_used, state, entry, goals, request, attrs
                            ),
                            timeout,
                            lane=lane,
                            trace=trace,
                        )
                        for k, v in attrs.items():
                            engine_span.set(k, v)
                    return result

        job = self.pool.submit(lane, run)
        try:
            answers, expansions = await job.future
        except QueryTimeout as exc:
            # The worker thread cannot be killed and may still be
            # mutating this session's local store — abandon the session
            # so the tainted store is never merged or queried again.
            self.router.abandon(entry.name, request.session)
            return self._finish(
                request, rid, error=str(exc), engine_used=engine_used,
                degraded=degraded, job=job, trace=trace,
            )
        except WorkerDied as exc:
            return self._finish(
                request, rid, error=f"worker died twice: {exc}",
                engine_used=engine_used, degraded=degraded, job=job, trace=trace,
            )
        except Exception as exc:  # engine errors must not kill the service
            return self._finish(
                request, rid, error=f"{type(exc).__name__}: {exc}",
                engine_used=engine_used, degraded=degraded, job=job, trace=trace,
            )
        if request.cache:
            with trace.span("cache", fill=True):
                self.cache.put(
                    key,
                    generation,
                    [
                        {slots[k]: v for k, v in a.items() if k in slots}
                        for a in answers
                    ],
                )
        return self._finish(
            request, rid, answers=answers, engine_used=engine_used,
            degraded=degraded, job=job, expansions=expansions, trace=trace,
        )

    # -- process-lane plumbing (event-loop only) ---------------------------
    def _on_lane_reset(self, lane: int) -> None:
        """A lane subprocess was killed/respawned: its child-side session
        state is gone, so the sessions routed there are abandoned —
        dropped without merging (their learning died with the child)."""
        self.lane_resets += 1
        self.telemetry.registry.counter("blog_lane_resets_total").inc()
        self.sessions_abandoned += self.router.drop_lane(lane)

    def _record_respawn(self, trace: Trace, lane: int) -> None:
        """Attach a ``respawn`` span for the kill+respawn the backend just
        performed (its interval was stamped inside the reset)."""
        reset = getattr(self.pool.lane_process(lane), "last_reset", None)
        now = self.telemetry.tracer.clock()
        start, end = reset if reset is not None else (now, now)
        trace.span_at("respawn", start, end, lane=lane)

    async def _remote_prepare(
        self,
        lane: int,
        entry: ProgramEntry,
        session: str,
        trace: Optional[Trace] = None,
    ) -> None:
        """Bring a lane child up to date for one session's query: install
        the program (once per child epoch), ship the global-store delta
        its mirror is missing, and open the session child-side.  All
        three are idempotent per child and skipped when already done —
        the steady-state cost is the delta check, an integer compare.

        Runs inside the session's lane job, so it cannot interleave with
        other work on the same lane.
        """
        span_cm = (
            trace.span("prepare", lane=lane)
            if trace is not None
            else contextlib.nullcontext()
        )
        with span_cm as prepare_span:
            lp = self.pool.lane_process(lane)
            if entry.name not in lp.loaded:
                await self.pool.remote_call(
                    lane,
                    {
                        "op": "load_program",
                        "name": entry.name,
                        "program": entry.program,
                        "config": entry.config,
                        "machine_config": entry.machine_config,
                    },
                    self.default_timeout,
                )
                lp.loaded.add(entry.name)
                lp.synced_gen.pop(entry.name, None)
                if prepare_span is not None:
                    prepare_span.set("loaded_program", True)
            delta = self.router.store_sync(
                entry.global_store, lp.synced_gen.get(entry.name)
            )
            if delta is not None:
                await self.pool.remote_call(
                    lane,
                    {"op": "sync_store", "name": entry.name, "delta": delta},
                    self.default_timeout,
                )
                lp.synced_gen[entry.name] = entry.global_store.generation
                if prepare_span is not None:
                    prepare_span.set("synced_store", True)
            state = self.router.open_remote(entry.name, session)
            state.queries += 1
            if (entry.name, session) not in lp.open_sessions:
                await self.pool.remote_call(
                    lane,
                    {"op": "open_session", "name": entry.name, "session": session},
                    self.default_timeout,
                )
                lp.open_sessions.add((entry.name, session))
                if prepare_span is not None:
                    prepare_span.set("opened_session", True)

    async def end_session(
        self, program: str, session: str, conservative: bool = True
    ) -> Optional[MergeReport]:
        """Merge a session into the program's global store (bumping its
        generation) and drop the session state.

        The merge runs as a job on the session's own lane, so it
        serializes behind any in-flight query of that session; the merge
        body itself executes on the event loop (global stores are
        loop-thread-only).  For process lanes the lane child ships back
        the session's touched-keys delta and the merge applies it here;
        if the child died, the session is abandoned (None), never merged.
        """
        if self.router.get(program, session) is None:
            return None
        entry = self.programs.get(program)
        if entry is None:
            return None
        lane = self.router.lane_for(session)
        trace = self.telemetry.tracer.start_trace(
            self._next_id(), name="end_session", program=program, session=session
        )
        try:
            if self.backend == "process":

                async def merge(job: Job) -> Optional[MergeReport]:
                    lp = self.pool.lane_process(lane)
                    if (program, session) not in lp.open_sessions:
                        # parent knows the session but the child lost it
                        # (respawn since): abandoned, nothing to merge
                        self.router.close_remote(
                            program, session, None, entry.global_store
                        )
                        return None
                    try:
                        reply = await self.pool.remote_call(
                            lane,
                            {"op": "close_session", "name": program, "session": session},
                            self.default_timeout,
                        )
                        delta = reply.get("delta")
                    except WorkerDied:
                        # the child died holding the local store: the lane
                        # reset already dropped the router state — abandoned
                        return None
                    lp.open_sessions.discard((program, session))
                    return self.router.close_remote(
                        program,
                        session,
                        delta,
                        entry.global_store,
                        alpha=entry.config.alpha,
                        conservative=conservative,
                    )

            else:

                async def merge(job: Job) -> Optional[MergeReport]:  # type: ignore[no-redef]
                    return self.router.close(
                        program, session, conservative=conservative
                    )

            async def run(job: Job) -> Optional[MergeReport]:
                trace.span_at(
                    "queue",
                    job.enqueued_at,
                    job.started_at or job.enqueued_at,
                    lane=lane,
                )
                with trace.span("merge", lane=lane, backend=self.backend) as span:
                    pre_generation = entry.global_store.generation
                    report = await merge(job)
                    span.set("merged", report is not None)
                    if report is not None:
                        report.generation = entry.global_store.generation
                        # durable before acknowledged: the journal append
                        # (fsync included) completes before this job — and
                        # therefore the client's end_session reply — resolves
                        await self._journal_merge(
                            entry, session, pre_generation, trace
                        )
                    return report

            # submit() itself can raise (pool shutting down): keep it under
            # the same try/finally as the await, or the trace leaks open
            job = self.pool.submit(lane, run)
            return await job.future
        finally:
            trace.end()

    def stats(self) -> dict:
        """Operator-facing counters: latency, throughput, cache, admission,
        and per-lane backend health (respawns, IPC bytes)."""
        return {
            **self.stats_agg.summary(),
            "cache": self.cache.stats(),
            "pending": self.admission.pending,
            "peak_pending": self.admission.peak_pending,
            "admitted": self.admission.admitted,
            "sessions_open": len(self.router),
            "sessions_merged": self.router.sessions_merged,
            "sessions_abandoned": self.sessions_abandoned,
            "backend": self.backend,
            "lane_resets": self.lane_resets,
            "lanes": self.pool.lane_stats(),
            "programs": sorted(self.programs),
            "slow_queries": self.telemetry.slow_queries,
            "traces": {
                "started": self.telemetry.tracer.started,
                "finished": self.telemetry.tracer.completed,
            },
            "lifecycle": self.lifecycle.state.value,
            "durability": {
                name: ds.status() for name, ds in sorted(self._durable.items())
            },
        }

    def metrics_text(self) -> str:
        """The registry's text exposition (the ``metrics`` TCP verb)."""
        return self.telemetry.registry.expose()

    # -- execution (worker threads) ----------------------------------------
    def _execute(
        self,
        engine_used: str,
        state: SessionState,
        entry: ProgramEntry,
        goals: tuple[Term, ...],
        request: QueryRequest,
        attrs: Optional[dict] = None,
    ) -> tuple[list[dict[str, str]], Optional[int]]:
        """Run one query on the chosen engine.  Worker-thread code: may
        touch only the session-local store (``state.engine.store``).
        The same executor runs inside a lane subprocess for the process
        backend (:func:`~repro.core.procpool.run_engine_query`), which is
        what makes the two backends answer-identical.  ``attrs`` (a plain
        dict the loop thread reads only after the job resolves) receives
        the engine counters for the request's ``engine`` span."""
        return run_engine_query(
            engine_used,
            state.engine,
            entry.program,
            entry.config,
            entry.machine_config,
            goals,
            request.max_solutions,
            processes=self.processes,
            attrs=attrs,
        )

    # -- plumbing ----------------------------------------------------------
    def _parse(self, query: str) -> tuple[Term, ...]:
        return parse_query(query)

    def _next_id(self) -> str:
        self._req_counter += 1
        return f"q{self._req_counter}"

    def _finish(
        self,
        request: QueryRequest,
        rid: str,
        answers: Optional[list[dict[str, str]]] = None,
        error: Optional[str] = None,
        cache_hit: bool = False,
        engine_used: Optional[str] = None,
        degraded: bool = False,
        job: Optional[Job] = None,
        expansions: Optional[int] = None,
        trace: Optional[Trace] = None,
    ) -> QueryResponse:
        """Build the response, finish its root span, and record its trace
        event.

        Durations are populated on *every* exit path: with a trace, the
        wall time is measured root-span-start → now, so cache hits and
        early errors report real latency instead of zero; without a job
        (no lane work happened) the whole wall time counts as queue
        wait.  Engine time is the sum of the request's ``engine`` spans.
        """
        now = time.monotonic()
        ok = error is None
        if trace is not None:
            total_s = max(0.0, now - trace.root.start_s)
            engine_s = sum(
                s.duration_s for s in trace.find("engine") if s.end_s is not None
            )
            if job is not None:
                queue_wait = job.queue_wait_s
            else:
                queue_wait = max(0.0, total_s - engine_s)
        else:  # legacy path (no tracer): the pre-telemetry arithmetic
            queue_wait = job.queue_wait_s if job is not None else 0.0
            engine_s = 0.0
            if job is not None and job.started_at is not None:
                engine_s = now - job.started_at
            total_s = queue_wait + engine_s
        event = TraceEvent(
            request_id=rid,
            program=request.program,
            session=request.session,
            engine_requested=request.engine,
            engine_used=engine_used or request.engine,
            ok=ok,
            answers=len(answers or ()),
            cache_hit=cache_hit,
            degraded=degraded,
            retries=job.retries if job is not None else 0,
            queue_wait_s=queue_wait,
            engine_s=engine_s,
            total_s=total_s,
        )
        event.error = error
        if trace is not None:
            trace.end(
                ok=ok,
                answers=len(answers or ()),
                cache_hit=cache_hit,
                engine_used=engine_used or request.engine,
                degraded=degraded,
                retries=event.retries,
                **({"request_error": error} if error is not None else {}),
            )
        self.stats_agg.record(event)
        return QueryResponse(
            request_id=rid,
            ok=ok,
            answers=list(answers or ()),
            error=error,
            cached=cache_hit,
            engine=engine_used or request.engine,
            degraded=degraded,
            retries=event.retries,
            expansions=expansions,
            queue_wait_ms=queue_wait * 1000.0,
            engine_ms=engine_s * 1000.0,
        )

    # -- the TCP front-end -------------------------------------------------
    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 8750):
        """Start the line-JSON TCP endpoint; returns the asyncio server.

        Protocol: one JSON object per line.  ``{"op": "query", ...}``
        (or any object with a ``"query"`` key) runs a query;
        ``{"op": "end_session", "program": P, "session": S}`` merges a
        session (the reply's ``merged.generation`` is the store
        generation the merge produced — the durability layer's ack key);
        ``{"op": "stats"}`` reports counters; ``{"op": "metrics"}``
        returns the metrics text exposition; ``{"op": "health"}`` and
        ``{"op": "ready"}`` expose the lifecycle state (ready is false
        while recovering or draining).  Responses are one JSON object
        per line, always with an ``"ok"`` field.
        """
        await self.start()
        self._tcp_server = await asyncio.start_server(self._handle_client, host, port)
        return self._tcp_server

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                reply = await self._dispatch_line(line)
                writer.write((json.dumps(reply) + "\n").encode("utf-8"))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            # a client vanishing mid-reply is normal churn, but it must
            # stay visible on the dashboards (blogcheck BLG005)
            self.telemetry.registry.counter("blog_client_disconnects_total").inc()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            # already counted above; wait_closed only confirms the close
            except (ConnectionResetError, BrokenPipeError):  # blogcheck: ignore[BLG005]
                pass

    async def _dispatch_line(self, line: bytes) -> dict:
        try:
            msg = json.loads(line)
        except json.JSONDecodeError as exc:
            return {"ok": False, "error": f"bad json: {exc}"}
        if not isinstance(msg, dict):
            return {"ok": False, "error": "request must be a json object"}
        op = msg.get("op", "query" if "query" in msg else None)
        if op == "query":
            try:
                request = QueryRequest.from_dict(msg)
            except KeyError:
                return {"ok": False, "error": "missing 'query' field"}
            try:
                return (await self.submit(request)).to_dict()
            except Overloaded as exc:
                return {
                    "id": msg.get("id"),
                    "ok": False,
                    "overloaded": True,
                    "error": str(exc),
                }
            except NotServing as exc:
                return {
                    "id": msg.get("id"),
                    "ok": False,
                    "draining": True,
                    "error": str(exc),
                }
        if op == "end_session":
            report = await self.end_session(
                msg.get("program", "default"),
                str(msg.get("session", "default")),
                conservative=bool(msg.get("conservative", True)),
            )
            return {
                "ok": True,
                "merged": asdict(report) if report is not None else None,
            }
        if op == "stats":
            return {"ok": True, "stats": self.stats()}
        if op == "metrics":
            return {"ok": True, "metrics": self.metrics_text()}
        if op == "health":
            # truthful in every state: the process is alive and answering
            return {"ok": True, **self.lifecycle.describe()}
        if op == "ready":
            # the load-balancer probe: flips false in RECOVERING/DRAINING
            return {
                "ok": self.lifecycle.ready,
                "ready": self.lifecycle.ready,
                "state": self.lifecycle.state.value,
            }
        return {"ok": False, "error": f"unknown op {op!r}"}
