"""The answer cache: keyed by canonical query, guarded by weight
generations.

Cache entries are keyed by ``(program, canonical query, max_solutions)``
where the canonical form renames variables to a fixed sequence shared
across the conjunction — ``gf(sam, G)`` and ``gf(sam, Who)`` are the
same cache line.

Correctness rule: an entry is only served while the program's global
weight store is at the generation the entry was filled under.  An
end-of-session merge mutates the store and bumps
:attr:`~repro.weights.store.WeightStore.generation`, so every cached
answer computed under the old weights becomes unservable at once — no
deep store comparison, one integer compare per lookup (the bounds that
ordered those answers are stale even though B-LOG's answer *sets* are
complete under any weights).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from ..logic.terms import Struct, Term, Var

if TYPE_CHECKING:
    from .telemetry import MetricsRegistry

__all__ = [
    "canonical_query",
    "canonical_query_text",
    "cache_key",
    "slot_names",
    "AnswerCache",
    "CacheEntry",
]


def canonical_query(goals: Sequence[Term]) -> tuple[str, tuple[str, ...]]:
    """Canonicalize a conjunction: ``(text, original variable names)``.

    Variables are renamed ``_C1, _C2, ...`` in order of first
    appearance — one mapping shared across all goals, so variable
    sharing between goals is preserved.  The returned names are the
    query's own variable names in slot order (``"_"`` for anonymous
    ones); they let the serving layer store cached answers under
    canonical slots and re-key them to whatever names the *next* asker
    used.
    """
    mapping: dict[int, Var] = {}
    names: list[str] = []

    def go(t: Term) -> Term:
        if isinstance(t, Var):
            nv = mapping.get(t.id)
            if nv is None:
                nv = Var(f"_C{len(names) + 1}", vid=-(len(names) + 1))
                mapping[t.id] = nv
                names.append(t.name)
            return nv
        if isinstance(t, Struct):
            return Struct(t.functor, tuple(go(a) for a in t.args))
        return t

    text = ", ".join(str(go(g)) for g in goals)
    return text, tuple(names)


def canonical_query_text(goals: Sequence[Term]) -> str:
    """Just the canonical conjunction text (variable names erased)."""
    return canonical_query(goals)[0]


def slot_names(names: Sequence[str]) -> dict[str, str]:
    """``{original name: canonical slot}`` for the *named* variables."""
    return {n: f"_C{i + 1}" for i, n in enumerate(names) if n != "_"}


def cache_key(
    program: str, goals: Sequence[Term], max_solutions: Optional[int]
) -> tuple:
    """The cache line identity of a query.

    Besides program and canonical text, the key carries the anonymity
    mask of the variable slots: ``gf(sam, G)`` and ``gf(sam, _)`` have
    the same canonical text but report different bindings, so they must
    not share a line.
    """
    text, names = canonical_query(goals)
    mask = tuple(n == "_" for n in names)
    return (program, text, mask, max_solutions)


@dataclass
class CacheEntry:
    generation: int  # global-store generation the answers were computed under
    answers: list[dict[str, str]]


class AnswerCache:
    """LRU answer cache with generation-checked lookups."""

    def __init__(
        self, capacity: int = 1024, registry: Optional["MetricsRegistry"] = None
    ):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[tuple, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stale = 0  # misses caused specifically by a generation bump
        self._m_hits = registry.counter("blog_cache_hits_total") if registry else None
        self._m_misses = (
            registry.counter("blog_cache_misses_total") if registry else None
        )
        self._m_stale = registry.counter("blog_cache_stale_total") if registry else None
        self._m_entries = registry.gauge("blog_cache_entries") if registry else None

    def get(self, key: tuple, generation: int) -> Optional[list[dict[str, str]]]:
        """The cached answers, or None; stale entries are evicted."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            if self._m_misses is not None:
                self._m_misses.inc()
            return None
        if entry.generation != generation:
            del self._entries[key]
            self.stale += 1
            self.misses += 1
            if self._m_misses is not None:
                self._m_misses.inc()
            if self._m_stale is not None:
                self._m_stale.inc()
            if self._m_entries is not None:
                self._m_entries.set(len(self._entries))
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if self._m_hits is not None:
            self._m_hits.inc()
        return entry.answers

    def put(self, key: tuple, generation: int, answers: list[dict[str, str]]) -> None:
        self._entries[key] = CacheEntry(generation, list(answers))
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        if self._m_entries is not None:
            self._m_entries.set(len(self._entries))

    def invalidate_program(self, program: str) -> int:
        """Drop every entry of one program; returns how many were dropped."""
        doomed = [k for k in self._entries if k[0] == program]
        for k in doomed:
            del self._entries[k]
        return len(doomed)

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        lookups = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }
