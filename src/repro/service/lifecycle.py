"""Service lifecycle: boot states, signal handling, and graceful drain.

A long-running B-LOG service moves through a small state machine::

    STARTING ──► RECOVERING ──► SERVING ──► DRAINING ──► STOPPED
                 (data dir          ▲  (SIGTERM/SIGINT
                  replay)           │   or drain())
                                    └─ stateless boot skips RECOVERING

``ready`` is True only in SERVING — the ``ready`` TCP verb flips false
during recovery and the moment a drain begins, which is what lets a load
balancer pull the instance before its queue is torn down.  ``health``
stays truthful in every state (the process is alive and answering).

Graceful drain (what SIGTERM means here):

1. **stop accepting** — the TCP listener closes and ``submit`` starts
   refusing with :class:`NotServing`; established connections may still
   read replies for work already admitted.
2. **finish in-flight work** — admitted queries run to completion until
   the drain deadline; work still *queued* (never started) past the
   deadline is failed with a drain error rather than run late.
3. **merge surviving sessions** — every open session is end_session'd
   (its learning is the whole point of the service; §5's merge is the
   commit point), each merge WAL-journaled as usual.
4. **final checkpoint + stop** — the durable stores snapshot, lanes
   close, and the process can exit 0.

Signal wiring uses ``loop.add_signal_handler`` so the handler runs on
the event loop (no async-signal-safety games); platforms without it
(Windows event loops) simply don't get signal-triggered drain — the
``drain()`` coroutine itself works everywhere.
"""

from __future__ import annotations

import asyncio
import enum
import signal
import time
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # avoid the import cycle; the service owns its lifecycle
    from .server import BLogService

__all__ = ["LifecycleState", "NotServing", "ServiceLifecycle"]


class LifecycleState(enum.Enum):
    STARTING = "starting"
    RECOVERING = "recovering"
    SERVING = "serving"
    DRAINING = "draining"
    STOPPED = "stopped"


class NotServing(RuntimeError):
    """The service is not accepting new work (draining or stopped)."""


class ServiceLifecycle:
    """The state machine, the signal handlers, and the drain protocol."""

    def __init__(self, service: "BLogService", drain_timeout: float = 10.0):
        self._service = service
        self.drain_timeout = float(drain_timeout)
        self.state = LifecycleState.STARTING
        #: every state this lifecycle has passed through, in order —
        #: lets tests (and operators reading ``stats``) see that a boot
        #: really went through RECOVERING even though it is synchronous
        self.history: list[str] = [self.state.value]
        self.terminated = asyncio.Event()
        self.drain_report: Optional[dict] = None
        self.signal_errors = 0
        self._installed: list[signal.Signals] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._drain_task: Optional[asyncio.Task] = None

    # -- state -------------------------------------------------------------
    @property
    def ready(self) -> bool:
        """Should a load balancer send this instance new work?"""
        return self.state is LifecycleState.SERVING

    @property
    def accepting(self) -> bool:
        """May ``submit`` admit a request right now?  (STARTING stays
        accepting so a not-started pool reports its own error, as it
        always has; DRAINING/STOPPED refuse with :class:`NotServing`.)"""
        return self.state not in (LifecycleState.DRAINING, LifecycleState.STOPPED)

    def transition(self, state: LifecycleState) -> None:
        if state is not self.state:
            self.state = state
            self.history.append(state.value)

    def describe(self) -> dict:
        """The ``health`` verb's payload."""
        return {
            "state": self.state.value,
            "ready": self.ready,
            "history": list(self.history),
            "draining": self.state is LifecycleState.DRAINING,
            "drain": self.drain_report,
        }

    # -- signals -----------------------------------------------------------
    def install_signal_handlers(
        self,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        signals: Iterable[signal.Signals] = (signal.SIGTERM, signal.SIGINT),
    ) -> bool:
        """Route SIGTERM/SIGINT to a graceful drain.  Returns False when
        the platform's loop has no ``add_signal_handler`` (the drain
        coroutine still works; only the signal wiring is unavailable)."""
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        installed = False
        for sig in signals:
            try:
                self._loop.add_signal_handler(sig, self._on_signal, sig)
            except (NotImplementedError, RuntimeError):
                self.signal_errors += 1
                continue
            self._installed.append(sig)
            installed = True
        return installed

    def remove_signal_handlers(self) -> None:
        if self._loop is None:
            return
        for sig in self._installed:
            try:
                self._loop.remove_signal_handler(sig)
            except (NotImplementedError, RuntimeError):
                self.signal_errors += 1
        self._installed = []

    def _on_signal(self, sig: signal.Signals) -> None:
        """Loop-thread signal callback: start (or join) the drain."""
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = asyncio.ensure_future(
                self.drain(timeout=self.drain_timeout)
            )

    # -- drain -------------------------------------------------------------
    async def drain(self, timeout: Optional[float] = None) -> dict:
        """Gracefully wind the service down (the four steps above).

        Idempotent: a second caller waits for the first drain and gets
        the same report.  Returns the drain report (also kept on
        ``drain_report`` and shown by the ``health`` verb).
        """
        if self.state in (LifecycleState.DRAINING, LifecycleState.STOPPED):
            await self.terminated.wait()
            return self.drain_report or {}
        svc = self._service
        timeout = self.drain_timeout if timeout is None else float(timeout)
        self.transition(LifecycleState.DRAINING)
        cancelled = 0
        merged = 0
        unmerged = 0
        t0 = time.monotonic()
        try:
            await svc.close_ingress()
            deadline = t0 + timeout
            while (
                svc.admission.pending > 0 or svc.pool.pending_jobs() > 0
            ) and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
            if svc.pool.pending_jobs() > 0:
                cancelled = svc.pool.cancel_queued()
            # cancelled jobs resolve their submit() coroutines on the next
            # loop iterations; wait (bounded) for admission to empty out
            settle = time.monotonic() + 1.0
            while svc.admission.pending > 0 and time.monotonic() < settle:
                await asyncio.sleep(0.02)
            for program, session in svc.router.open_session_keys():
                try:
                    report = await svc.end_session(program, session)
                except Exception:
                    # a lane that died during shutdown: the session is
                    # abandoned (never merged), the drain continues
                    unmerged += 1
                    continue
                if report is not None:
                    merged += 1
                else:
                    unmerged += 1
            await svc.stop()  # final checkpoint happens inside
        finally:
            svc.telemetry.registry.histogram("blog_drain_seconds").observe(
                time.monotonic() - t0
            )
        self.transition(LifecycleState.STOPPED)
        self.drain_report = {
            "duration_s": time.monotonic() - t0,
            "cancelled": cancelled,
            "sessions_merged": merged,
            "sessions_unmerged": unmerged,
            "pending_at_exit": svc.admission.pending,
        }
        self.terminated.set()
        return self.drain_report
