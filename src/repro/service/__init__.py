"""The B-LOG serving layer: concurrent query service over the engine.

``BLogService`` multiplexes many clients over named programs with
session-affinity routing (one session, one lane, one local weight
store), a bounded worker pool with deadlines and retry over a
pluggable lane backend (``thread``: shared GIL-bound executor;
``process``: one warm subprocess per lane with delta-synced weight
mirrors — real parallelism), a generation-guarded answer cache,
queue-depth backpressure, and per-request tracing — in-process via
``await service.submit(...)`` or over a line-JSON TCP endpoint via
``serve_tcp``.
"""

from .admission import AdmissionController, Overloaded
from .cache import (
    AnswerCache,
    cache_key,
    canonical_query,
    canonical_query_text,
    slot_names,
)
from .lifecycle import LifecycleState, NotServing, ServiceLifecycle
from .router import SessionRouter, SessionState
from .server import BLogService, ProgramEntry, QueryRequest, QueryResponse
from .stats import ServiceStats, TraceEvent, format_lane_stats, format_stats, percentile
from .telemetry import (
    JsonlTraceLog,
    MetricsRegistry,
    Span,
    Telemetry,
    Trace,
    Tracer,
    format_trace,
    read_trace_log,
)
from .workers import (
    BACKENDS,
    Job,
    LaneBackend,
    ProcessLaneBackend,
    QueryTimeout,
    ThreadLaneBackend,
    WorkerDied,
    WorkerPool,
)

__all__ = [
    "AdmissionController",
    "Overloaded",
    "AnswerCache",
    "cache_key",
    "canonical_query",
    "canonical_query_text",
    "slot_names",
    "SessionRouter",
    "SessionState",
    "LifecycleState",
    "NotServing",
    "ServiceLifecycle",
    "BLogService",
    "ProgramEntry",
    "QueryRequest",
    "QueryResponse",
    "ServiceStats",
    "TraceEvent",
    "format_stats",
    "format_lane_stats",
    "percentile",
    "Job",
    "QueryTimeout",
    "WorkerDied",
    "WorkerPool",
    "BACKENDS",
    "LaneBackend",
    "ThreadLaneBackend",
    "ProcessLaneBackend",
    "Telemetry",
    "Tracer",
    "Trace",
    "Span",
    "MetricsRegistry",
    "JsonlTraceLog",
    "format_trace",
    "read_trace_log",
]
