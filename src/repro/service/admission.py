"""Admission control: bounded queue depth with explicit rejection.

A serving system that accepts every request degrades by unbounded
latency; B-LOG's serving layer instead bounds the number of admitted,
not-yet-finished queries and rejects the overflow with
:class:`Overloaded` — the client sees a fast, explicit "try again"
instead of a slow timeout.  The bound covers queued *and* executing
requests, so it is the knob that caps total memory held by in-flight
OR-trees.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from .telemetry import MetricsRegistry

__all__ = ["Overloaded", "AdmissionController"]


class Overloaded(RuntimeError):
    """The service's pending-query bound is reached; retry later."""

    def __init__(self, pending: int, max_pending: int):
        super().__init__(
            f"service overloaded: {pending} queries pending "
            f"(bound {max_pending}); retry later"
        )
        self.pending = pending
        self.max_pending = max_pending


class AdmissionController:
    """Counts in-flight queries against a hard bound.

    Used from the event-loop thread only, so plain integers are enough;
    ``acquire`` never blocks — it admits or raises.
    """

    def __init__(
        self, max_pending: int, registry: Optional["MetricsRegistry"] = None
    ):
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.max_pending = int(max_pending)
        self.pending = 0
        self.admitted = 0
        self.rejected = 0
        #: High-water mark of concurrent in-flight queries — the operator
        #: signal for "how close to the bound does real traffic get"
        #: (e.g. a respawning process lane backs its whole queue up here).
        self.peak_pending = 0
        self._m_pending = registry.gauge("blog_pending") if registry else None
        self._m_peak = registry.gauge("blog_peak_pending") if registry else None
        self._m_admitted = (
            registry.counter("blog_admitted_total") if registry else None
        )
        self._m_rejected = (
            registry.counter("blog_rejected_total") if registry else None
        )

    def acquire(self) -> None:
        """Admit one request or raise :class:`Overloaded`."""
        if self.pending >= self.max_pending:
            self.rejected += 1
            if self._m_rejected is not None:
                self._m_rejected.inc()
            raise Overloaded(self.pending, self.max_pending)
        self.pending += 1
        self.admitted += 1
        if self.pending > self.peak_pending:
            self.peak_pending = self.pending
        if self._m_pending is not None:
            self._m_pending.set(self.pending)
        if self._m_peak is not None:
            self._m_peak.set(self.peak_pending)
        if self._m_admitted is not None:
            self._m_admitted.inc()

    def release(self) -> None:
        """A previously admitted request finished (however it finished)."""
        if self.pending <= 0:
            raise RuntimeError("release() without matching acquire()")
        self.pending -= 1
        if self._m_pending is not None:
            self._m_pending.set(self.pending)

    def __repr__(self) -> str:
        return (
            f"AdmissionController(pending={self.pending}/{self.max_pending}, "
            f"admitted={self.admitted}, rejected={self.rejected})"
        )
