"""Branch-and-bound machinery (paper §3): the sequential best-first
engine with incumbent pruning, and the synchronous parallel wave-front
formulation (Kumar & Kanal style)."""

from .core import (
    BnBNode,
    BnBProblem,
    BnBResult,
    BoundViolation,
    BranchAndBound,
    OrTreeProblem,
)
from .parallel import ParallelBnBResult, parallel_best_first, speedup_curve

__all__ = [
    "BnBProblem",
    "BnBNode",
    "BnBResult",
    "BoundViolation",
    "BranchAndBound",
    "OrTreeProblem",
    "ParallelBnBResult",
    "parallel_best_first",
    "speedup_curve",
]
