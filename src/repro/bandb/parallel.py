"""Synchronous parallel branch-and-bound formulations (paper section 3).

Section 3 sketches the parallel scheme: at any time a "wave front" cuts
the tree; with ``n`` processors, "each processor works on the n chains
with the lowest bounds", selected by a Batcher sorting network.  This
module implements that **synchronous iteration model** analytically
(one iteration = every processor expands one frontier node), following
the parallel B&B formulations of Kumar & Kanal [11].  It measures the
quantities the paper argues about:

* parallel *time* = number of synchronous iterations;
* speedup vs. the 1-processor run;
* **acceleration/deceleration anomalies** — parallel B&B famously can
  expand fewer or more total nodes than sequential B&B; we count both;
* frontier occupancy (how often fewer than ``n`` chains were available
  — the paper's "the scheduling problem makes it impossible to always
  use the total number of processors available").

The asynchronous, communication-aware version (migration threshold
``D``, minimum-seeking network) lives in :mod:`repro.machine`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Generic, Optional, TypeVar

from .core import BnBNode, BnBProblem

__all__ = ["ParallelBnBResult", "parallel_best_first", "speedup_curve"]

S = TypeVar("S")


@dataclass
class ParallelBnBResult(Generic[S]):
    """Outcome of a synchronous parallel B&B run."""

    processors: int
    iterations: int = 0
    expansions: int = 0
    generated: int = 0
    pruned: int = 0
    solutions: list[BnBNode[S]] = field(default_factory=list)
    incumbent: Optional[float] = None
    idle_processor_steps: int = 0  # processor-iterations with no work

    @property
    def utilization(self) -> float:
        total = self.iterations * self.processors
        if total == 0:
            return 0.0
        return 1.0 - self.idle_processor_steps / total


def parallel_best_first(
    problem: BnBProblem[S],
    processors: int,
    max_solutions: Optional[int] = 1,
    max_iterations: int = 1_000_000,
    prune: bool = True,
) -> ParallelBnBResult[S]:
    """Synchronous wave-front parallel best-first B&B.

    Each iteration: pop the ``processors`` lowest-bound open nodes (the
    sorting-network selection of §3), expand them all, push children,
    then apply incumbent pruning.  Solutions discovered in one iteration
    are all recorded (they were developed concurrently).
    """
    if processors < 1:
        raise ValueError("need at least one processor")
    res: ParallelBnBResult[S] = ParallelBnBResult(processors=processors)
    heap: list[tuple[float, int, BnBNode[S]]] = []
    counter = 0
    root = BnBNode(problem.root(), 0.0, 0)
    heapq.heappush(heap, (0.0, counter, root))
    while heap and res.iterations < max_iterations:
        res.iterations += 1
        batch: list[BnBNode[S]] = []
        while heap and len(batch) < processors:
            bound, _, node = heapq.heappop(heap)
            if prune and res.incumbent is not None and bound > res.incumbent:
                res.pruned += 1
                continue
            batch.append(node)
        res.idle_processor_steps += processors - len(batch)
        if not batch:
            break
        done = False
        for node in batch:
            if problem.is_solution(node.state):
                res.solutions.append(node)
                if res.incumbent is None or node.bound < res.incumbent:
                    res.incumbent = node.bound
                if max_solutions is not None and len(res.solutions) >= max_solutions:
                    done = True
                continue
            res.expansions += 1
            for child_state, cost in problem.branch(node.state):
                child = BnBNode(child_state, node.bound + cost, node.depth + 1, node)
                res.generated += 1
                counter += 1
                heapq.heappush(heap, (child.bound, counter, child))
        if done:
            break
    return res


def speedup_curve(
    problem_factory,
    processor_counts: list[int],
    max_solutions: Optional[int] = 1,
) -> list[dict]:
    """Run the synchronous model at each processor count.

    ``problem_factory()`` must return a *fresh* problem (OR-trees are
    stateful).  Returns one row per count with iterations, speedup
    relative to 1 processor, utilization and total expansions — the
    E5-shape data (sub-linear growth, saturation when the frontier is
    narrower than the machine).
    """
    rows: list[dict] = []
    base_iters: Optional[int] = None
    for n in processor_counts:
        res = parallel_best_first(problem_factory(), n, max_solutions)
        if base_iters is None:
            base_iters = res.iterations
        rows.append(
            {
                "processors": n,
                "iterations": res.iterations,
                "speedup": (base_iters / res.iterations) if res.iterations else 0.0,
                "utilization": res.utilization,
                "expansions": res.expansions,
                "solutions": len(res.solutions),
            }
        )
    return rows
