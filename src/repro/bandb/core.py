"""Generic branch-and-bound framework (paper section 3).

The paper frames OR-tree search as "a branching graph that represents
the enumeration of all solutions in a branch-and-bound algorithm" with
a bound that is *monotonic* along every root-to-leaf chain.  This
module provides the abstract machinery independent of logic programs —
a :class:`BnBProblem` protocol, the sequential best-first engine with
incumbent pruning, and work accounting — so that the same engine can be
exercised on classic B&B problems (tests use a subset-sum/knapsack
instance) and on OR-trees via an adapter.

Invariants enforced (and property-tested):

* expanding a node never yields a child with a smaller bound
  (monotonicity; violation raises :class:`BoundViolation`);
* with an admissible monotone bound, best-first pops solutions in
  non-decreasing bound order, so the first solution found is optimal.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generic, Hashable, Iterable, Optional, TypeVar

__all__ = [
    "BnBProblem",
    "BnBNode",
    "BnBResult",
    "BoundViolation",
    "BranchAndBound",
    "OrTreeProblem",
]

S = TypeVar("S")  # problem state


class BoundViolation(RuntimeError):
    """A child bound was lower than its parent's (non-monotone bound)."""


class BnBProblem(Generic[S]):
    """Protocol for branch-and-bound problems.

    ``root`` gives the initial state; ``branch`` yields ``(child,
    arc_cost)`` pairs; ``is_solution`` marks complete states.  Bounds
    accumulate additively: ``bound(child) = bound(parent) + arc_cost``,
    exactly the chain-weight sum of section 4.
    """

    def root(self) -> S:
        raise NotImplementedError

    def branch(self, state: S) -> Iterable[tuple[S, float]]:
        raise NotImplementedError

    def is_solution(self, state: S) -> bool:
        raise NotImplementedError


@dataclass
class BnBNode(Generic[S]):
    """A live search node: state + accumulated bound + lineage."""

    state: S
    bound: float
    depth: int
    parent: Optional["BnBNode[S]"] = None

    def chain(self) -> list["BnBNode[S]"]:
        out: list[BnBNode[S]] = []
        cur: Optional[BnBNode[S]] = self
        while cur is not None:
            out.append(cur)
            cur = cur.parent
        out.reverse()
        return out


@dataclass
class BnBResult(Generic[S]):
    """Search outcome: solutions in discovery order plus work counters."""

    solutions: list[BnBNode[S]] = field(default_factory=list)
    expansions: int = 0
    generated: int = 0
    pruned: int = 0
    incumbent: Optional[float] = None

    @property
    def best(self) -> Optional[BnBNode[S]]:
        if not self.solutions:
            return None
        return min(self.solutions, key=lambda n: n.bound)


class BranchAndBound(Generic[S]):
    """Sequential best-first branch and bound with incumbent pruning.

    Parameters
    ----------
    problem:
        The :class:`BnBProblem` to search.
    check_monotone:
        Raise :class:`BoundViolation` if a child bound decreases —
        catches broken weight functions early (the paper's requirement
        that the bound "is monotonic on each arc in any chain").
    """

    def __init__(self, problem: BnBProblem[S], check_monotone: bool = True):
        self.problem = problem
        self.check_monotone = check_monotone

    def run(
        self,
        max_solutions: Optional[int] = 1,
        max_expansions: int = 1_000_000,
        prune: bool = True,
    ) -> BnBResult[S]:
        """Best-first search; prune nodes whose bound exceeds the incumbent.

        With ``max_solutions=None`` the full bounded tree is enumerated
        (pruning still applies when ``prune``: chains strictly worse than
        the best solution are cut, mirroring the all-solutions semantics
        of section 4 where every solution shares the same bound N).
        """
        result: BnBResult[S] = BnBResult()
        heap: list[tuple[float, int, BnBNode[S]]] = []
        counter = 0
        root = BnBNode(self.problem.root(), 0.0, 0)
        heapq.heappush(heap, (0.0, counter, root))
        while heap:
            if result.expansions >= max_expansions:
                break
            bound, _, node = heapq.heappop(heap)
            if (
                prune
                and result.incumbent is not None
                and bound > result.incumbent
            ):
                result.pruned += 1
                continue
            if self.problem.is_solution(node.state):
                result.solutions.append(node)
                if result.incumbent is None or node.bound < result.incumbent:
                    result.incumbent = node.bound
                if max_solutions is not None and len(result.solutions) >= max_solutions:
                    break
                continue
            result.expansions += 1
            for child_state, cost in self.problem.branch(node.state):
                if self.check_monotone and cost < 0:
                    raise BoundViolation(
                        f"negative arc cost {cost} from state {node.state!r}"
                    )
                child = BnBNode(child_state, node.bound + cost, node.depth + 1, node)
                result.generated += 1
                counter += 1
                heapq.heappush(heap, (child.bound, counter, child))
        return result


class OrTreeProblem(BnBProblem[int]):
    """Adapter: an :class:`~repro.ortree.tree.OrTree` as a BnB problem.

    States are node ids; arc costs are the tree's arc weights (from the
    weight store plugged into the tree).  This lets the generic engine,
    the parallel formulations, and the machine simulator all consume
    the same search space.
    """

    def __init__(self, tree):
        self.tree = tree

    def root(self) -> int:
        return self.tree.root.nid

    def branch(self, state: int) -> Iterable[tuple[int, float]]:
        for cid in self.tree.expand(state):
            child = self.tree.node(cid)
            assert child.arc is not None
            yield cid, child.arc.weight

    def is_solution(self, state: int) -> bool:
        from ..ortree.tree import NodeStatus

        return self.tree.node(state).status is NodeStatus.SOLUTION
