"""Row/series printers shared by the benchmark harness.

Every benchmark regenerating a paper figure or experiment prints an
aligned table through :func:`print_table` so the EXPERIMENTS.md
paper-vs-measured records come straight from the harness output.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "print_table", "format_series", "to_csv"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000 or value == int(value):
            return f"{value:.0f}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)
    ]
    lines = [
        "  ".join(c.ljust(w) for c, w in zip(cols, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    title: str, rows: Sequence[dict], columns: Sequence[str] | None = None
) -> None:
    """Print a titled table (benchmarks call this for every figure/table)."""
    print(f"\n=== {title} ===")
    print(format_table(rows, columns))


def to_csv(rows: Sequence[dict], columns: Sequence[str] | None = None) -> str:
    """Render dict rows as CSV text (for downstream plotting tools)."""
    import csv
    import io

    if not rows:
        return ""
    cols = list(columns) if columns is not None else list(rows[0].keys())
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=cols, extrasaction="ignore")
    writer.writeheader()
    for r in rows:
        writer.writerow({c: r.get(c, "") for c in cols})
    return buf.getvalue()


def format_series(name: str, xs: Sequence, ys: Sequence) -> str:
    """One-line series rendering: ``name: x1->y1 x2->y2 ...``"""
    pairs = " ".join(f"{_fmt(x)}->{_fmt(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"
