"""Command-line interface: load a program, run queries, pick an engine.

Usage::

    python -m repro --source family.pl --query "gf(sam, G)"
    python -m repro --demo --query "gf(sam, G)" --engine blog --tree
    python -m repro --demo              # interactive REPL
    python -m repro --nrev 30           # the LIPS benchmark

Engines: ``prolog`` (depth-first baseline), ``blog`` (adaptive
best-first, the default), ``machine`` (the simulated parallel machine).

The ``serve`` subcommand runs the concurrent query service instead::

    python -m repro serve --demo --port 8750
    python -m repro serve --source family.pl --workers 8 --max-pending 128
    python -m repro serve --demo --selfcheck   # start, query itself, exit
    python -m repro serve --demo --data-dir var/blog   # durable weights:
                                  # WAL + checkpoints, SIGTERM drains

Clients speak one JSON object per line over TCP; see
:mod:`repro.service`.

The ``recover`` subcommand replays a ``--data-dir`` offline — report
what a boot would restore, or compact the journal into a fresh
snapshot (see ``docs/OPERATIONS.md``)::

    python -m repro recover var/blog
    python -m repro recover var/blog --compact --format json

The ``lint`` subcommand runs blogcheck, the repo's AST invariant
linter (see :mod:`repro.analysis` and ``docs/ANALYSIS.md``)::

    python -m repro.cli lint                 # lint the repro package
    python -m repro.cli lint src tests --format json
    python -m repro.cli lint --select BLG004,BLG005 --github
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .core import BLogConfig, BLogEngine
from .logic import ParseError, Program, Solver
from .machine import BLogMachine, MachineConfig
from .ortree import OrTree

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="B-LOG: branch-and-bound execution of logic programs "
        "(Lipovski & Hermenegildo, ICPP 1985)",
    )
    src = p.add_mutually_exclusive_group()
    src.add_argument("--source", metavar="FILE", help="program file to consult")
    src.add_argument(
        "--demo", action="store_true", help="load the paper's figure-1 program"
    )
    p.add_argument("--query", "-q", metavar="GOALS", help="query to run (one shot)")
    p.add_argument(
        "--engine",
        choices=("prolog", "blog", "machine"),
        default="blog",
        help="execution engine (default: blog)",
    )
    p.add_argument(
        "--max-solutions", type=int, default=None, metavar="N",
        help="stop after N answers",
    )
    p.add_argument(
        "--processors", type=int, default=4, metavar="N",
        help="machine engine: processor count (default 4)",
    )
    p.add_argument("--n", type=float, default=16.0, help="target bound N (§5)")
    p.add_argument("--a", type=int, default=16, help="max chain length A (§5)")
    p.add_argument("--max-depth", type=int, default=256, help="resolution depth bound")
    p.add_argument(
        "--tree", action="store_true", help="print the developed OR-tree"
    )
    p.add_argument(
        "--listing", action="store_true", help="print the loaded program and exit"
    )
    p.add_argument(
        "--nrev", type=int, metavar="LEN", default=None,
        help="run the naive-reverse LIPS benchmark at list length LEN",
    )
    p.add_argument(
        "--load-store", metavar="JSON", default=None,
        help="seed the engine with a saved weight store",
    )
    p.add_argument(
        "--save-store", metavar="JSON", default=None,
        help="write the learned weight store after the query/session",
    )
    sub = p.add_subparsers(dest="command", metavar="command")
    serve = sub.add_parser(
        "serve",
        help="run the concurrent query service (line-JSON over TCP)",
        description="Serve one or more programs concurrently: session-"
        "affinity routing, answer caching, backpressure; see repro.service.",
    )
    serve.add_argument(
        "--source", metavar="FILE", action="append", default=[],
        help="program file to serve (repeatable; served under its stem)",
    )
    serve.add_argument(
        "--demo", action="store_true",
        help="serve the paper's figure-1 program as 'family'",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8750, help="TCP port (0 = ephemeral)")
    serve.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="worker lanes (default 4)",
    )
    serve.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help="lane execution backend: 'thread' (shared GIL-bound executor) "
        "or 'process' (one warm subprocess per lane — real parallelism; "
        "see docs/API.md for when each wins)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=64, metavar="N",
        help="admission bound on in-flight queries (default 64)",
    )
    serve.add_argument(
        "--timeout", type=float, default=30.0, metavar="SECONDS",
        help="default per-query deadline (default 30)",
    )
    serve.add_argument(
        "--processors", type=int, default=4, metavar="N",
        help="machine-engine processor count (default 4)",
    )
    serve.add_argument("--n", type=float, default=16.0, help="target bound N (§5)")
    serve.add_argument("--a", type=int, default=16, help="max chain length A (§5)")
    serve.add_argument(
        "--max-depth", type=int, default=256, help="resolution depth bound"
    )
    serve.add_argument(
        "--trace-log", metavar="PATH", default=None,
        help="append one JSON object per finished span to PATH "
        "(size-rotated JSONL; see docs/OBSERVABILITY.md)",
    )
    serve.add_argument(
        "--trace-log-max-bytes", type=int, default=10_000_000, metavar="N",
        help="rotate the trace log past N bytes (default 10MB)",
    )
    serve.add_argument(
        "--slow-query-ms", type=float, default=None, metavar="MS",
        help="dump the full span tree of any request slower than MS "
        "milliseconds to stderr (the slow-query log)",
    )
    serve.add_argument(
        "--selfcheck", action="store_true",
        help="start, run a few queries against itself over TCP, "
        "print stats, and exit (smoke test)",
    )
    serve.add_argument(
        "--data-dir", metavar="DIR", default=None,
        help="durable weight stores: WAL-journal every acknowledged "
        "session merge under DIR/<program>/ and recover on boot "
        "(see docs/OPERATIONS.md)",
    )
    serve.add_argument(
        "--checkpoint-interval", type=float, default=None, metavar="SECONDS",
        help="write a compacting snapshot every SECONDS (with --data-dir; "
        "default: only at shutdown)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="graceful-drain deadline for in-flight work on SIGTERM/SIGINT "
        "(default 10)",
    )
    recover = sub.add_parser(
        "recover",
        help="inspect or compact a service data directory offline",
        description="Replay each program's snapshot + WAL under DIR "
        "(exactly what `serve --data-dir DIR` does at boot) and report "
        "what recovery would see; --compact additionally writes a fresh "
        "snapshot and truncates the journal. Exits 1 when any store is "
        "corrupt.",
    )
    recover.add_argument(
        "data_dir", metavar="DIR", help="the service's --data-dir"
    )
    recover.add_argument(
        "--program", default=None, metavar="NAME",
        help="only this program's store (default: every subdirectory)",
    )
    recover.add_argument(
        "--compact", action="store_true",
        help="write a fresh snapshot and truncate each journal",
    )
    recover.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    recover.add_argument("--n", type=float, default=16.0, help="target bound N (§5)")
    recover.add_argument("--a", type=int, default=16, help="max chain length A (§5)")
    lint = sub.add_parser(
        "lint",
        help="run blogcheck, the AST invariant linter (see docs/ANALYSIS.md)",
        description="Check the concurrency, IPC, telemetry, and durability "
        "contracts (BLG001-BLG007). Exits 1 when findings remain, 0 on a "
        "clean run.",
    )
    lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to check (default: the repro package)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--github", action="store_true",
        help="also emit GitHub Actions ::error annotations per finding",
    )
    lint.add_argument(
        "--select", metavar="CODES", default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return p


def _load_program(args) -> Optional[Program]:
    if args.demo:
        from .workloads import family_program

        return family_program()
    if args.source:
        with open(args.source) as fh:
            return Program.from_source(fh.read())
    return None


def _load_store_arg(args):
    """The --load-store weight store, or None for a fresh one."""
    if getattr(args, "load_store", None):
        from .weights.persist import load_store

        return load_store(args.load_store)
    return None


def _save_store_arg(args, engine) -> None:
    if getattr(args, "save_store", None):
        from .weights.persist import save_store

        save_store(engine.sessions.global_store, args.save_store)


def _run_query(args, program: Program, query: str, out) -> int:
    if args.engine == "prolog":
        solver = Solver(program, max_depth=args.max_depth)
        count = 0
        for sol in solver.solve(query, max_solutions=args.max_solutions):
            print(sol, file=out)
            count += 1
        if count == 0:
            print("false.", file=out)
        print(
            f"% {solver.stats.inferences} inferences, "
            f"{solver.stats.resolutions} resolutions",
            file=out,
        )
        return 0 if count else 1
    if args.engine == "machine":
        tree = OrTree(program, query, max_depth=args.max_depth)
        cfg = MachineConfig(
            n_processors=args.processors, max_solutions=args.max_solutions
        )
        res = BLogMachine(cfg).run(tree)
        for answer in res.answers:
            line = ", ".join(f"{k} = {v}" for k, v in sorted(answer.items()))
            print(line or "true", file=out)
        if not res.answers:
            print("false.", file=out)
        print(
            f"% makespan {res.makespan:.0f} cycles, "
            f"{res.expansions} expansions, "
            f"utilization {res.mean_utilization:.2f}, "
            f"{res.migrations} migrations",
            file=out,
        )
        return 0 if res.answers else 1
    # blog
    engine = BLogEngine(
        program,
        BLogConfig(n=args.n, a=args.a, max_depth=args.max_depth),
        global_store=_load_store_arg(args),
    )
    result = engine.query(query, max_solutions=args.max_solutions, keep_tree=args.tree)
    for answer in result.answers:
        line = ", ".join(f"{k} = {v}" for k, v in sorted(answer.items()))
        print(line or "true", file=out)
    if not result.answers:
        print("false.", file=out)
    print(
        f"% {result.expansions} expansions "
        f"({result.expansions_to_first} to first answer), "
        f"{result.failures} failed chains",
        file=out,
    )
    if args.tree and result.tree is not None:
        print(result.tree.render(), file=out)
    _save_store_arg(args, engine)
    return 0 if result.answers else 1


def _repl(args, program: Program, out) -> int:
    print(
        "B-LOG interactive shell — enter goals, ':listing', or ':quit'.",
        file=out,
    )
    engine = BLogEngine(
        program,
        BLogConfig(n=args.n, a=args.a, max_depth=args.max_depth),
        global_store=_load_store_arg(args),
    )
    engine.begin_session()
    while True:
        try:
            line = input("?- ").strip()
        except EOFError:
            break
        if not line:
            continue
        if line in (":quit", ":q", "halt."):
            break
        if line == ":listing":
            print(program.listing(), file=out)
            continue
        if line == ":store":
            print(engine.store, file=out)
            continue
        try:
            result = engine.query(line, max_solutions=args.max_solutions)
        except ParseError as exc:
            print(f"syntax error: {exc}", file=out)
            continue
        except Exception as exc:  # engine errors shouldn't kill the REPL
            print(f"error: {exc}", file=out)
            continue
        for answer in result.answers:
            text = ", ".join(f"{k} = {v}" for k, v in sorted(answer.items()))
            print(text or "true", file=out)
        if not result.answers:
            print("false.", file=out)
    engine.end_session()
    _save_store_arg(args, engine)
    return 0


def _serve_programs(args) -> dict[str, Program]:
    """The {name: program} registry a `serve` invocation asked for."""
    from pathlib import Path

    programs: dict[str, Program] = {}
    if args.demo:
        from .workloads import family_program

        programs["family"] = family_program()
    for path in args.source:
        with open(path) as fh:
            programs[Path(path).stem] = Program.from_source(fh.read())
    return programs


async def _selfcheck(service, host: str, port: int, out) -> int:
    """Connect to our own TCP endpoint and push a few requests through."""
    import asyncio
    import json

    reader, writer = await asyncio.open_connection(host, port)
    from .logic.terms import Struct

    name = next(iter(service.programs))
    head = next(iter(service.programs[name].program)).head
    if isinstance(head, Struct):
        holes = ", ".join(f"SC{i}" for i in range(len(head.args)))
        probe = f"{head.functor}({holes})"
    else:
        probe = str(head)
    requests = [
        {"op": "query", "id": "c1", "program": name, "query": probe, "session": "check"},
        {"op": "query", "id": "c2", "program": name, "query": probe, "session": "check"},
        {"op": "end_session", "program": name, "session": "check"},
        {"op": "stats"},
    ]
    ok = True
    for msg in requests:
        writer.write((json.dumps(msg) + "\n").encode())
        await writer.drain()
        reply = json.loads(await reader.readline())
        ok = ok and bool(reply.get("ok"))
        print(f"selfcheck {msg.get('op')}: ok={reply.get('ok')}", file=out)
    writer.close()
    await writer.wait_closed()
    return 0 if ok else 1


def _run_serve(args, out) -> int:
    import asyncio

    from .core.config import BLogConfig
    from .machine import MachineConfig
    from .service import BLogService, format_stats

    programs = _serve_programs(args)
    if not programs:
        print("error: serve needs --source FILE and/or --demo", file=out)
        return 2
    service = BLogService(
        programs,
        config=BLogConfig(n=args.n, a=args.a, max_depth=args.max_depth),
        machine=MachineConfig(n_processors=args.processors),
        n_workers=args.workers,
        max_pending=args.max_pending,
        default_timeout=args.timeout,
        backend=args.backend,
        slow_query_ms=args.slow_query_ms,
        trace_log=args.trace_log,
        trace_log_max_bytes=args.trace_log_max_bytes,
        data_dir=args.data_dir,
        checkpoint_interval=args.checkpoint_interval,
        drain_timeout=args.drain_timeout,
    )

    async def run() -> int:
        server = await service.serve_tcp(args.host, args.port)
        host, port = server.sockets[0].getsockname()[:2]
        # SIGTERM/SIGINT -> graceful drain -> terminated -> exit 0; wired
        # before the banner so a signal arriving the instant we announce
        # readiness already drains instead of killing the process
        service.lifecycle.install_signal_handlers(asyncio.get_running_loop())
        print(
            f"serving {', '.join(sorted(programs))} on {host}:{port} "
            f"({args.workers} {args.backend} lanes, "
            f"max {args.max_pending} pending)",
            file=out,
        )
        if args.data_dir:
            print(f"durable weight stores under {args.data_dir}", file=out)
        try:
            if args.selfcheck:
                return await _selfcheck(service, host, port, out)
            await service.lifecycle.terminated.wait()
            print("drained.", file=out)
            return 0
        finally:
            from .service import LifecycleState

            service.lifecycle.remove_signal_handlers()
            if service.lifecycle.state is not LifecycleState.STOPPED:
                await service.stop()
            print(format_stats(service.stats()), file=out)

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted.", file=out)
        return 0


def _run_recover(args, out) -> int:
    """Offline recovery: replay each program's snapshot + journal the
    way ``serve --data-dir`` would at boot, report what happened, and
    (with ``--compact``) write a fresh snapshot truncating the journal."""
    import json
    from pathlib import Path

    from .weights.persist import StoreCorruptError
    from .weights.wal import DurableStore, WalCorruptError

    root = Path(args.data_dir)
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=out)
        return 2
    if args.program:
        names = [args.program]
    else:
        names = sorted(p.name for p in root.iterdir() if p.is_dir())
    if not names:
        print(f"error: no program directories under {root}", file=out)
        return 2
    reports: list[dict] = []
    corrupt = False
    for name in names:
        ds = DurableStore(root / name, n=args.n, a=args.a)
        try:
            store, info = ds.recover()
        except (StoreCorruptError, WalCorruptError) as exc:
            corrupt = True
            reports.append({"program": name, "ok": False, "error": str(exc)})
            ds.close()
            continue
        report = {
            "program": name,
            "ok": True,
            "entries": len(list(store.keys())),
            "generation": store.generation,
            **info.to_dict(),
            "compacted": False,
        }
        if args.compact:
            ds.checkpoint(store)
            report["compacted"] = True
        ds.close()
        reports.append(report)
    if args.format == "json":
        print(json.dumps(reports, indent=1), file=out)
    else:
        for r in reports:
            if not r["ok"]:
                print(f"{r['program']}: CORRUPT — {r['error']}", file=out)
                continue
            line = (
                f"{r['program']}: {r['entries']} entries at generation "
                f"{r['generation']} (snapshot seq {r['snapshot_seq']}, "
                f"{r['records_replayed']} replayed, "
                f"{r['records_skipped']} skipped"
            )
            if r["torn_tail"]:
                line += ", torn tail dropped"
            line += ")"
            if r["compacted"]:
                line += "  [compacted]"
            print(line, file=out)
    return 1 if corrupt else 0


def _run_lint(args, out) -> int:
    from pathlib import Path

    from .analysis import (
        analyze_paths,
        render_github,
        render_json,
        render_text,
        rules_by_code,
    )

    if args.list_rules:
        for code, cls in rules_by_code().items():
            print(f"{code}  {cls.name:<28} {cls.summary}", file=out)
        return 0
    paths = [Path(p) for p in args.paths]
    if not paths:
        paths = [Path(__file__).resolve().parent]  # the repro package
    select = args.select.split(",") if args.select else None
    try:
        result = analyze_paths(paths, select=select)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=out)
        return 2
    if args.format == "json":
        print(render_json(result), file=out)
    else:
        print(render_text(result), file=out)
    if args.github and result.findings:
        print(render_github(result), file=out)
    return 0 if result.ok else 1


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if getattr(args, "command", None) == "serve":
        return _run_serve(args, out)
    if getattr(args, "command", None) == "recover":
        return _run_recover(args, out)
    if getattr(args, "command", None) == "lint":
        return _run_lint(args, out)
    if args.nrev is not None:
        from .workloads import run_nrev

        res = run_nrev(args.nrev, repeats=10)
        print(
            f"nrev/{args.nrev}: {res.resolutions} resolutions in "
            f"{res.seconds:.3f}s = {res.lips / 1000:.1f} kLIPS "
            f"(reversed correctly: {res.reversed_ok})",
            file=out,
        )
        return 0
    program = _load_program(args)
    if program is None:
        build_parser().print_usage(out)
        print("error: provide --source FILE, --demo, or --nrev", file=out)
        return 2
    if args.listing:
        print(program.listing(), file=out)
        return 0
    if args.query:
        try:
            return _run_query(args, program, args.query, out)
        except ParseError as exc:
            print(f"syntax error: {exc}", file=out)
            return 2
    return _repl(args, program, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
