"""Command-line interface: load a program, run queries, pick an engine.

Usage::

    python -m repro --source family.pl --query "gf(sam, G)"
    python -m repro --demo --query "gf(sam, G)" --engine blog --tree
    python -m repro --demo              # interactive REPL
    python -m repro --nrev 30           # the LIPS benchmark

Engines: ``prolog`` (depth-first baseline), ``blog`` (adaptive
best-first, the default), ``machine`` (the simulated parallel machine).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .core import BLogConfig, BLogEngine
from .logic import ParseError, Program, Solver
from .machine import BLogMachine, MachineConfig
from .ortree import OrTree

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="B-LOG: branch-and-bound execution of logic programs "
        "(Lipovski & Hermenegildo, ICPP 1985)",
    )
    src = p.add_mutually_exclusive_group()
    src.add_argument("--source", metavar="FILE", help="program file to consult")
    src.add_argument(
        "--demo", action="store_true", help="load the paper's figure-1 program"
    )
    p.add_argument("--query", "-q", metavar="GOALS", help="query to run (one shot)")
    p.add_argument(
        "--engine",
        choices=("prolog", "blog", "machine"),
        default="blog",
        help="execution engine (default: blog)",
    )
    p.add_argument(
        "--max-solutions", type=int, default=None, metavar="N",
        help="stop after N answers",
    )
    p.add_argument(
        "--processors", type=int, default=4, metavar="N",
        help="machine engine: processor count (default 4)",
    )
    p.add_argument("--n", type=float, default=16.0, help="target bound N (§5)")
    p.add_argument("--a", type=int, default=16, help="max chain length A (§5)")
    p.add_argument("--max-depth", type=int, default=256, help="resolution depth bound")
    p.add_argument(
        "--tree", action="store_true", help="print the developed OR-tree"
    )
    p.add_argument(
        "--listing", action="store_true", help="print the loaded program and exit"
    )
    p.add_argument(
        "--nrev", type=int, metavar="LEN", default=None,
        help="run the naive-reverse LIPS benchmark at list length LEN",
    )
    p.add_argument(
        "--load-store", metavar="JSON", default=None,
        help="seed the engine with a saved weight store",
    )
    p.add_argument(
        "--save-store", metavar="JSON", default=None,
        help="write the learned weight store after the query/session",
    )
    return p


def _load_program(args) -> Optional[Program]:
    if args.demo:
        from .workloads import family_program

        return family_program()
    if args.source:
        with open(args.source) as fh:
            return Program.from_source(fh.read())
    return None


def _load_store_arg(args):
    """The --load-store weight store, or None for a fresh one."""
    if getattr(args, "load_store", None):
        from .weights.persist import load_store

        return load_store(args.load_store)
    return None


def _save_store_arg(args, engine) -> None:
    if getattr(args, "save_store", None):
        from .weights.persist import save_store

        save_store(engine.sessions.global_store, args.save_store)


def _run_query(args, program: Program, query: str, out) -> int:
    if args.engine == "prolog":
        solver = Solver(program, max_depth=args.max_depth)
        count = 0
        for sol in solver.solve(query, max_solutions=args.max_solutions):
            print(sol, file=out)
            count += 1
        if count == 0:
            print("false.", file=out)
        print(
            f"% {solver.stats.inferences} inferences, "
            f"{solver.stats.resolutions} resolutions",
            file=out,
        )
        return 0 if count else 1
    if args.engine == "machine":
        tree = OrTree(program, query, max_depth=args.max_depth)
        cfg = MachineConfig(
            n_processors=args.processors, max_solutions=args.max_solutions
        )
        res = BLogMachine(cfg).run(tree)
        for answer in res.answers:
            line = ", ".join(f"{k} = {v}" for k, v in sorted(answer.items()))
            print(line or "true", file=out)
        if not res.answers:
            print("false.", file=out)
        print(
            f"% makespan {res.makespan:.0f} cycles, "
            f"{res.expansions} expansions, "
            f"utilization {res.mean_utilization:.2f}, "
            f"{res.migrations} migrations",
            file=out,
        )
        return 0 if res.answers else 1
    # blog
    engine = BLogEngine(
        program,
        BLogConfig(n=args.n, a=args.a, max_depth=args.max_depth),
        global_store=_load_store_arg(args),
    )
    result = engine.query(query, max_solutions=args.max_solutions, keep_tree=args.tree)
    for answer in result.answers:
        line = ", ".join(f"{k} = {v}" for k, v in sorted(answer.items()))
        print(line or "true", file=out)
    if not result.answers:
        print("false.", file=out)
    print(
        f"% {result.expansions} expansions "
        f"({result.expansions_to_first} to first answer), "
        f"{result.failures} failed chains",
        file=out,
    )
    if args.tree and result.tree is not None:
        print(result.tree.render(), file=out)
    _save_store_arg(args, engine)
    return 0 if result.answers else 1


def _repl(args, program: Program, out) -> int:
    print(
        "B-LOG interactive shell — enter goals, ':listing', or ':quit'.",
        file=out,
    )
    engine = BLogEngine(
        program,
        BLogConfig(n=args.n, a=args.a, max_depth=args.max_depth),
        global_store=_load_store_arg(args),
    )
    engine.begin_session()
    while True:
        try:
            line = input("?- ").strip()
        except EOFError:
            break
        if not line:
            continue
        if line in (":quit", ":q", "halt."):
            break
        if line == ":listing":
            print(program.listing(), file=out)
            continue
        if line == ":store":
            print(engine.store, file=out)
            continue
        try:
            result = engine.query(line, max_solutions=args.max_solutions)
        except ParseError as exc:
            print(f"syntax error: {exc}", file=out)
            continue
        except Exception as exc:  # engine errors shouldn't kill the REPL
            print(f"error: {exc}", file=out)
            continue
        for answer in result.answers:
            text = ", ".join(f"{k} = {v}" for k, v in sorted(answer.items()))
            print(text or "true", file=out)
        if not result.answers:
            print("false.", file=out)
    engine.end_session()
    _save_store_arg(args, engine)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.nrev is not None:
        from .workloads import run_nrev

        res = run_nrev(args.nrev, repeats=10)
        print(
            f"nrev/{args.nrev}: {res.resolutions} resolutions in "
            f"{res.seconds:.3f}s = {res.lips / 1000:.1f} kLIPS "
            f"(reversed correctly: {res.reversed_ok})",
            file=out,
        )
        return 0
    program = _load_program(args)
    if program is None:
        build_parser().print_usage(out)
        print("error: provide --source FILE, --demo, or --nrev", file=out)
        return 2
    if args.listing:
        print(program.listing(), file=out)
        return 0
    if args.query:
        try:
            return _run_query(args, program, args.query, out)
        except ParseError as exc:
            print(f"syntax error: {exc}", file=out)
            return 2
    return _repl(args, program, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
