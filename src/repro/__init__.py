"""repro — a full reproduction of *B-LOG: A Branch and Bound
Methodology for the Parallel Execution of Logic Programs* (Lipovski &
Hermenegildo, ICPP 1985).

Layers (bottom-up):

* :mod:`repro.logic`     — Prolog-subset substrate (terms, unification,
  parser, indexed knowledge base, depth-first baseline engine);
* :mod:`repro.ortree`    — the explicit OR-tree model of §2 and the
  search strategies of §3;
* :mod:`repro.bandb`     — generic branch and bound, sequential and
  synchronous-parallel;
* :mod:`repro.weights`   — the §4–5 weighting scheme: store, update
  rules, exact linear-system theory, sessions;
* :mod:`repro.linkdb`    — the figure-4 linked-list clause database
  with named weighted pointers;
* :mod:`repro.core`      — the B-LOG engine (adaptive best-first B&B)
  and the OS-process OR-parallel backend;
* :mod:`repro.machine`   — the simulated §6 parallel machine: DES
  kernel, scoreboard controller, multiply-write memory,
  minimum-seeking network, migration threshold D;
* :mod:`repro.spd`       — the semantic paging disk (figure 6), MIMD
  and SIMD modes, and the fixed-paging baseline;
* :mod:`repro.andpar`    — §7 AND-parallel extensions: independence
  analysis, parallel conjunction executor, semi-join;
* :mod:`repro.workloads` — figure-1 family data and scalable workload
  generators.

Quick start::

    from repro import BLogEngine, Program
    from repro.workloads import FIGURE1_SOURCE

    engine = BLogEngine(Program.from_source(FIGURE1_SOURCE))
    engine.begin_session()
    result = engine.query("gf(sam,G)")
    print([str(a["G"]) for a in result.answers])   # ['den', 'doug']
    engine.end_session()
"""

from .core import BLogConfig, BLogEngine, BLogSystem, QueryResult
from .logic import Program, Solver
from .ortree import OrTree
from .weights import SessionManager, WeightStore

__version__ = "1.0.0"

__all__ = [
    "BLogEngine",
    "BLogSystem",
    "BLogConfig",
    "QueryResult",
    "Program",
    "Solver",
    "OrTree",
    "WeightStore",
    "SessionManager",
    "__version__",
]
