"""blogcheck core: findings, the rule registry, and suppression comments.

The serving layers built in PRs 1–3 rest on *written* contracts — global
weight stores are mutated only on the event-loop thread, everything that
crosses a process-lane pipe must be picklable, every span and duration
is recorded on every exit path.  ``blogcheck`` turns those contracts
into machine-checked invariants: a zero-dependency AST pass with one
rule per contract, run on every commit (``python -m repro.cli lint``).

A rule is a class with a ``code`` (``BLG001``…), registered with the
:func:`rule` decorator, exposing ``check(ctx)`` (per file) and an
optional ``finish()`` (cross-file state, e.g. duplicate metric names).

Suppressions are per-line comments::

    store.set_known(key, w)  # blogcheck: ignore[BLG001] — loop-thread helper

``ignore[BLG001,BLG004]`` silences several rules, bare ``ignore``
silences all of them; a suppression on its own comment line applies to
the next line.  Suppressed findings are counted, never silently lost.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional, Type

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "rule",
    "all_rules",
    "rules_by_code",
    "Suppressions",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str  # "BLG004"
    name: str  # "span-leak"
    path: str  # filesystem path as given to the runner
    module: str  # package-relative identity, e.g. "repro/service/server.py"
    line: int
    col: int
    message: str

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "name": self.name,
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Everything a rule may look at for one file."""

    path: Path
    module: str
    tree: ast.Module
    lines: list[str]


class Rule:
    """Base class for blogcheck rules.

    Subclasses set ``code``, ``name``, and ``summary`` and implement
    :meth:`check`.  Rules holding cross-file state (e.g. metric-name
    collisions) also implement :meth:`finish`, called once after every
    file was checked.
    """

    code: str = "BLG000"
    name: str = "unnamed"
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finish(self) -> Iterator[Finding]:
        return iter(())

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.code,
            name=self.name,
            path=str(ctx.path),
            module=ctx.module,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: dict[str, Type[Rule]] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry (by code)."""
    if cls.code in _REGISTRY:
        raise ValueError(f"rule code {cls.code!r} registered twice")
    _REGISTRY[cls.code] = cls
    return cls


def rules_by_code() -> dict[str, Type[Rule]]:
    """The registry, importing the built-in rule modules on first use."""
    from . import (  # noqa: F401
        rules_concurrency,
        rules_durability,
        rules_ipc,
        rules_telemetry,
    )

    return dict(sorted(_REGISTRY.items()))


def all_rules(select: Optional[Iterable[str]] = None) -> list[Rule]:
    """Fresh instances of every registered rule (or the selected codes)."""
    registry = rules_by_code()
    if select is None:
        return [cls() for cls in registry.values()]
    picked = []
    for code in select:
        code = code.strip().upper()
        if code not in registry:
            raise KeyError(
                f"unknown rule {code!r}; have {', '.join(registry)}"
            )
        picked.append(registry[code]())
    return picked


# -- suppressions ------------------------------------------------------------

_SUPPRESS_RE = re.compile(
    r"#\s*blogcheck:\s*ignore(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?"
)


class Suppressions:
    """Per-line ``# blogcheck: ignore[...]`` markers for one file.

    A marker suppresses findings on its own line; a marker on a line
    that holds nothing but the comment also suppresses the next line
    (so a suppression can sit above a long statement).
    """

    def __init__(self, lines: list[str]):
        #: line number -> frozenset of codes, or None meaning "all rules"
        self._by_line: dict[int, Optional[frozenset[str]]] = {}
        for i, text in enumerate(lines, start=1):
            m = _SUPPRESS_RE.search(text)
            if not m:
                continue
            codes = m.group("codes")
            value: Optional[frozenset[str]] = (
                frozenset(c.strip().upper() for c in codes.split(",") if c.strip())
                if codes
                else None
            )
            self._merge(i, value)
            if text[: m.start()].strip() == "":  # comment-only line
                self._merge(i + 1, value)

    def _merge(self, line: int, value: Optional[frozenset[str]]) -> None:
        prior = self._by_line.get(line, frozenset())
        if value is None or prior is None:
            self._by_line[line] = None
        else:
            self._by_line[line] = prior | value

    def matches(self, line: int, code: str) -> bool:
        value = self._by_line.get(line, frozenset())
        if value is None:
            return True
        return code.upper() in value

    def __len__(self) -> int:
        return len(self._by_line)
