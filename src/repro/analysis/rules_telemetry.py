"""Telemetry-contract rules: span/timer leaks, swallowed exceptions, and
metric-name hygiene.

* **BLG004** — a started span or timer must reach its ``end``/``observe``
  on *every* exit path, i.e. under ``try/finally`` (or with nothing that
  can raise in between).  PR 3 shipped exactly this class of bug: cache
  hits and overload rejections reported zero queue-wait/total durations
  because the recording sat on the happy path only.
* **BLG005** — service hot paths must not swallow exceptions: a bare
  ``except:`` anywhere, or a handler that neither re-raises, records,
  nor logs, turns an operational signal into silence.
* **BLG006** — metric series are registered lazily at call sites, so a
  typo mints a new, never-read series.  Every literal metric name must
  carry the ``blog_`` prefix, appear in
  :data:`repro.service.telemetry.METRIC_CATALOG` with the kind it is
  called as, and no name may be registered as two different kinds.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .core import FileContext, Finding, Rule, rule
from .rules_concurrency import dotted_name

__all__ = ["SpanLeakRule", "SwallowedExceptionRule", "MetricHygieneRule"]


# -- BLG004 ------------------------------------------------------------------


def _risky(stmt: ast.stmt, is_end_call=None) -> bool:
    """Can this statement plausibly raise?  Calls, awaits, and raises can;
    a nested function/class *definition* cannot (its body runs later).
    ``is_end_call`` exempts the end calls of the tracked span/timer
    itself, so ``if bad: trace.end(); return`` does not count as risk."""

    def walk(node: ast.AST) -> bool:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
            ):
                continue  # defining it cannot raise
            if isinstance(child, ast.Call):
                if is_end_call is not None and is_end_call(child):
                    continue
                return True
            if isinstance(child, (ast.Await, ast.Raise)):
                return True
            if walk(child):
                return True
        return False

    return isinstance(stmt, (ast.Raise,)) or walk(stmt)


@rule
class SpanLeakRule(Rule):
    """BLG004: a started span/timer with an exit path that skips the end.

    Tracked starts: ``v = <x>.start_trace(...)``, ``v = <x>.start_span(...)``
    and ``v = time.monotonic()`` / ``time.perf_counter()`` (the latter
    only when ``v`` later feeds an ``.observe(...)``/``.record(...)``).
    After the start, the enclosing block must either end ``v`` before
    anything that can raise, or enter a ``try`` whose ``finally`` ends
    ``v``.  Prefer the context-manager form (``with trace.span(...)``)
    where it fits — it cannot leak.
    """

    code = "BLG004"
    name = "span-leak"
    summary = "span/timer started without try/finally covering its end"

    SPAN_STARTS = frozenset({"start_trace", "start_span"})
    SPAN_ENDS = frozenset({"end", "end_span", "end_trace", "stop"})
    TIMER_STARTS = frozenset({"time.monotonic", "time.perf_counter"})
    TIMER_ENDS = frozenset({"observe", "record", "record_duration"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # the invariant governs the package; tests start/end spans in
        # deliberately odd orders to probe the tracer
        if not ctx.module.startswith("repro/"):
            return
        for func in ast.walk(ctx.tree):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, func)

    # -- per function ------------------------------------------------------
    def _check_function(
        self, ctx: FileContext, func: ast.AST
    ) -> Iterator[Finding]:
        for block in self._blocks(func):
            for i, stmt in enumerate(block):
                var, kind = self._tracked_start(stmt)
                if var is None:
                    continue
                if kind == "timer" and not self._timer_used(func, var):
                    continue
                if self._escapes(func, var):
                    continue
                finding = self._scan_remainder(
                    ctx, func, var, kind, stmt, block[i + 1 :]
                )
                if finding is not None:
                    yield finding

    def _blocks(self, func: ast.AST) -> list[list[ast.stmt]]:
        """Every statement list inside ``func``, excluding nested defs."""
        out: list[list[ast.stmt]] = []

        def walk(node: ast.AST) -> None:
            for field in ("body", "orelse", "finalbody"):
                block = getattr(node, field, None)
                if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                    out.append(block)
                    for child in block:
                        if not isinstance(
                            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                        ):
                            walk(child)
            for handler in getattr(node, "handlers", []) or []:
                out.append(handler.body)
                for child in handler.body:
                    if not isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    ):
                        walk(child)

        walk(func)
        return out

    def _tracked_start(
        self, stmt: ast.stmt
    ) -> tuple[Optional[str], Optional[str]]:
        if not (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
        ):
            return None, None
        call = stmt.value
        name = stmt.targets[0].id
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in self.SPAN_STARTS
        ):
            return name, "span"
        if dotted_name(call.func) in self.TIMER_STARTS:
            return name, "timer"
        return None, None

    def _is_end_call(self, call: ast.Call, var: str, kind: str) -> bool:
        """Is this call an end/record of the tracked span/timer ``var``?"""
        if not isinstance(call.func, ast.Attribute):
            return False
        if kind == "span":
            if call.func.attr not in self.SPAN_ENDS:
                return False
            # v.end(...) or tracer.end_span(v) style
            recv = call.func.value
            if isinstance(recv, ast.Name) and recv.id == var:
                return True
            return any(
                isinstance(a, ast.Name) and a.id == var for a in call.args
            )
        # timer: histogram.observe(now - t0) etc.
        return call.func.attr in self.TIMER_ENDS and any(
            isinstance(x, ast.Name) and x.id == var
            for a in call.args
            for x in ast.walk(a)
        )

    def _end_calls(self, node: ast.AST, var: str, kind: str) -> bool:
        """Does ``node``'s subtree contain an end call for ``var``?"""
        return any(
            isinstance(n, ast.Call) and self._is_end_call(n, var, kind)
            for n in ast.walk(node)
        )

    def _ends_unconditionally(self, stmt: ast.stmt, var: str, kind: str) -> bool:
        """A simple statement that ends ``var`` on its (only) path; an end
        buried in an ``if`` branch or ``except`` handler is conditional."""
        return isinstance(
            stmt, (ast.Expr, ast.Assign, ast.AugAssign, ast.Return)
        ) and self._end_calls(stmt, var, kind)

    def _timer_used(self, func: ast.AST, var: str) -> bool:
        return self._end_calls(func, var, "timer")

    def _escape_value(self, expr: Optional[ast.expr], var: str) -> bool:
        """Is ``var`` *itself* this expression (possibly inside a literal
        container)?  ``return trace`` hands ownership off; ``return
        f(trace)`` does not — the helper used the span, we still own it."""
        if expr is None:
            return False
        if isinstance(expr, ast.Name):
            return expr.id == var
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return any(self._escape_value(e, var) for e in expr.elts)
        if isinstance(expr, ast.Dict):
            return any(
                v is not None and self._escape_value(v, var)
                for v in expr.values
            )
        if isinstance(expr, ast.Await):
            return self._escape_value(expr.value, var)
        return False

    def _escapes(self, func: ast.AST, var: str) -> bool:
        """``var`` handed off: returned, yielded, or stored into an
        attribute/subscript — the new owner ends it then (passing as a
        call argument is *not* an escape)."""
        for n in ast.walk(func):
            if isinstance(n, (ast.Return, ast.Yield, ast.YieldFrom)):
                if self._escape_value(getattr(n, "value", None), var):
                    return True
            if isinstance(n, ast.Assign):
                if any(
                    not isinstance(t, ast.Name) for t in n.targets
                ) and self._escape_value(n.value, var):
                    return True
        return False

    def _scan_remainder(
        self,
        ctx: FileContext,
        func: ast.AST,
        var: str,
        kind: str,
        start: ast.stmt,
        rest: list[ast.stmt],
    ) -> Optional[Finding]:
        unit = "span" if kind == "span" else "timer"

        def is_end(call: ast.Call) -> bool:
            return self._is_end_call(call, var, kind)

        risky_seen = False
        for stmt in rest:
            if isinstance(stmt, ast.Try) and any(
                self._end_calls(s, var, kind) for s in stmt.finalbody
            ):
                if risky_seen:
                    return self.finding(
                        ctx,
                        start,
                        f"{unit} {var!r} is started here, but statements that "
                        "can raise sit between the start and the protecting "
                        "try/finally — an exception there leaks the "
                        f"{unit} open and its duration is never recorded "
                        "(the PR-3 duration-zero bug class); move the start "
                        "adjacent to the try, or widen the try/finally",
                    )
                return None  # protected
            if self._ends_unconditionally(stmt, var, kind):
                if risky_seen:
                    return self.finding(
                        ctx,
                        start,
                        f"{unit} {var!r} is started here but its end is not "
                        "under try/finally — an exception on the way leaks "
                        f"the {unit} open and its duration is never recorded "
                        "(the PR-3 duration-zero bug class); wrap the region "
                        f"in try/finally or end the {unit} first",
                    )
                return None  # ended with nothing risky in between
            if _risky(stmt, is_end):
                risky_seen = True
        if self._end_calls(func, var, kind):
            # the end lives outside this block (e.g. after an if): only
            # safe when nothing in between could raise
            if risky_seen:
                return self.finding(
                    ctx,
                    start,
                    f"{unit} {var!r} is started here but the path to its end "
                    "crosses statements that can raise, with no try/finally — "
                    f"an exception leaks the {unit} open; wrap the region in "
                    "try/finally",
                )
            return None
        return self.finding(
            ctx,
            start,
            f"{unit} {var!r} is started here and never ended in this "
            f"function — every started {unit} must be ended on every exit "
            "path (use try/finally or the context-manager form)",
        )


# -- BLG005 ------------------------------------------------------------------


@rule
class SwallowedExceptionRule(Rule):
    """BLG005: exception handlers that silence failures in hot paths.

    Scope: ``repro/service/``, ``repro/core/``, ``repro/weights/`` — the
    modules on the request path.  Flagged: any bare ``except:``, and any
    handler whose body neither raises, calls anything (logging,
    counting, replying), nor assigns (recording) — i.e. the error
    vanishes without an operational trace.  Intentional drops carry a
    suppression comment saying *why* they are safe.
    """

    code = "BLG005"
    name = "swallowed-exception"
    summary = "exception handler silences a failure on a service hot path"

    HOT_PATHS = ("repro/service/", "repro/core/", "repro/weights/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not any(ctx.module.startswith(p) for p in self.HOT_PATHS):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare 'except:' catches SystemExit/KeyboardInterrupt too "
                    "and hides the failure — name the exceptions and record "
                    "or re-raise them",
                )
                continue
            if not self._handles(node):
                caught = ast.unparse(node.type)
                yield self.finding(
                    ctx,
                    node,
                    f"'except {caught}' swallows the failure: the body "
                    "neither re-raises, logs, counts, nor records it — on a "
                    "hot path that turns real faults into silence; handle "
                    "it, or suppress with a comment saying why the drop is "
                    "safe",
                )

    @staticmethod
    def _handles(handler: ast.ExceptHandler) -> bool:
        """A handler handles when it re-raises, calls anything (log,
        count, reply), records (assign), or returns a *value* (the error
        is translated for the caller).  ``pass``, ``continue``, and bare
        ``return`` drop the failure on the floor."""
        for stmt in handler.body:
            for n in ast.walk(stmt):
                if isinstance(
                    n, (ast.Raise, ast.Call, ast.Assign, ast.AugAssign, ast.AnnAssign)
                ):
                    return True
                if isinstance(n, ast.Return) and n.value is not None:
                    return True
        return False


# -- BLG006 ------------------------------------------------------------------


@rule
class MetricHygieneRule(Rule):
    """BLG006: literal metric names must be prefixed, cataloged, and
    kind-consistent.

    :class:`~repro.service.telemetry.MetricsRegistry` registers series
    lazily — whatever name a call site passes becomes a series.  That
    makes typos silent: the dashboards read ``blog_requests_total`` while
    the code increments ``blog_request_total``.  The catalog in
    ``repro/service/telemetry.py`` is the single source of truth; this
    rule pins every literal registration to it.
    """

    code = "BLG006"
    name = "metric-name-hygiene"
    summary = "unprefixed, uncataloged, or kind-conflicting metric name"

    KINDS = frozenset({"counter", "gauge", "histogram"})
    PREFIX = "blog_"

    def __init__(self) -> None:
        #: name -> (kind, module, line) of the first registration seen
        self._seen: dict[str, tuple[str, str, int]] = {}
        self._conflicts: list[Finding] = []

    @staticmethod
    def _catalog() -> dict[str, str]:
        from ..service.telemetry import METRIC_CATALOG

        return METRIC_CATALOG

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # the catalog pins the package's series; tests mint scratch names
        if not ctx.module.startswith("repro/"):
            return
        catalog = self._catalog()
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self.KINDS
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue
            kind = node.func.attr
            name = node.args[0].value
            if not name.startswith(self.PREFIX):
                yield self.finding(
                    ctx,
                    node,
                    f"metric {name!r} lacks the {self.PREFIX!r} prefix — all "
                    "service series share the prefix so exposition consumers "
                    "can scrape them as one family",
                )
            elif name not in catalog:
                yield self.finding(
                    ctx,
                    node,
                    f"metric {name!r} is not declared in METRIC_CATALOG "
                    "(repro/service/telemetry.py) — add it there (name -> "
                    "kind) so dashboards and docs track every series",
                )
            elif catalog[name] != kind:
                yield self.finding(
                    ctx,
                    node,
                    f"metric {name!r} is cataloged as a {catalog[name]} but "
                    f"registered here as a {kind} — one name has one kind "
                    "(the registry raises at runtime on the second kind)",
                )
            prior = self._seen.get(name)
            if prior is None:
                self._seen[name] = (kind, ctx.module, node.lineno)
            elif prior[0] != kind:
                self._conflicts.append(
                    self.finding(
                        ctx,
                        node,
                        f"metric {name!r} registered as a {kind} here but as "
                        f"a {prior[0]} at {prior[1]}:{prior[2]} — one name "
                        "has one kind",
                    )
                )

    def finish(self) -> Iterator[Finding]:
        yield from self._conflicts
