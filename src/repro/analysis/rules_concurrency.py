"""Concurrency-contract rules: store-mutation discipline and blocking
calls inside coroutines.

* **BLG001** — global :class:`~repro.weights.store.WeightStore` mutators
  and session-merge APIs may only be called from the modules that own
  the loop-thread mutation protocol (the weights package itself, the
  router's merge path, and the lane-worker child loop).
* **BLG002** — an ``async def`` must not call known-blocking synchronous
  APIs (``time.sleep``, subprocess spawns, sync pipe/file IO): one
  blocking call stalls the event loop and with it every lane queue,
  admission decision, and TCP client of the service.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .core import FileContext, Finding, Rule, rule

__all__ = ["StoreMutationRule", "BlockingAsyncRule"]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_attr(call: ast.Call) -> Optional[str]:
    """The method name of an attribute call (``x.set_known`` → ``set_known``)."""
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


@rule
class StoreMutationRule(Rule):
    """BLG001: weight-store mutations outside the whitelisted modules.

    The service's concurrency contract (see ``repro/service/server.py``)
    makes the event-loop thread the only mutator of global weight
    stores.  Statically we cannot see threads, but we *can* see modules:
    every legitimate mutation site lives in the weights package, the
    router's end-of-session merge path (loop-thread by contract), or
    the lane-worker child loop (which owns its mirror outright).  A
    mutator call anywhere else is a new mutation site that the contract
    never audited — flag it.
    """

    code = "BLG001"
    name = "store-mutation-discipline"
    summary = (
        "WeightStore mutators / session merges called outside the "
        "whitelisted loop-thread modules"
    )

    #: unambiguous mutator method/function names
    MUTATORS = frozenset({"set_known", "set_infinite", "apply_delta"})
    #: merge APIs that write a global store
    MERGE_APIS = frozenset({"merge_conservative", "merge_strong"})
    #: generic names only flagged when the receiver looks like a store
    STORE_GUARDED = frozenset({"forget", "clear"})
    #: module prefixes (or exact files) allowed to mutate
    ALLOWED_MODULES = (
        "repro/weights/",
        "repro/service/router.py",
        "repro/core/procpool.py",
    )

    def _allowed(self, module: str) -> bool:
        return any(
            module == allow or module.startswith(allow)
            for allow in self.ALLOWED_MODULES
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # the contract governs the package; tests exercise mutators directly
        if not ctx.module.startswith("repro/") or self._allowed(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            attr = call_attr(node)
            bare = node.func.id if isinstance(node.func, ast.Name) else None
            name = attr or bare
            if name in self.MUTATORS or name in self.MERGE_APIS:
                yield self.finding(
                    ctx,
                    node,
                    f"call to {name}() mutates a weight store outside the "
                    "whitelisted modules "
                    f"({', '.join(self.ALLOWED_MODULES)}); global stores are "
                    "loop-thread-only — route the write through the router's "
                    "merge path or a weights API",
                )
            elif attr in self.STORE_GUARDED and isinstance(
                node.func, ast.Attribute
            ):
                receiver = dotted_name(node.func.value) or ""
                if "store" in receiver.lower():
                    yield self.finding(
                        ctx,
                        node,
                        f"{receiver}.{attr}() mutates a weight store outside "
                        "the whitelisted modules; global stores are "
                        "loop-thread-only",
                    )


@rule
class BlockingAsyncRule(Rule):
    """BLG002: blocking synchronous calls inside ``async def``.

    The whole service multiplexes on one event loop; ``time.sleep`` or a
    sync pipe read inside a coroutine freezes every in-flight request.
    Blocking work belongs on the worker/IO executors
    (:meth:`~repro.service.workers.WorkerPool.run_sync`,
    ``loop.run_in_executor``), which is exactly how the lane backends
    ship their pipe roundtrips off the loop.
    """

    code = "BLG002"
    name = "blocking-call-in-async"
    summary = "known-blocking sync call inside an async def"

    #: fully dotted call targets that block
    BLOCKING_DOTTED = frozenset(
        {
            "time.sleep",
            "os.system",
            "os.popen",
            "os.waitpid",
            "subprocess.run",
            "subprocess.call",
            "subprocess.check_call",
            "subprocess.check_output",
            "subprocess.Popen",
            "socket.create_connection",
            "urllib.request.urlopen",
        }
    )
    #: method names that block regardless of receiver (sync pipe/file IO)
    BLOCKING_METHODS = frozenset(
        {"send_bytes", "recv_bytes", "roundtrip", "read_text", "write_text"}
    )
    #: bare builtins that block
    BLOCKING_BARE = frozenset({"open", "input"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        findings: list[Finding] = []

        def visit(node: ast.AST, in_async: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.AsyncFunctionDef):
                    visit(child, True)
                elif isinstance(child, (ast.FunctionDef, ast.Lambda)):
                    visit(child, False)
                else:
                    if in_async and isinstance(child, ast.Call):
                        self._check_call(ctx, child, findings)
                    visit(child, in_async)

        visit(ctx.tree, False)
        yield from findings

    def _check_call(
        self, ctx: FileContext, call: ast.Call, findings: list[Finding]
    ) -> None:
        dotted = dotted_name(call.func)
        attr = call_attr(call)
        bare = call.func.id if isinstance(call.func, ast.Name) else None
        why = None
        if dotted in self.BLOCKING_DOTTED:
            why = f"{dotted}() blocks the event loop"
        elif attr in self.BLOCKING_METHODS:
            why = (
                f".{attr}() is synchronous pipe/file IO and blocks the "
                "event loop"
            )
        elif bare in self.BLOCKING_BARE:
            why = f"builtin {bare}() is synchronous IO and blocks the event loop"
        if why is not None:
            findings.append(
                self.finding(
                    ctx,
                    call,
                    f"{why}; inside async def it stalls every lane, admission "
                    "decision, and TCP client — run it via "
                    "loop.run_in_executor / the pool's IO executor instead",
                )
            )
