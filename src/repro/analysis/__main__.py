"""``python -m repro.analysis`` — direct entry to the linter."""

import sys

from ..cli import main

if __name__ == "__main__":
    sys.exit(main(["lint", *sys.argv[1:]]))
