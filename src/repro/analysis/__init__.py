"""blogcheck: AST-based invariant linter for the B-LOG service contracts.

Zero dependencies; six rules (BLG001–BLG006) covering the concurrency,
IPC, and telemetry contracts written down in PRs 1–3.  Run it with
``python -m repro.cli lint`` (or ``python -m repro.analysis``); see
``docs/ANALYSIS.md`` for the rule catalog and suppression syntax.
"""

from .core import FileContext, Finding, Rule, Suppressions, all_rules, rule, rules_by_code
from .report import render_github, render_json, render_text
from .runner import AnalysisResult, analyze_paths, iter_python_files, module_identity

__all__ = [
    "AnalysisResult",
    "FileContext",
    "Finding",
    "Rule",
    "Suppressions",
    "all_rules",
    "analyze_paths",
    "iter_python_files",
    "module_identity",
    "render_github",
    "render_json",
    "render_text",
    "rule",
    "rules_by_code",
]
