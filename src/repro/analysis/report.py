"""blogcheck reporters: human text, stable JSON, GitHub annotations."""

from __future__ import annotations

import json
from collections import Counter

from .runner import AnalysisResult

__all__ = ["render_text", "render_json", "render_github"]

#: bump only on breaking schema changes; tests pin this
JSON_SCHEMA_VERSION = 1


def render_text(result: AnalysisResult) -> str:
    """One line per finding, a per-rule tally, and a verdict."""
    out: list[str] = []
    for f in result.findings:
        out.append(f"{f.path}:{f.line}:{f.col}: {f.rule} [{f.name}] {f.message}")
    if result.findings:
        out.append("")
        tally = Counter(f.rule for f in result.findings)
        parts = ", ".join(f"{code}: {n}" for code, n in sorted(tally.items()))
        out.append(
            f"blogcheck: {len(result.findings)} finding(s) "
            f"({parts}) in {result.files} file(s)"
        )
    else:
        out.append(f"blogcheck: clean — {result.files} file(s) checked")
    if result.suppressed:
        out.append(f"blogcheck: {len(result.suppressed)} finding(s) suppressed")
    return "\n".join(out)


def render_json(result: AnalysisResult) -> str:
    """Machine-readable report with a pinned schema."""
    doc = {
        "version": JSON_SCHEMA_VERSION,
        "files": result.files,
        "counts": dict(sorted(Counter(f.rule for f in result.findings).items())),
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": [f.to_dict() for f in result.suppressed],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def render_github(result: AnalysisResult) -> str:
    """GitHub Actions workflow commands — one ``::error`` per finding, so
    CI annotates the offending file:line directly in the job output."""
    out: list[str] = []
    for f in result.findings:
        message = f.message.replace("%", "%25").replace("\n", "%0A")
        out.append(
            f"::error file={f.path},line={f.line},col={f.col},"
            f"title=blogcheck {f.rule} ({f.name})::{message}"
        )
    return "\n".join(out)
