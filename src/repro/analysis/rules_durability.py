"""Durability-contract rule: the atomic-write discipline in ``repro/weights``.

The persistence layer (PR 5) promises that a crash at *any* instant
leaves every on-disk store either old or new, never torn.  That rests
on one idiom, used everywhere state is persisted::

    fh = open(tmp, "w")           # write the new content to a tmp file
    ...; fh.flush()
    os.fsync(fh.fileno())          # durable before it becomes visible
    fh.close()
    os.replace(tmp, path)          # atomic swap

Two ways code quietly breaks the promise:

* ``os.replace`` without a preceding ``os.fsync`` — the rename is
  atomic in the *namespace*, but the new file's **data** may still sit
  in the page cache; a power cut after the rename can leave the final
  path holding a zero-length or partial file.
* handle-less write APIs (``Path.write_text`` / ``write_bytes``) — no
  handle means no fsync and no tmp-file swap; the write is torn-able by
  construction.  Exactly the bug class the original ``save_store``
  shipped.

**BLG007** pins the idiom for every file under ``repro/weights/``
(where the durable stores live).  Scoping is lexical per function: an
``os.replace`` must see an ``os.fsync`` earlier in the same function.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .core import FileContext, Finding, Rule, rule
from .rules_concurrency import dotted_name

__all__ = ["AtomicWriteRule"]


@rule
class AtomicWriteRule(Rule):
    """BLG007: persistence writes in ``repro/weights`` must follow the
    fsync-then-replace discipline."""

    code = "BLG007"
    name = "unsynced-persistence"
    summary = "weight-store write without fsync-before-replace discipline"

    SCOPE = "repro/weights/"
    HANDLELESS = frozenset({"write_text", "write_bytes"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.module.startswith(self.SCOPE):
            return
        yield from self._check_scope(ctx, ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(ctx, node)

    # -- one lexical scope (module body or one function body) --------------
    def _check_scope(self, ctx: FileContext, scope: ast.AST) -> Iterator[Finding]:
        calls = self._own_calls(scope)
        fsync_lines = [
            c.lineno for c in calls if dotted_name(c.func) == "os.fsync"
        ]
        for call in calls:
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in self.HANDLELESS
            ):
                yield self.finding(
                    ctx,
                    call,
                    f"'{call.func.attr}' persists weight-store state without "
                    "a file handle — there is nothing to fsync and no atomic "
                    "tmp-file swap, so a crash mid-write leaves a torn file; "
                    "use open() + flush + os.fsync + os.replace "
                    "(see save_store / DurableStore.write_checkpoint)",
                )
                continue
            if dotted_name(call.func) == "os.replace":
                if not any(line < call.lineno for line in fsync_lines):
                    yield self.finding(
                        ctx,
                        call,
                        "os.replace without a preceding os.fsync in this "
                        "function: the rename is atomic in the namespace but "
                        "the new file's data may still sit in the page cache — "
                        "a power cut after the rename leaves the destination "
                        "truncated; fsync the written handle first",
                    )

    @staticmethod
    def _own_calls(scope: ast.AST) -> list[ast.Call]:
        """Every call lexically inside ``scope``, excluding nested
        function/class bodies (each gets its own scope check)."""
        out: list[ast.Call] = []

        def walk(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
                ):
                    continue
                if isinstance(child, ast.Call):
                    out.append(child)
                walk(child)

        walk(scope)
        return out
