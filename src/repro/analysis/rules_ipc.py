"""IPC-contract rule: pickle-unsafe payloads on lane pipes.

* **BLG003** — everything crossing a process-lane pipe is pickled
  (:meth:`~repro.service.workers.ProcessLaneBackend.call`); an object
  that cannot be pickled fails *at send time*, mid-request, and the
  backend treats the broken roundtrip like a dead worker.  The classic
  offenders are statically visible: lambdas, locally-defined functions
  and classes (closures), generator expressions, and open file handles.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .core import FileContext, Finding, Rule, rule
from .rules_concurrency import dotted_name

__all__ = ["PickleSafetyRule"]


@rule
class PickleSafetyRule(Rule):
    """BLG003: provably unpicklable objects reaching a lane send path.

    Checked payload expressions: the argument of ``pickle.dumps(...)``
    (and bare ``dumps(...)`` when imported from pickle) and the message
    argument of ``remote_call(lane, msg, ...)``.  A payload is flagged
    when its expression tree contains a lambda, a generator expression,
    an ``open(...)`` call, or a name bound in the *enclosing function*
    to a nested ``def``/``class``/lambda or an ``open(...)`` result —
    all of which the pickle protocol rejects (or, for handles, cannot
    transplant into another process).
    """

    code = "BLG003"
    name = "pickle-unsafe-ipc-payload"
    summary = "unpicklable object (lambda/closure/handle) in a lane IPC payload"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        pickle_dumps_imported = self._has_from_pickle_import_dumps(ctx.tree)
        findings: list[Finding] = []

        def visit(node: ast.AST, local_defs: dict[str, str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    # the nested def's *name* is a closure in this scope …
                    scope = dict(local_defs)
                    if not isinstance(node, ast.Module):
                        local_defs[child.name] = "locally-defined function"
                    # … and inside it, a fresh scope inherits nothing local
                    visit(child, scope if isinstance(node, ast.Module) else dict(local_defs))
                    continue
                if isinstance(child, ast.ClassDef):
                    if not isinstance(node, ast.Module):
                        local_defs[child.name] = "locally-defined class"
                    visit(child, dict(local_defs))
                    continue
                if isinstance(child, ast.Assign) and len(child.targets) == 1:
                    target = child.targets[0]
                    if isinstance(target, ast.Name):
                        reason = self._binding_reason(child.value)
                        if reason is not None and not isinstance(node, ast.Module):
                            local_defs[target.id] = reason
                        elif target.id in local_defs:
                            del local_defs[target.id]  # rebound to something safe
                if isinstance(child, ast.Call):
                    payload = self._payload_of(child, pickle_dumps_imported)
                    if payload is not None:
                        self._check_payload(ctx, child, payload, local_defs, findings)
                visit(child, local_defs)

        visit(ctx.tree, {})
        yield from findings

    # -- what counts as a send path ----------------------------------------
    @staticmethod
    def _has_from_pickle_import_dumps(tree: ast.Module) -> bool:
        for node in tree.body:
            if isinstance(node, ast.ImportFrom) and node.module == "pickle":
                if any(a.name == "dumps" for a in node.names):
                    return True
        return False

    @staticmethod
    def _payload_of(
        call: ast.Call, pickle_dumps_imported: bool
    ) -> Optional[ast.expr]:
        dotted = dotted_name(call.func)
        if dotted == "pickle.dumps" and call.args:
            return call.args[0]
        if (
            pickle_dumps_imported
            and isinstance(call.func, ast.Name)
            and call.func.id == "dumps"
            and call.args
        ):
            return call.args[0]
        name = (
            call.func.attr
            if isinstance(call.func, ast.Attribute)
            else call.func.id
            if isinstance(call.func, ast.Name)
            else None
        )
        if name == "remote_call" and len(call.args) >= 2:
            return call.args[1]  # remote_call(lane, msg, timeout)
        return None

    # -- what counts as unpicklable ----------------------------------------
    @staticmethod
    def _binding_reason(value: ast.expr) -> Optional[str]:
        if isinstance(value, ast.Lambda):
            return "lambda"
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            if value.func.id == "open":
                return "open file handle"
        return None

    def _check_payload(
        self,
        ctx: FileContext,
        call: ast.Call,
        payload: ast.expr,
        local_defs: dict[str, str],
        findings: list[Finding],
    ) -> None:
        for node in ast.walk(payload):
            why = None
            if isinstance(node, ast.Lambda):
                why = "a lambda"
            elif isinstance(node, ast.GeneratorExp):
                why = "a generator expression"
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "open"
            ):
                why = "an open file handle"
            elif isinstance(node, ast.Name) and node.id in local_defs:
                why = f"{local_defs[node.id]} ({node.id!r})"
            if why is not None:
                findings.append(
                    self.finding(
                        ctx,
                        call,
                        f"IPC payload contains {why}, which pickle rejects — "
                        "the lane roundtrip would fail mid-request and read "
                        "as a dead worker; ship plain data (dicts, tuples, "
                        "module-level classes) across the pipe",
                    )
                )
                return  # one finding per payload is enough
