"""blogcheck runner: walk files, parse, apply rules, honor suppressions."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional

from .core import FileContext, Finding, Rule, Suppressions, all_rules

__all__ = ["AnalysisResult", "analyze_paths", "iter_python_files", "module_identity"]


@dataclass
class AnalysisResult:
    """Outcome of one blogcheck run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Every ``.py`` under the given files/directories, sorted, no dupes."""
    seen: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            continue
        for cand in candidates:
            if "__pycache__" in cand.parts:
                continue
            resolved = cand.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield cand


def module_identity(path: Path) -> str:
    """Package-relative identity: ``.../src/repro/weights/store.py`` →
    ``repro/weights/store.py``.  Rule whitelists match on this, so the
    same rules apply no matter where the tree is checked out (including
    tmpdir fixtures in tests).  Falls back to the bare filename when no
    ``repro`` directory is on the path."""
    parts = path.resolve().parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return path.name


def analyze_paths(
    paths: Iterable[Path],
    select: Optional[Iterable[str]] = None,
    rules: Optional[list[Rule]] = None,
) -> AnalysisResult:
    """Run blogcheck over ``paths`` and return the collected result.

    A file that fails to parse yields a single ``BLG000`` finding (a
    syntax error is never a pass).  Suppressed findings are kept on
    ``result.suppressed`` for reporting — silence is visible.
    """
    active = rules if rules is not None else all_rules(select)
    result = AnalysisResult()
    for path in iter_python_files(paths):
        result.files += 1
        module = module_identity(path)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", 0) or 0
            result.findings.append(
                Finding(
                    rule="BLG000",
                    name="parse-error",
                    path=str(path),
                    module=module,
                    line=line,
                    col=0,
                    message=f"file could not be analyzed: {exc}",
                )
            )
            continue
        lines = source.splitlines()
        ctx = FileContext(path=path, module=module, tree=tree, lines=lines)
        suppressions = Suppressions(lines)
        for r in active:
            for finding in r.check(ctx):
                if suppressions.matches(finding.line, finding.rule):
                    result.suppressed.append(finding)
                else:
                    result.findings.append(finding)
    for r in active:
        for finding in r.finish():
            result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    result.suppressed.sort(key=lambda f: (f.path, f.line, f.rule))
    return result
