"""Processor memory models: conventional RAM vs multiply-write RAM (§6).

"A multitasked processor will spend a lot of time copying data received
from the disk, and data in its own memory, as new chains in the search
tree are sprouted.  [...] Thus, the processor memory should be designed
to write multiply.  Using a shift register inside the memory, along
side the address decoder, [...] by setting several bits in the shift
register (using the decoder), we can write the contents of all words
that have a 1 in the shift register.  We could then shift the whole bit
pattern down one location [...] a block of data can be copied many
times into memory."

Two layers:

* **functional** — :class:`MultiWriteRAM` actually stores words and
  implements ``multi_copy`` via the shift-register semantics (set one
  bit per destination start address, write word 0 of all copies in one
  access, shift, write word 1, ...), so tests can verify the copies are
  bit-exact;
* **cost** — both classes report the cycle cost of a k-fold copy of a
  w-word block: conventional ``k*w`` write accesses (+ ``w`` reads),
  multiply-write ``k`` decoder bit-set accesses + ``w`` read-write
  passes.  The E7 ablation compares them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["CopyCost", "ConventionalRAM", "MultiWriteRAM"]


@dataclass(frozen=True)
class CopyCost:
    """Cycle accounting of one block-copy operation."""

    reads: int
    writes: int
    setup: int  # decoder/shift-register bit set operations

    @property
    def cycles(self) -> int:
        return self.reads + self.writes + self.setup


class ConventionalRAM:
    """Single-write random access memory."""

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError("memory size must be positive")
        self.words = [0] * size
        self.read_ops = 0
        self.write_ops = 0

    def __len__(self) -> int:
        return len(self.words)

    def read(self, addr: int) -> int:
        self.read_ops += 1
        return self.words[addr]

    def write(self, addr: int, value: int) -> None:
        self.write_ops += 1
        self.words[addr] = value

    def load_block(self, addr: int, data: Sequence[int]) -> None:
        for i, v in enumerate(data):
            self.write(addr + i, v)

    def read_block(self, addr: int, length: int) -> list[int]:
        return [self.read(addr + i) for i in range(length)]

    def multi_copy(self, src: int, dsts: Sequence[int], length: int) -> CopyCost:
        """Copy ``length`` words starting at ``src`` to each address in
        ``dsts`` — one write access per destination word."""
        block = self.read_block(src, length)
        for d in dsts:
            self.load_block(d, block)
        return CopyCost(reads=length, writes=length * len(dsts), setup=0)

    @staticmethod
    def copy_cost(length: int, copies: int) -> CopyCost:
        """Analytic cost without touching memory."""
        return CopyCost(reads=length, writes=length * copies, setup=0)


class MultiWriteRAM(ConventionalRAM):
    """RAM with the §6 shift-register multiple-write mechanism.

    The shift register holds one bit per word.  ``multi_copy`` sets the
    bit at each destination start address (``setup`` accesses), then for
    each of the ``length`` source words performs one read plus **one**
    multi-write access that stores the word at every 1-bit, and shifts
    the whole pattern down one position.
    """

    def __init__(self, size: int):
        super().__init__(size)
        self.shift_register = [False] * size
        self.multi_write_ops = 0

    def set_copy_bits(self, addrs: Iterable[int]) -> int:
        """Set shift-register bits at the given addresses; returns count."""
        count = 0
        for a in addrs:
            self.shift_register[a] = True
            count += 1
        return count

    def clear_bits(self) -> None:
        self.shift_register = [False] * len(self.words)

    def multi_write(self, value: int) -> int:
        """Write ``value`` at every 1-bit in one access; returns fan-out."""
        self.multi_write_ops += 1
        fan = 0
        for addr, bit in enumerate(self.shift_register):
            if bit:
                self.words[addr] = value
                fan += 1
        return fan

    def shift_down(self) -> None:
        """Shift the whole bit pattern one word toward higher addresses."""
        self.shift_register = [False] + self.shift_register[:-1]

    def multi_copy(self, src: int, dsts: Sequence[int], length: int) -> CopyCost:
        for d in dsts:
            if d + length > len(self.words):
                raise IndexError("destination block out of range")
        self.clear_bits()
        setup = self.set_copy_bits(dsts)
        for i in range(length):
            word = self.read(src + i)
            self.multi_write(word)
            self.shift_down()
        self.clear_bits()
        # one multi-write access per word counts as a single write cycle
        return CopyCost(reads=length, writes=length, setup=setup)

    @staticmethod
    def copy_cost(length: int, copies: int) -> CopyCost:
        return CopyCost(reads=length, writes=length, setup=copies)
