"""Batcher's odd-even merge sorting network (§3, reference [1]).

"A sorting network like Batcher's could be used to sort the bounds,
assigning the n lowest bounds to the n processors and communicating the
associated chains to them to work on.  A sorting network is costly, and
communication costs restrict this approach" — §3 then replaces it with
the minimum-seeking tree of §6.  This module builds the actual network
so E10 can quantify that design decision: comparator count O(n log² n)
and gate depth for Batcher vs the O(n) comparators / O(log n) depth of
a min tree that only finds *one* minimum.

The network is represented as explicit comparator stages, so both the
hardware cost (comparators, depth) and the functional behaviour
(``sort``/``select_lowest``) come from one construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, TypeVar

__all__ = ["SortingNetwork", "batcher_network", "min_tree_cost"]

T = TypeVar("T")


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p *= 2
    return p


def _oddeven_merge(
    lo: int, hi: int, r: int, comparators: list[tuple[int, int]]
) -> None:
    """Batcher odd-even merge over indices lo..hi (inclusive), stride r."""
    step = r * 2
    if step < hi - lo:
        _oddeven_merge(lo, hi, step, comparators)
        _oddeven_merge(lo + r, hi, step, comparators)
        for i in range(lo + r, hi - r, step):
            comparators.append((i, i + r))
    else:
        comparators.append((lo, lo + r))


def _oddeven_sort(lo: int, hi: int, comparators: list[tuple[int, int]]) -> None:
    """Sort indices lo..hi (inclusive); hi - lo + 1 must be a power of 2."""
    if hi - lo >= 1:
        mid = lo + (hi - lo) // 2
        _oddeven_sort(lo, mid, comparators)
        _oddeven_sort(mid + 1, hi, comparators)
        _oddeven_merge(lo, hi, 1, comparators)


@dataclass
class SortingNetwork:
    """A fixed comparator network for ``size`` inputs.

    ``comparators`` is a flat list of (i, j) with i < j: each places
    min at i, max at j.  ``stages`` groups them into layers of
    non-conflicting comparators — the gate *depth* of the hardware.
    """

    size: int
    comparators: list[tuple[int, int]]

    @property
    def comparator_count(self) -> int:
        return len(self.comparators)

    @property
    def stages(self) -> list[list[tuple[int, int]]]:
        """Greedy layering: a comparator joins the earliest stage where
        neither of its wires is already used."""
        layers: list[list[tuple[int, int]]] = []
        wire_free_at = [0] * self.size
        for (i, j) in self.comparators:
            at = max(wire_free_at[i], wire_free_at[j])
            while len(layers) <= at:
                layers.append([])
            layers[at].append((i, j))
            wire_free_at[i] = at + 1
            wire_free_at[j] = at + 1
        return layers

    @property
    def depth(self) -> int:
        return len(self.stages)

    def sort(self, values: Sequence[T]) -> list[T]:
        """Run the network; input shorter than ``size`` is padded at the
        top with +infinity sentinels (they sink to the end)."""
        if len(values) > self.size:
            raise ValueError(f"network sorts at most {self.size} values")
        inf = float("inf")
        data: list = list(values) + [inf] * (self.size - len(values))
        for i, j in self.comparators:
            if data[j] < data[i]:
                data[i], data[j] = data[j], data[i]
        return data[: len(values)]

    def select_lowest(self, values: Sequence[T], n: int) -> list[T]:
        """The §3 operation: the n lowest bounds, sorted."""
        return self.sort(values)[:n]


def batcher_network(size: int) -> SortingNetwork:
    """Build Batcher's odd-even mergesort network for ``size`` inputs
    (rounded up to the next power of two internally)."""
    if size < 1:
        raise ValueError("network needs at least one input")
    padded = _next_pow2(size)
    comparators: list[tuple[int, int]] = []
    if padded > 1:
        _oddeven_sort(0, padded - 1, comparators)
    return SortingNetwork(size=padded, comparators=comparators)


def min_tree_cost(size: int) -> dict:
    """Hardware cost of the §6 minimum-seeking tree for comparison:
    size-1 two-input min nodes, ceil(log2 size) depth, one output."""
    import math

    return {
        "comparators": max(0, size - 1),
        "depth": max(1, math.ceil(math.log2(size))) if size > 1 else 0,
        "outputs": 1,
    }
