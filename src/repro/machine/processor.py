"""Processor state for the simulated B-LOG machine (§6).

"Each of N processors has the capability of supporting M tasks at the
same time.  Each processor keeps track of the weights of the chains it
has found and is able to send the minimum bound into a minimum seeking
network."

A :class:`ProcessorState` owns:

* a **chain pool** — the open OR-tree nodes this processor holds,
  ordered by bound (a heap);
* a **local memory** — an LRU set of database block ids paged in from
  the SPDs ("processors with local memories, which contain copies of
  small subsets of the global graph");
* one **compute resource** of capacity 1 — the M tasks multiplex on a
  single execution pipeline, which is exactly how multitasking hides
  disk latency: while one task waits on a page-in, another task holds
  the pipeline.

Work accounting distinguishes compute-busy, disk-wait and idle cycles
so E5 can report utilization.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from .sim import Resource, Simulator

__all__ = ["LocalMemory", "ProcessorState"]

INF = float("inf")


class LocalMemory:
    """LRU cache of database block ids held in processor memory."""

    def __init__(self, capacity_blocks: int = 64):
        if capacity_blocks < 1:
            raise ValueError("local memory needs at least one block")
        self.capacity = capacity_blocks
        self._blocks: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def touch(self, block_id: int) -> bool:
        """Access a block; True on hit.  Misses must be followed by
        :meth:`insert` once the page-in completes."""
        if block_id in self._blocks:
            self._blocks.move_to_end(block_id)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, block_id: int) -> None:
        self._blocks[block_id] = None
        self._blocks.move_to_end(block_id)
        while len(self._blocks) > self.capacity:
            self._blocks.popitem(last=False)

    def insert_many(self, block_ids) -> None:
        for b in block_ids:
            self.insert(b)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class ProcessorStats:
    expansions: int = 0
    solutions_found: int = 0
    failures_found: int = 0
    compute_cycles: float = 0.0
    disk_wait_cycles: float = 0.0
    migrations_in: int = 0
    migrations_out: int = 0
    network_waits: int = 0


class ProcessorState:
    """One processor of the B-LOG machine: chain pool + local memory +
    a single compute pipeline shared by its M tasks."""

    def __init__(
        self,
        proc_id: int,
        sim: Simulator,
        memory_blocks: int = 64,
        tasks: int = 2,
    ):
        self.proc_id = proc_id
        self.tasks = tasks
        self.pool: list[tuple[float, int, int]] = []  # (bound, seq, node id)
        self._seq = 0
        self.memory = LocalMemory(memory_blocks)
        self.pipeline: Resource = sim.resource(1, f"cpu{proc_id}")
        self.stats = ProcessorStats()

    # -- chain pool --------------------------------------------------------------
    def push(self, bound: float, nid: int) -> None:
        heapq.heappush(self.pool, (bound, self._seq, nid))
        self._seq += 1

    def pop_min(self) -> Optional[tuple[float, int]]:
        """Remove and return (bound, node id) of the best local chain."""
        if not self.pool:
            return None
        bound, _, nid = heapq.heappop(self.pool)
        return bound, nid

    def peek_min(self) -> float:
        """Best local bound (INF when the pool is empty) — the value the
        processor publishes to the minimum-seeking network."""
        return self.pool[0][0] if self.pool else INF

    def __len__(self) -> int:
        return len(self.pool)
