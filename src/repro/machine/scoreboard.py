"""Scoreboard-driven processor controller (§6).

"Recall that in the CDC 6600, a scoreboard is used to keep busy a
collection of adders, multipliers and the like [...] We should build
some specialized units, for example, to instantiate variables.  When a
unit has completed its operation, it should consult the scoreboard to
determine what operation it can do next.  [...] a single processor
will thus be multitasked, able to develop several chains of the search
tree at one time."

The model: a pool of :class:`FunctionalUnit` instances per *kind*
(``unify``, ``copy``, ``search``, ``arith``, ``select``), a scoreboard
that issues :class:`MicroOp` s when (a) a unit of the right kind is
free (structural hazard), (b) all source tags have been produced (RAW
hazard), and (c) no in-flight op writes the same destination tag (WAW
hazard).  Ops are tagged dataflow, not registers — the "local
interpreter of the B-LOG language in terms of production rules": each
unitary action produces a value tag consumed by later actions.

:func:`expansion_program` compiles one OR-node expansion into a micro-op
DAG (search for candidates → per-candidate unify → per-child copy →
select), which is what the processor model feeds the scoreboard to cost
an expansion; independent candidates overlap on parallel units.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

__all__ = [
    "MicroOp",
    "FunctionalUnit",
    "Scoreboard",
    "ScoreboardStats",
    "DEFAULT_LATENCIES",
    "DEFAULT_UNIT_COUNTS",
    "expansion_program",
]

DEFAULT_LATENCIES: dict[str, int] = {
    "search": 4,  # candidate lookup in the paged subgraph
    "unify": 3,  # head unification / variable instantiation
    "copy": 2,  # chain copy (multiply-write assisted)
    "arith": 1,  # builtin arithmetic
    "select": 1,  # min-bound selection among local chains
}

DEFAULT_UNIT_COUNTS: dict[str, int] = {
    "search": 1,
    "unify": 2,
    "copy": 2,
    "arith": 1,
    "select": 1,
}


@dataclass
class MicroOp:
    """One unitary action: consumes ``sources`` tags, produces ``dest``."""

    kind: str
    dest: str
    sources: tuple[str, ...] = ()
    latency: Optional[int] = None  # override kind default

    def __post_init__(self) -> None:
        if self.dest in self.sources:
            raise ValueError(f"op {self.dest} depends on itself")


@dataclass
class FunctionalUnit:
    """A hardware unit executing one op at a time."""

    kind: str
    index: int
    busy_until: int = -1
    current: Optional[MicroOp] = None
    busy_cycles: int = 0

    @property
    def name(self) -> str:
        return f"{self.kind}{self.index}"


@dataclass
class ScoreboardStats:
    cycles: int = 0
    issued: int = 0
    raw_stalls: int = 0
    waw_stalls: int = 0
    structural_stalls: int = 0
    unit_busy: dict[str, int] = field(default_factory=dict)

    def utilization(self, unit_counts: dict[str, int]) -> dict[str, float]:
        """Busy fraction per unit kind."""
        out = {}
        for kind, count in unit_counts.items():
            busy = self.unit_busy.get(kind, 0)
            out[kind] = busy / (self.cycles * count) if self.cycles else 0.0
        return out


class Scoreboard:
    """Issue/complete loop over a micro-op list.

    ``run`` executes a whole program and returns total cycles; the
    in-order *issue window* is the whole remaining list (dataflow
    order, like the 6600's reservation of units, not program order),
    so independent ops overlap as the paper intends.
    """

    def __init__(
        self,
        unit_counts: Optional[dict[str, int]] = None,
        latencies: Optional[dict[str, int]] = None,
    ):
        self.unit_counts = dict(DEFAULT_UNIT_COUNTS if unit_counts is None else unit_counts)
        self.latencies = dict(DEFAULT_LATENCIES if latencies is None else latencies)
        self.units: list[FunctionalUnit] = []
        for kind, count in self.unit_counts.items():
            for i in range(count):
                self.units.append(FunctionalUnit(kind, i))

    def run(self, program: Sequence[MicroOp], max_cycles: int = 1_000_000) -> ScoreboardStats:
        """Execute ``program`` to completion; returns stats (incl. cycles)."""
        stats = ScoreboardStats()
        ready_tags: set[str] = set()
        pending_dest: set[str] = set()
        waiting = list(program)
        for op in waiting:
            if op.dest in pending_dest:
                raise ValueError(f"duplicate destination tag {op.dest!r}")
            pending_dest.add(op.dest)
        in_flight: list[tuple[int, FunctionalUnit, MicroOp]] = []
        cycle = 0
        while waiting or in_flight:
            if cycle > max_cycles:
                raise RuntimeError("scoreboard exceeded max cycles — deadlock?")
            # complete ops finishing now
            still = []
            for done_at, unit, op in in_flight:
                if done_at <= cycle:
                    ready_tags.add(op.dest)
                    unit.current = None
                else:
                    still.append((done_at, unit, op))
            in_flight = still
            # issue every ready op that can get a unit this cycle
            issued_now: list[MicroOp] = []
            for op in waiting:
                missing = [s for s in op.sources if s not in ready_tags]
                if missing:
                    stats.raw_stalls += 1
                    continue
                # WAW: dest already being produced in flight
                if any(f[2].dest == op.dest for f in in_flight):
                    stats.waw_stalls += 1
                    continue
                unit = self._free_unit(op.kind)
                if unit is None:
                    stats.structural_stalls += 1
                    continue
                lat = op.latency if op.latency is not None else self.latencies[op.kind]
                unit.current = op
                unit.busy_cycles += lat
                stats.unit_busy[op.kind] = stats.unit_busy.get(op.kind, 0) + lat
                in_flight.append((cycle + lat, unit, op))
                issued_now.append(op)
                stats.issued += 1
            for op in issued_now:
                waiting.remove(op)
            cycle += 1
            # jump the clock to the next completion when fully stalled
            if not issued_now and in_flight:
                cycle = max(cycle, min(done for done, _, _ in in_flight))
        stats.cycles = cycle
        return stats

    def _free_unit(self, kind: str) -> Optional[FunctionalUnit]:
        for u in self.units:
            if u.kind == kind and u.current is None:
                return u
        return None


_op_counter = itertools.count()


def expansion_program(
    n_candidates: int,
    n_matches: int,
    chain_words: int = 8,
    copy_words_per_cycle: int = 4,
) -> list[MicroOp]:
    """Compile one OR-node expansion into a scoreboard micro-op DAG.

    ``search`` produces the candidate list; each of the ``n_candidates``
    head unifications depends only on it (they overlap on the unify
    units); each of the ``n_matches`` successful candidates needs a
    chain copy (latency scales with chain size); a final ``select``
    consumes all copies (choose next local minimum).
    """
    if n_matches > n_candidates:
        raise ValueError("matches cannot exceed candidates")
    uid = next(_op_counter)
    ops: list[MicroOp] = []
    search_tag = f"cand{uid}"
    ops.append(MicroOp("search", search_tag))
    copy_latency = max(1, chain_words // copy_words_per_cycle)
    copy_tags: list[str] = []
    for i in range(n_candidates):
        unify_tag = f"u{uid}_{i}"
        ops.append(MicroOp("unify", unify_tag, (search_tag,)))
        if i < n_matches:
            copy_tag = f"c{uid}_{i}"
            ops.append(
                MicroOp("copy", copy_tag, (unify_tag,), latency=copy_latency)
            )
            copy_tags.append(copy_tag)
    ops.append(MicroOp("select", f"sel{uid}", tuple(copy_tags) or (search_tag,)))
    return ops
