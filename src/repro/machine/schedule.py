"""List scheduling of task DAGs onto N processors.

Used to place the AND/OR process model's task graph (E12) and other
precedence-constrained work onto a fixed machine, giving the classic
bound pair:

* ``critical_path`` — the longest dependency chain (time with infinite
  processors);
* list-scheduled ``makespan`` on N processors — within 2x of optimal
  (Graham's bound), which is all the fidelity the comparison needs.

The scheduler is deterministic: ready tasks are ordered by (longest
remaining path first, insertion order) — the standard HLF/CP heuristic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Hashable, Optional

__all__ = ["TaskGraph", "ScheduleResult", "list_schedule"]

TaskId = Hashable


@dataclass
class TaskGraph:
    """A DAG of tasks with durations."""

    durations: dict[TaskId, float] = field(default_factory=dict)
    edges: list[tuple[TaskId, TaskId]] = field(default_factory=list)  # (pred, succ)

    def add_task(self, tid: TaskId, duration: float) -> TaskId:
        if duration < 0:
            raise ValueError("durations must be non-negative")
        if tid in self.durations:
            raise ValueError(f"duplicate task {tid!r}")
        self.durations[tid] = duration
        return tid

    def add_edge(self, pred: TaskId, succ: TaskId) -> None:
        if pred not in self.durations or succ not in self.durations:
            raise KeyError("both endpoints must be tasks")
        self.edges.append((pred, succ))

    @property
    def total_work(self) -> float:
        return sum(self.durations.values())

    def successors(self) -> dict[TaskId, list[TaskId]]:
        out: dict[TaskId, list[TaskId]] = {t: [] for t in self.durations}
        for p, s in self.edges:
            out[p].append(s)
        return out

    def predecessors_count(self) -> dict[TaskId, int]:
        out: dict[TaskId, int] = {t: 0 for t in self.durations}
        for _, s in self.edges:
            out[s] += 1
        return out

    def critical_path(self) -> float:
        """Longest path length (sum of durations) through the DAG."""
        succ = self.successors()
        indeg = self.predecessors_count()
        # topological order (Kahn); also validates acyclicity
        order: list[TaskId] = [t for t, d in indeg.items() if d == 0]
        seen = 0
        longest: dict[TaskId, float] = {
            t: self.durations[t] for t in self.durations
        }
        queue = list(order)
        remaining = dict(indeg)
        topo: list[TaskId] = []
        while queue:
            t = queue.pop()
            topo.append(t)
            for s in succ[t]:
                remaining[s] -= 1
                if remaining[s] == 0:
                    queue.append(s)
        if len(topo) != len(self.durations):
            raise ValueError("task graph has a cycle")
        for t in topo:
            for s in succ[t]:
                longest[s] = max(longest[s], longest[t] + self.durations[s])
        return max(longest.values(), default=0.0)


@dataclass
class ScheduleResult:
    processors: int
    makespan: float
    critical_path: float
    total_work: float
    start_times: dict[TaskId, float] = field(default_factory=dict)
    assignment: dict[TaskId, int] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.total_work / self.makespan if self.makespan else 1.0

    @property
    def efficiency(self) -> float:
        return self.speedup / self.processors


def list_schedule(graph: TaskGraph, processors: int) -> ScheduleResult:
    """Critical-path list scheduling on ``processors`` identical machines."""
    if processors < 1:
        raise ValueError("need at least one processor")
    succ = graph.successors()
    indeg = graph.predecessors_count()
    # longest path *from* each task (priority)
    priority: dict[TaskId, float] = {}

    def rank(t: TaskId) -> float:
        if t in priority:
            return priority[t]
        priority[t] = graph.durations[t] + max(
            (rank(s) for s in succ[t]), default=0.0
        )
        return priority[t]

    for t in graph.durations:
        rank(t)
    result = ScheduleResult(
        processors=processors,
        makespan=0.0,
        critical_path=graph.critical_path(),
        total_work=graph.total_work,
    )
    counter = 0
    ready: list[tuple[float, int, TaskId]] = []
    remaining = dict(indeg)
    for t, d in indeg.items():
        if d == 0:
            heapq.heappush(ready, (-priority[t], counter, t))
            counter += 1
    proc_free = [0.0] * processors
    # pop the highest-priority ready task, place it on the processor
    # that frees first, no earlier than its predecessors' finish times
    preds: dict[TaskId, list[TaskId]] = {t: [] for t in graph.durations}
    for p, s in graph.edges:
        preds[s].append(p)
    finish: dict[TaskId, float] = {}
    pending = ready
    scheduled = 0
    n_tasks = len(graph.durations)
    while scheduled < n_tasks:
        if not pending:
            raise RuntimeError("scheduler stalled — inconsistent graph")
        _, _, task = heapq.heappop(pending)
        earliest = max((finish[p] for p in preds[task]), default=0.0)
        pix = min(range(processors), key=lambda i: proc_free[i])
        start = max(proc_free[pix], earliest)
        end = start + graph.durations[task]
        proc_free[pix] = end
        finish[task] = end
        result.start_times[task] = start
        result.assignment[task] = pix
        result.makespan = max(result.makespan, end)
        scheduled += 1
        for s in succ[task]:
            remaining[s] -= 1
            if remaining[s] == 0:
                heapq.heappush(pending, (-priority[s], counter, s))
                counter += 1
    return result
