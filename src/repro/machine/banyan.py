"""A banyan (Omega) interconnection network (§6's closing proposal).

"A linear cost non-rectangular banyan can implement these mechanisms
[the minimum circuit and the priority circuit], and this is another of
our current subjects of research."

A banyan gives exactly one path between each input/output pair through
``log2 n`` stages of 2×2 switches — ``(n/2)·log2 n`` switches total
(the "linear cost" vs a crossbar's n²).  The price is **blocking**: two
packets whose unique paths need the same switch output conflict.  This
module implements a functional Omega network:

* :func:`omega_route` — the destination-tag route of one packet;
* :meth:`BanyanNetwork.route_permutation` — route a batch, counting
  conflicts (one extra pass per conflicting packet, the usual
  store-and-retry model);
* Monte-Carlo blocking statistics vs the crossbar baseline — E10's
  interconnect-cost row.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = ["BanyanNetwork", "omega_route", "crossbar_cost"]


def _is_pow2(n: int) -> bool:
    return n >= 2 and (n & (n - 1)) == 0


def omega_route(n: int, src: int, dst: int) -> list[tuple[int, int]]:
    """The (stage, switch-output-port) path of a packet in an n-input
    Omega network, using destination-tag routing."""
    if not _is_pow2(n):
        raise ValueError("omega network size must be a power of two")
    stages = int(math.log2(n))
    path: list[tuple[int, int]] = []
    cur = src
    for s in range(stages):
        # perfect shuffle, then switch by the s-th destination bit
        cur = ((cur << 1) | (cur >> (stages - 1))) & (n - 1)
        bit = (dst >> (stages - 1 - s)) & 1
        cur = (cur & ~1) | bit
        path.append((s, cur))
    return path


@dataclass
class BanyanStats:
    packets: int = 0
    conflicts: int = 0
    passes: int = 0

    @property
    def conflict_rate(self) -> float:
        return self.conflicts / self.packets if self.packets else 0.0


@dataclass
class BanyanNetwork:
    """An n-input Omega network with conflict accounting."""

    n: int
    stats: BanyanStats = field(default_factory=BanyanStats)

    def __post_init__(self) -> None:
        if not _is_pow2(self.n):
            raise ValueError("network size must be a power of two >= 2")

    @property
    def stages(self) -> int:
        return int(math.log2(self.n))

    @property
    def switch_count(self) -> int:
        """(n/2)·log2 n — the 'linear cost' §6 cites (vs crossbar n²)."""
        return (self.n // 2) * self.stages

    def route_permutation(self, dests: Sequence[int]) -> int:
        """Route packet i -> dests[i] for all i; returns passes needed.

        Conflicting packets (same switch output in the same stage during
        the same pass) are deferred to the next pass — the blocking cost
        a crossbar never pays.
        """
        if len(dests) != self.n:
            raise ValueError("need one destination per input")
        pending = list(range(self.n))
        passes = 0
        while pending:
            passes += 1
            taken: set[tuple[int, int]] = set()
            deferred: list[int] = []
            for src in pending:
                path = omega_route(self.n, src, dests[src])
                if any(hop in taken for hop in path):
                    deferred.append(src)
                    self.stats.conflicts += 1
                else:
                    taken.update(path)
                    self.stats.packets += 1
            pending = deferred
        self.stats.passes += passes
        return passes

    def blocking_monte_carlo(self, trials: int = 100, seed: int = 0) -> dict:
        """Mean passes/conflicts over random permutations."""
        rng = np.random.default_rng(seed)
        passes = []
        for _ in range(trials):
            perm = rng.permutation(self.n)
            net = BanyanNetwork(self.n)
            passes.append(net.route_permutation(list(perm)))
        return {
            "inputs": self.n,
            "switches": self.switch_count,
            "mean_passes": float(np.mean(passes)),
            "max_passes": int(np.max(passes)),
        }


def crossbar_cost(n: int) -> dict:
    """The non-blocking alternative: n² crosspoints, always 1 pass."""
    return {"inputs": n, "switches": n * n, "mean_passes": 1.0, "max_passes": 1}
