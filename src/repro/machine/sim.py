"""Discrete-event simulation kernel for the B-LOG machine models.

Python's GIL rules out measuring real MIMD behaviour with threads, so
every architectural claim of section 6 (latency hiding by multitasking,
minimum-seeking network traffic, SPD paging) is evaluated on this
deterministic DES instead: virtual time in cycles, generator-based
processes, counted resources, and broadcast signals.

Processes are plain generators that ``yield`` requests:

* ``Timeout(dt)``   — resume after ``dt`` cycles;
* ``Acquire(res)``  — resume once a unit of ``res`` is held (FIFO);
* ``WaitSignal(s)`` — resume at the next ``s.fire()``.

Determinism: simultaneous events run in schedule order (a monotone
sequence number breaks time ties), so runs are exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Process",
    "Timeout",
    "Acquire",
    "WaitSignal",
    "Resource",
    "Signal",
    "SimError",
]


class SimError(RuntimeError):
    """Simulation protocol violation (bad yield, negative delay, ...)."""


@dataclass(frozen=True)
class Timeout:
    """Yield request: sleep for ``delay`` cycles."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise SimError(f"negative delay {self.delay}")


@dataclass(frozen=True)
class Acquire:
    """Yield request: obtain one unit of ``resource`` (FIFO queueing)."""

    resource: "Resource"


@dataclass(frozen=True)
class WaitSignal:
    """Yield request: block until the signal fires; receives its payload."""

    signal: "Signal"


class Resource:
    """A counted resource (k servers, FIFO wait queue).

    Holders must call :meth:`release` exactly once per grant; the
    simulator tracks utilization (busy server-cycles / elapsed).
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise SimError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self.waiting: list["Process"] = []
        self._busy_cycles = 0.0
        self._last_change = 0.0
        self.grants = 0

    def _account(self) -> None:
        now = self.sim.now
        self._busy_cycles += self.in_use * (now - self._last_change)
        self._last_change = now

    def _try_grant(self, proc: "Process") -> bool:
        if self.in_use < self.capacity:
            self._account()
            self.in_use += 1
            self.grants += 1
            return True
        self.waiting.append(proc)
        return False

    def release(self) -> None:
        """Release one unit; wakes the longest-waiting process."""
        if self.in_use <= 0:
            raise SimError(f"release of idle resource {self.name!r}")
        self._account()
        self.in_use -= 1
        if self.waiting:
            proc = self.waiting.pop(0)
            self._account()
            self.in_use += 1
            self.grants += 1
            self.sim._schedule_resume(proc, None)

    def utilization(self) -> float:
        """Mean busy fraction over elapsed time (all servers)."""
        self._account()
        elapsed = self.sim.now
        if elapsed <= 0:
            return 0.0
        return self._busy_cycles / (elapsed * self.capacity)


class Signal:
    """A broadcast condition: every waiter resumes on :meth:`fire`."""

    def __init__(self, sim: "Simulator", name: str = "signal"):
        self.sim = sim
        self.name = name
        self.waiting: list["Process"] = []
        self.fires = 0

    def fire(self, payload: Any = None) -> int:
        """Wake all waiters with ``payload``; returns how many woke."""
        self.fires += 1
        woken = self.waiting
        self.waiting = []
        for proc in woken:
            self.sim._schedule_resume(proc, payload)
        return len(woken)


class Process:
    """A running generator inside the simulator."""

    def __init__(self, sim: "Simulator", gen: Generator, name: str):
        self.sim = sim
        self.gen = gen
        self.name = name
        self.alive = True
        self.result: Any = None

    def _step(self, value: Any) -> None:
        try:
            request = self.gen.send(value)
        except StopIteration as stop:
            self.alive = False
            self.result = stop.value
            self.sim._finished(self)
            return
        if isinstance(request, Timeout):
            self.sim._schedule_resume(self, None, delay=request.delay)
        elif isinstance(request, Acquire):
            if request.resource._try_grant(self):
                self.sim._schedule_resume(self, None)
        elif isinstance(request, WaitSignal):
            request.signal.waiting.append(self)
        else:
            raise SimError(
                f"process {self.name!r} yielded {request!r}; expected "
                "Timeout/Acquire/WaitSignal"
            )


class Simulator:
    """The event loop: virtual clock + pending-event heap."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Process, Any]] = []
        self._seq = itertools.count()
        self.processes: list[Process] = []
        self.events_executed = 0

    # -- construction ----------------------------------------------------------
    def resource(self, capacity: int = 1, name: str = "resource") -> Resource:
        return Resource(self, capacity, name)

    def signal(self, name: str = "signal") -> Signal:
        return Signal(self, name)

    def spawn(self, gen: Generator, name: str = "process") -> Process:
        """Register a generator as a process, started at the current time."""
        proc = Process(self, gen, name)
        self.processes.append(proc)
        self._schedule_resume(proc, None)
        return proc

    # -- internals ------------------------------------------------------------
    def _schedule_resume(self, proc: Process, value: Any, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), proc, value))

    def _finished(self, proc: Process) -> None:
        pass  # hook for subclasses; Process.alive already updated

    # -- running ---------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run to quiescence (or ``until`` / ``max_events``); returns now."""
        while self._heap:
            if self.events_executed >= max_events:
                raise SimError(f"exceeded {max_events} events — livelock?")
            time, _, proc, value = self._heap[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = time
            self.events_executed += 1
            if proc.alive:
                proc._step(value)
        return self.now

    @property
    def idle(self) -> bool:
        return not self._heap
