"""Interconnection network models (§6): minimum-seeking tree, priority
arbiter, and the packet-setup/circuit-transfer interconnect.

"A circuit that determines the minimum, and a priority circuit to
arbitrate among several waiting processors [...] would be adequate.
[One] is a tree where each node selects the minimum of its descendants
and passes that to its parent."  Traffic follows the CEDAR style:
"packet switching to find paths, and circuit switching to move the
data."

The migration rule: "We choose a value D, which reflects the
communication cost of moving a chain.  If the minimum over the network
is D lower than the minimum of the tasks in a processor, the freed task
would acquire the chain through the network, else it would work on the
minimum chain given by some task in its own processor."
:meth:`MinSeekingNetwork.should_migrate` implements exactly that test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = ["NetworkStats", "MinSeekingNetwork", "Interconnect"]

INF = float("inf")


@dataclass
class NetworkStats:
    min_queries: int = 0
    grants: int = 0
    arbitrations: int = 0
    transfers: int = 0
    words_moved: int = 0
    transfer_cycles: float = 0.0
    migrations_accepted: int = 0
    migrations_declined: int = 0


class MinSeekingNetwork:
    """Tree minimum circuit over per-processor best bounds.

    Each processor publishes the minimum bound of its unexpanded
    chains (``INF`` when it has none).  ``global_min`` propagates up a
    binary tree in ``ceil(log2(n))`` gate levels — the latency charged
    per query.  ``arbitrate`` grants the minimum to exactly one of the
    requesting processors (priority = lowest processor index, a
    carry-lookahead-style priority circuit).
    """

    def __init__(self, n_processors: int):
        if n_processors < 1:
            raise ValueError("need at least one processor")
        self.n = n_processors
        self.published: list[float] = [INF] * n_processors
        self.stats = NetworkStats()

    @property
    def query_latency(self) -> int:
        """Gate levels to propagate the min to the root."""
        return max(1, math.ceil(math.log2(self.n))) if self.n > 1 else 1

    def publish(self, processor: int, best_bound: float) -> None:
        """Processor announces the min bound of its open chains."""
        self.published[processor] = best_bound

    def global_min(self) -> tuple[float, Optional[int]]:
        """The minimum published bound and its owner (None if all idle)."""
        self.stats.min_queries += 1
        best = INF
        owner: Optional[int] = None
        for i, b in enumerate(self.published):
            if b < best:
                best = b
                owner = i
        return best, owner

    def should_migrate(self, local_min: float, d: float) -> tuple[bool, Optional[int]]:
        """The §6 rule: migrate iff global min < local min − D.

        Returns (migrate?, source processor).  A processor with no
        local work (``local_min`` = INF) migrates whenever any work
        exists anywhere.
        """
        gmin, owner = self.global_min()
        if owner is None:
            return False, None
        if gmin < local_min - d:
            self.stats.migrations_accepted += 1
            return True, owner
        self.stats.migrations_declined += 1
        return False, None

    def arbitrate(self, requesters: Sequence[int]) -> Optional[int]:
        """Grant to the highest-priority (lowest-index) requester."""
        self.stats.arbitrations += 1
        if not requesters:
            return None
        winner = min(requesters)
        self.stats.grants += 1
        return winner


class Interconnect:
    """Packet-setup + circuit-switched data movement cost model.

    ``transfer(words)`` costs ``packet_setup`` cycles to find the path
    (packet switching) plus ``words / words_per_cycle`` to stream the
    chain (circuit switching).  All traffic is counted for the E6
    sweep.
    """

    def __init__(self, packet_setup: float = 8.0, words_per_cycle: float = 2.0):
        if packet_setup < 0 or words_per_cycle <= 0:
            raise ValueError("bad interconnect parameters")
        self.packet_setup = packet_setup
        self.words_per_cycle = words_per_cycle
        self.stats = NetworkStats()

    def transfer_cost(self, words: int) -> float:
        return self.packet_setup + words / self.words_per_cycle

    def transfer(self, words: int) -> float:
        """Account a transfer; returns its latency in cycles."""
        cost = self.transfer_cost(words)
        self.stats.transfers += 1
        self.stats.words_moved += words
        self.stats.transfer_cycles += cost
        return cost
