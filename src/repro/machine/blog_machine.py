"""The parallel B-LOG machine, assembled (§6).

"Initially, one processor is given the initial query [...] The other
processors use the minimum seeking network to wait for some chain to
work on.  As chains become available, they are sent to the awaiting
processors.  The priority network assigns a minimum to just one
awaiting processor at a time.  Thus, initially, the tree is searched
breadth-first to get all processors working.  [...] when a task
completes its extension of a chain, it will acquire a new chain, as
determined by the minimum seeking network [...] If the minimum over
the network is D lower than the minimum of the tasks in a processor,
the freed task would acquire the chain through the network, else it
would work on the minimum chain given by some task in its own
processor."

This module runs that protocol as a discrete-event simulation over a
shared :class:`~repro.ortree.tree.OrTree` (the logical search space —
access *costs* are modeled, the search itself is exact):

* N processors × M tasks, each task a DES process;
* one compute pipeline per processor (multitasking hides disk time);
* a minimum-seeking network with migration threshold D and transfer
  costs through the interconnect;
* optional SPD bank: expanding a node first pages in the candidate
  clause blocks (semantic page of radius 1) unless they are already in
  local memory;
* optional weight store with live §5 updates, so the machine *learns*
  exactly like the sequential engine.

The result reports makespan (cycles), per-processor utilization,
network traffic, and solution answers — everything E5/E6 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..linkdb.build import LinkedDatabase
from ..logic.terms import Term
from ..ortree.tree import NodeStatus, OrTree
from ..spd.ops import SemanticPagingDisk
from ..weights.store import WeightStore
from ..weights.update import on_failure, on_success
from .network import Interconnect, MinSeekingNetwork
from .processor import INF, ProcessorState
from .scoreboard import Scoreboard, expansion_program
from .sim import Acquire, Simulator, Timeout, WaitSignal

__all__ = ["MachineConfig", "MachineResult", "BLogMachine"]


@dataclass
class MachineConfig:
    """Cost and topology knobs of the simulated machine."""

    n_processors: int = 4
    tasks_per_processor: int = 2
    d: float = 4.0  # migration threshold (§6); initial value when adaptive
    adaptive_d: bool = False  # §6: "D can be modified at run time, based
    # on the measured communication overhead" — a multiplicative
    # controller raises D when transfer cycles dominate compute in the
    # last window and lowers it when processors idle with cheap comms
    adapt_window: int = 16  # expansions between controller updates
    memory_blocks: int = 64  # local memory capacity per processor
    base_expand_cycles: float = 10.0
    per_candidate_cycles: float = 4.0
    per_child_copy_cycles: float = 6.0
    chain_words_per_depth: int = 8  # chain size grows with depth
    page_radius: int = 1  # semantic page Hamming distance
    model_disk_contention: bool = True  # page-ins queue on the SPD bank
    # (one server per SP: concurrent requests from different processors
    # serialize when they outnumber the search processors)
    use_scoreboard: bool = False  # legacy alias for cost_model="scoreboard"
    cost_model: str = "simple"  # "simple" (linear formula), "scoreboard"
    # (fixed-shape micro-op program), or "interpreter" (§6 production
    # rules compiled from the node's real goal/candidates/term sizes)
    record_events: bool = False  # keep a (time, proc, task, kind, info)
    # trace of pops/expansions/migrations/outcomes — a Gantt source
    max_solutions: Optional[int] = None
    max_expansions: int = 100_000

    def __post_init__(self) -> None:
        if self.n_processors < 1 or self.tasks_per_processor < 1:
            raise ValueError("need at least one processor and one task")
        if self.d < 0:
            raise ValueError("D must be non-negative")
        if self.cost_model not in ("simple", "scoreboard", "interpreter"):
            raise ValueError("cost_model must be simple/scoreboard/interpreter")
        if self.use_scoreboard and self.cost_model == "simple":
            self.cost_model = "scoreboard"


@dataclass
class MachineResult:
    """Outcome of one machine run."""

    makespan: float = 0.0
    answers: list[dict[str, Term]] = field(default_factory=list)
    solution_bounds: list[float] = field(default_factory=list)
    expansions: int = 0
    failures: int = 0
    migrations: int = 0
    idle_pulls: int = 0  # migrations into an empty pool (D-independent)
    rebalances: int = 0  # steady-state steals gated by D
    per_processor_expansions: list[int] = field(default_factory=list)
    per_processor_utilization: list[float] = field(default_factory=list)
    network_words_moved: int = 0
    network_transfers: int = 0
    disk_cycles: float = 0.0
    local_memory_hit_rate: float = 0.0
    d_trajectory: list = field(default_factory=list)  # adaptive-D history
    final_d: float = 0.0
    events: list = field(default_factory=list)  # (time, proc, task, kind, info)

    @property
    def mean_utilization(self) -> float:
        if not self.per_processor_utilization:
            return 0.0
        return sum(self.per_processor_utilization) / len(self.per_processor_utilization)


class BLogMachine:
    """Simulated N×M B-LOG machine executing one query's OR-tree.

    Parameters
    ----------
    config:
        Topology and costs.
    disk:
        Optional SPD bank holding the linked database; without it,
        expansions pay compute cost only.
    store:
        Optional weight store updated live with the §5 rules (the tree
        passed to :meth:`run` should use this store's ``weight_fn`` for
        bounds to be meaningful).
    """

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        disk: Optional[SemanticPagingDisk] = None,
        store: Optional[WeightStore] = None,
    ):
        self.config = config if config is not None else MachineConfig()
        self.disk = disk
        self.store = store
        self._scoreboard = (
            Scoreboard() if self.config.cost_model != "simple" else None
        )

    # -- cost helpers -------------------------------------------------------------
    def _expansion_cycles(self, n_candidates: int, n_children: int, depth: int) -> float:
        cfg = self.config
        chain_words = max(8, cfg.chain_words_per_depth * (depth + 1))
        if cfg.cost_model == "scoreboard":
            program = expansion_program(
                max(1, n_candidates), n_children, chain_words=chain_words
            )
            return float(self._scoreboard.run(program).cycles)
        return (
            cfg.base_expand_cycles
            + cfg.per_candidate_cycles * max(1, n_candidates)
            + cfg.per_child_copy_cycles * n_children
        )

    def _interpreter_cycles(self, tree: OrTree, nid: int) -> Optional[float]:
        """Interpreter cost model: compile the node's real expansion to
        micro-ops and run it on the scoreboard.  Must be called BEFORE
        ``tree.expand`` (it performs its own trial unifications)."""
        if self.config.cost_model != "interpreter":
            return None
        from .interpreter import compile_expansion

        program = compile_expansion(tree, nid)
        if not program:
            return self.config.base_expand_cycles
        return float(self._scoreboard.run(program).cycles)

    def _chain_words(self, depth: int) -> int:
        return max(8, self.config.chain_words_per_depth * (depth + 1))

    # -- the run --------------------------------------------------------------------
    def run(self, tree: OrTree) -> MachineResult:
        """Execute the query whose (unexpanded) OR-tree is ``tree``."""
        cfg = self.config
        sim = Simulator()
        network = MinSeekingNetwork(cfg.n_processors)
        interconnect = Interconnect()
        procs = [
            ProcessorState(i, sim, cfg.memory_blocks, cfg.tasks_per_processor)
            for i in range(cfg.n_processors)
        ]
        result = MachineResult()
        state = {
            "open": 0,  # chains in pools
            "busy": 0,  # tasks mid-expansion
            "done": False,
            "solutions": 0,
            "d": cfg.d,  # live migration threshold (adaptive_d mutates it)
        }
        window = {"transfer": 0.0, "compute": 0.0, "idle": 0, "migr": 0, "exp": 0}

        def trace(proc_id: int, task_ix: int, kind: str, info="") -> None:
            if cfg.record_events:
                result.events.append((sim.now, proc_id, task_ix, kind, info))

        def adapt_d() -> None:
            """§6's run-time D controller, applied every adapt_window
            expansions: communication-dominated windows double D,
            idle-dominated cheap-comms windows halve it."""
            if not cfg.adaptive_d:
                return
            window["exp"] += 1
            if window["exp"] < cfg.adapt_window:
                return
            # only D-gated (rebalance) traffic informs the controller;
            # idle pulls happen at any D and would just add noise
            comm_ratio = window["transfer"] / max(1.0, window["compute"])
            if comm_ratio > 0.5:
                state["d"] = min(1e9, max(state["d"], 0.5) * 2.0)
            elif window["idle"] > window["migr"] and comm_ratio < 0.1:
                state["d"] = state["d"] / 2.0
            result.d_trajectory.append(state["d"])
            window.update(transfer=0.0, compute=0.0, idle=0, migr=0, exp=0)
        work_signal = sim.signal("work")
        done_signal = sim.signal("done")
        disk_bank = (
            sim.resource(max(1, self.disk.n_sps), "spd-bank")
            if self.disk is not None and cfg.model_disk_contention
            else None
        )

        def publish(proc: ProcessorState) -> None:
            network.publish(proc.proc_id, proc.peek_min())

        def finish() -> None:
            if not state["done"]:
                state["done"] = True
                done_signal.fire()
                work_signal.fire()

        def check_quiescent() -> None:
            if state["open"] == 0 and state["busy"] == 0:
                finish()

        def handle_outcome(nid: int, solved: bool) -> None:
            node = tree.node(nid)
            if solved:
                result.answers.append(tree.solution_answer(node))
                result.solution_bounds.append(node.bound)
                state["solutions"] += 1
                if self.store is not None:
                    on_success(self.store, tree.chain_arcs(nid))
                if (
                    cfg.max_solutions is not None
                    and state["solutions"] >= cfg.max_solutions
                ):
                    finish()
            else:
                result.failures += 1
                if self.store is not None:
                    on_failure(self.store, tree.chain_arcs(nid))

        def page_cost_for(node) -> float:
            """Disk cycles to bring the candidate blocks into local memory."""
            if self.disk is None:
                return 0.0
            goal = node.selected_goal
            if goal is None:
                return 0.0
            try:
                ind = goal.indicator
            except TypeError:
                return 0.0
            block_ids = self.disk.db.blocks_for(ind)
            proc = procs[node_owner[node.nid]]
            missing = [b for b in block_ids if not proc.memory.touch(b)]
            if not missing:
                return 0.0
            page = self.disk.page_in(missing, radius=cfg.page_radius)
            proc.memory.insert_many(page.blocks)
            result.disk_cycles += page.cycles
            return page.cycles

        node_owner: dict[int, int] = {}

        def task(proc: ProcessorState, task_ix: int):
            while True:
                if state["done"]:
                    return
                popped = proc.pop_min()
                if popped is None:
                    # try to acquire remote work through the network
                    yield Timeout(network.query_latency)
                    migrate, owner = network.should_migrate(INF, state["d"])
                    if migrate and owner is not None and procs[owner].pool:
                        victim = procs[owner]
                        got = victim.pop_min()
                        publish(victim)
                        if got is not None:
                            bound, nid = got
                            words = self._chain_words(tree.node(nid).depth)
                            cost = interconnect.transfer(words)
                            victim.stats.migrations_out += 1
                            proc.stats.migrations_in += 1
                            result.migrations += 1
                            result.idle_pulls += 1
                            # idle pulls are D-independent: they don't
                            # inform the adaptive-D controller
                            yield Timeout(cost)
                            proc.push(bound, nid)
                            publish(proc)
                            trace(proc.proc_id, task_ix, "idle-pull", nid)
                            continue
                    if state["open"] == 0 and state["busy"] == 0:
                        finish()
                        return
                    proc.stats.network_waits += 1
                    window["idle"] += 1
                    yield WaitSignal(work_signal)
                    continue
                bound, nid = popped
                publish(proc)
                trace(proc.proc_id, task_ix, "pop", nid)
                # §6 rule for a *non-empty* pool: if the global min is D
                # lower than our local min, fetch it instead.
                gmin, owner = network.global_min()
                if (
                    owner is not None
                    and owner != proc.proc_id
                    and gmin < bound - state["d"]
                    and procs[owner].pool
                ):
                    victim = procs[owner]
                    got = victim.pop_min()
                    publish(victim)
                    if got is not None:
                        rbound, rnid = got
                        words = self._chain_words(tree.node(rnid).depth)
                        cost = interconnect.transfer(words)
                        victim.stats.migrations_out += 1
                        proc.stats.migrations_in += 1
                        result.migrations += 1
                        result.rebalances += 1
                        window["migr"] += 1
                        window["transfer"] += cost
                        # keep our original chain in the pool
                        proc.push(bound, nid)
                        yield Timeout(cost)
                        bound, nid = rbound, rnid
                        publish(proc)
                        trace(proc.proc_id, task_ix, "rebalance", nid)
                state["open"] -= 1
                state["busy"] += 1
                node_owner[nid] = proc.proc_id
                node = tree.node(nid)
                if node.status is NodeStatus.SOLUTION:
                    handle_outcome(nid, True)
                    trace(proc.proc_id, task_ix, "solution", nid)
                    state["busy"] -= 1
                    check_quiescent()
                    continue
                # page in candidate blocks (disk wait; pipeline released —
                # other tasks on this processor compute meanwhile).  With
                # contention modeled, the request first queues for a free
                # search processor in the SPD bank.
                if disk_bank is not None:
                    yield Acquire(disk_bank)
                    try:
                        disk_cycles = page_cost_for(node)
                        if disk_cycles > 0:
                            proc.stats.disk_wait_cycles += disk_cycles
                            yield Timeout(disk_cycles)
                    finally:
                        disk_bank.release()
                else:
                    disk_cycles = page_cost_for(node)
                    if disk_cycles > 0:
                        proc.stats.disk_wait_cycles += disk_cycles
                        yield Timeout(disk_cycles)
                if state["done"]:
                    state["busy"] -= 1
                    return
                # compute: hold the processor pipeline
                yield Acquire(proc.pipeline)
                try:
                    goal = node.selected_goal
                    n_cand = 0
                    if goal is not None:
                        try:
                            n_cand = len(self.disk.db.blocks_for(goal.indicator)) if self.disk else len(tree.program.candidates(goal))
                        except TypeError:
                            n_cand = 1
                    interp_cycles = self._interpreter_cycles(tree, nid)
                    children = tree.expand(nid)
                    proc.stats.expansions += 1
                    result.expansions += 1
                    cycles = (
                        interp_cycles
                        if interp_cycles is not None
                        else self._expansion_cycles(n_cand, len(children), node.depth)
                    )
                    proc.stats.compute_cycles += cycles
                    window["compute"] += cycles
                    adapt_d()
                    trace(proc.proc_id, task_ix, "expand", nid)
                    yield Timeout(cycles)
                finally:
                    proc.pipeline.release()
                if not children:
                    handle_outcome(nid, False)
                    trace(proc.proc_id, task_ix, "failure", nid)
                else:
                    pushed = 0
                    for cid in children:
                        child = tree.node(cid)
                        proc.push(child.bound, cid)
                        pushed += 1
                    state["open"] += pushed
                    publish(proc)
                    if pushed:
                        work_signal.fire()
                state["busy"] -= 1
                if result.expansions >= cfg.max_expansions:
                    finish()
                    return
                check_quiescent()

        # seed: the query goes to processor 0
        procs[0].push(tree.root.bound, tree.root.nid)
        state["open"] = 1
        publish(procs[0])
        for proc in procs:
            for t in range(cfg.tasks_per_processor):
                sim.spawn(task(proc, t), name=f"p{proc.proc_id}t{t}")
        sim.run()
        result.makespan = sim.now
        result.final_d = state["d"]
        result.per_processor_expansions = [p.stats.expansions for p in procs]
        result.per_processor_utilization = [
            (p.stats.compute_cycles / sim.now if sim.now > 0 else 0.0) for p in procs
        ]
        result.network_words_moved = interconnect.stats.words_moved
        result.network_transfers = interconnect.stats.transfers
        hits = sum(p.memory.hits for p in procs)
        misses = sum(p.memory.misses for p in procs)
        result.local_memory_hit_rate = hits / (hits + misses) if hits + misses else 0.0
        return result
