"""The production-rule local interpreter of the B-LOG language (§6).

"The idea is to define a local interpreter of the B-LOG language in
terms of production rules.  We then implement each unitary action in a
hardware unit and use a scoreboard to schedule their use."

:func:`compile_expansion` translates one *actual* OR-node expansion
into the unitary actions the paper names, with operand-derived
latencies:

* one ``search`` (candidate retrieval) — latency grows with the
  candidate count (the associative scan serves them together, the
  pointer readout is linear);
* per candidate, a ``unify`` — latency proportional to the head's term
  size (variable instantiation work);
* per *successful* candidate, a ``copy`` — latency proportional to the
  child resolvent's size in words (the chain-sprouting copy traffic,
  divided by the multiply-write width);
* a closing ``select`` (next minimum among the local chains).

:func:`simulate_query` drives a whole query through the scoreboard:
each best-first expansion is compiled and executed, accumulating total
cycles and per-unit utilization — the data for the §6 controller-design
questions (how many unify/copy units does a B-LOG processor want?).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..logic.solver import _rename_clause
from ..logic.terms import term_size
from ..logic.unify import Bindings, unify
from ..ortree.tree import NodeStatus, OrTree
from .scoreboard import MicroOp, Scoreboard

__all__ = ["compile_expansion", "InterpreterReport", "simulate_query"]

_uid = itertools.count()


def compile_expansion(
    tree: OrTree,
    nid: int,
    copy_words_per_cycle: int = 4,
    unify_symbols_per_cycle: int = 2,
) -> list[MicroOp]:
    """Compile the expansion of node ``nid`` into micro-ops.

    Inspects the node's selected goal and the program's candidate
    clauses; performs trial unifications to decide which candidates
    produce children (and therefore need copies).  Does **not** mutate
    the tree.
    """
    node = tree.node(nid)
    goal = node.selected_goal
    uid = next(_uid)
    ops: list[MicroOp] = []
    search_tag = f"srch{uid}"
    if goal is None:
        return []
    try:
        candidates = tree.program.candidates(goal)
    except TypeError:
        candidates = []
    ops.append(
        MicroOp(
            "search",
            search_tag,
            latency=max(1, 2 + len(candidates) // 2),
        )
    )
    copy_tags: list[str] = []
    rest_words = sum(term_size(g) for g in node.goals[1:])
    for i, cid in enumerate(candidates):
        clause = tree.program.clause(cid)
        head, body = _rename_clause(clause)
        unify_tag = f"u{uid}_{i}"
        ops.append(
            MicroOp(
                "unify",
                unify_tag,
                (search_tag,),
                latency=max(1, term_size(head) // unify_symbols_per_cycle),
            )
        )
        b = Bindings()
        if unify(goal, head, b):
            child_words = rest_words + sum(term_size(g) for g in body)
            copy_tag = f"c{uid}_{i}"
            ops.append(
                MicroOp(
                    "copy",
                    copy_tag,
                    (unify_tag,),
                    latency=max(1, child_words // copy_words_per_cycle),
                )
            )
            copy_tags.append(copy_tag)
    ops.append(MicroOp("select", f"sel{uid}", tuple(copy_tags) or (search_tag,)))
    return ops


@dataclass
class InterpreterReport:
    """Whole-query scoreboard execution summary."""

    expansions: int = 0
    total_cycles: int = 0
    ops_issued: int = 0
    raw_stalls: int = 0
    structural_stalls: int = 0
    unit_busy: dict[str, int] = field(default_factory=dict)
    answers: int = 0

    def utilization(self, unit_counts: dict[str, int]) -> dict[str, float]:
        out = {}
        for kind, count in unit_counts.items():
            busy = self.unit_busy.get(kind, 0)
            total = self.total_cycles * count
            out[kind] = busy / total if total else 0.0
        return out


def simulate_query(
    tree: OrTree,
    scoreboard: Optional[Scoreboard] = None,
    max_solutions: Optional[int] = None,
    max_expansions: int = 10_000,
) -> InterpreterReport:
    """Run ``tree``'s query best-first, costing every expansion through
    the scoreboard.  Returns the aggregate report (the tree is developed
    as a side effect, exactly as a plain best-first search would)."""
    import heapq

    sb = scoreboard if scoreboard is not None else Scoreboard()
    report = InterpreterReport()
    heap: list[tuple[float, int, int]] = [(tree.root.bound, 0, tree.root.nid)]
    counter = 0
    while heap and report.expansions < max_expansions:
        _, _, nid = heapq.heappop(heap)
        node = tree.node(nid)
        if node.status is NodeStatus.SOLUTION:
            report.answers += 1
            if max_solutions is not None and report.answers >= max_solutions:
                break
            continue
        program = compile_expansion(tree, nid)
        if program:
            stats = sb.run(program)
            report.total_cycles += stats.cycles
            report.ops_issued += stats.issued
            report.raw_stalls += stats.raw_stalls
            report.structural_stalls += stats.structural_stalls
            for kind, busy in stats.unit_busy.items():
                report.unit_busy[kind] = report.unit_busy.get(kind, 0) + busy
        for cid in tree.expand(nid):
            child = tree.node(cid)
            counter += 1
            heapq.heappush(heap, (child.bound, counter, cid))
        report.expansions += 1
    return report
