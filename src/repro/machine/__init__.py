"""The simulated parallel B-LOG machine (§6): DES kernel, scoreboard
processor controller, multiply-write memory, minimum-seeking network
with migration threshold D, and the assembled N×M machine."""

from .blog_machine import BLogMachine, MachineConfig, MachineResult
from .memory import ConventionalRAM, CopyCost, MultiWriteRAM
from .network import Interconnect, MinSeekingNetwork, NetworkStats
from .processor import LocalMemory, ProcessorState
from .scoreboard import (
    DEFAULT_LATENCIES,
    DEFAULT_UNIT_COUNTS,
    FunctionalUnit,
    MicroOp,
    Scoreboard,
    ScoreboardStats,
    expansion_program,
)
from .banyan import BanyanNetwork, crossbar_cost, omega_route
from .interpreter import InterpreterReport, compile_expansion, simulate_query
from .schedule import ScheduleResult, TaskGraph, list_schedule
from .sorting import SortingNetwork, batcher_network, min_tree_cost
from .sim import (
    Acquire,
    Process,
    Resource,
    Signal,
    SimError,
    Simulator,
    Timeout,
    WaitSignal,
)

__all__ = [
    "Simulator",
    "Process",
    "Timeout",
    "Acquire",
    "WaitSignal",
    "Resource",
    "Signal",
    "SimError",
    "ConventionalRAM",
    "MultiWriteRAM",
    "CopyCost",
    "MicroOp",
    "FunctionalUnit",
    "Scoreboard",
    "ScoreboardStats",
    "DEFAULT_LATENCIES",
    "DEFAULT_UNIT_COUNTS",
    "expansion_program",
    "MinSeekingNetwork",
    "Interconnect",
    "NetworkStats",
    "ProcessorState",
    "LocalMemory",
    "BLogMachine",
    "MachineConfig",
    "MachineResult",
    "SortingNetwork",
    "batcher_network",
    "min_tree_cost",
    "BanyanNetwork",
    "omega_route",
    "crossbar_cost",
    "TaskGraph",
    "ScheduleResult",
    "list_schedule",
    "InterpreterReport",
    "compile_expansion",
    "simulate_query",
]
