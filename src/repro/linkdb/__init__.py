"""The physical linked-list clause database of figure 4: blocks per
Horn clause with named, weighted pointers, maintained like inverted
files; plus the figure-2 fact graph view."""

from .blocks import BLOCK_HEADER_WORDS, POINTER_WORDS, Block, NamedPointer
from .build import LinkedDatabase, fact_graph

__all__ = [
    "Block",
    "NamedPointer",
    "POINTER_WORDS",
    "BLOCK_HEADER_WORDS",
    "LinkedDatabase",
    "fact_graph",
]
