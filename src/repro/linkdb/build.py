"""Building and maintaining the linked database (figure 4).

:class:`LinkedDatabase` materializes a :class:`~repro.logic.program.Program`
into blocks + named weighted pointers, keeps them consistent under
clause insertion ("The updating process for this data structure will be
similar to the updating process for inverted files"), and syncs pointer
weights with a :class:`~repro.weights.store.WeightStore`.

Block ids equal clause ids, so pointer arc keys ``("pointer",
(caller_block, literal_index, callee_block))`` coincide with the
OR-tree's pointer arc keys — the tree and the physical database agree
on weight identities by construction.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator, Optional

import networkx as nx

from ..logic.parser import Clause
from ..logic.program import Program
from ..logic.terms import Atom, Struct, Term
from ..ortree.tree import ArcKey
from ..weights.store import WeightStore
from .blocks import Block, NamedPointer

__all__ = ["LinkedDatabase", "fact_graph"]


class LinkedDatabase:
    """The physical clause store: blocks with named weighted pointers.

    Parameters
    ----------
    program:
        Logical clause source; block ids mirror its clause ids.
    store:
        Weight store supplying pointer weights.  When omitted, a fresh
        default store is created (all pointers UNKNOWN at N+1).
    """

    def __init__(self, program: Program, store: Optional[WeightStore] = None):
        self.program = program
        # explicit None check: an empty WeightStore is falsy (len 0)
        self.store = WeightStore() if store is None else store
        self.blocks: list[Block] = []
        self._heads: dict[tuple[str, int], list[int]] = defaultdict(list)
        self.rebuild()

    # -- construction / maintenance -------------------------------------------
    def rebuild(self) -> None:
        """(Re)build all blocks and pointers from the program.

        Retracted clauses leave *dead* block slots (ids stay stable, the
        figure-4 invariant), excluded from iteration, heads and wiring;
        ``SemanticPagingDisk.compact()`` reclaims them on disk.
        """
        live = set(self.program.clause_ids())
        total = (max(live) + 1) if live else 0
        self.dead: set[int] = set(range(total)) - live
        self.blocks = []
        self._heads = defaultdict(list)
        for cid in range(total):
            clause = self.program.clause(cid)  # retracted text retained
            self.blocks.append(Block(block_id=cid, clause=clause))
            if cid in live:
                self._heads[clause.indicator].append(cid)
        for block in self.blocks:
            if block.block_id in self.dead:
                block.pointers = []
            else:
                self._wire_block(block)

    def _wire_block(self, block: Block) -> None:
        block.pointers = []
        for ix, goal in enumerate(block.clause.body):
            try:
                ind = goal.indicator
            except TypeError:
                continue
            for target in self._heads.get(ind, ()):
                key = ArcKey("pointer", (block.block_id, ix, target))
                block.pointers.append(
                    NamedPointer(
                        name=ind[0],
                        literal_index=ix,
                        target=target,
                        weight=self.store.weight(key),
                    )
                )

    def add_clause(self, clause: Clause) -> int:
        """Insert a clause: new block, plus inverted-file pointer updates
        in every block whose body can now resolve to it."""
        cid = self.program.add(clause)
        block = Block(block_id=cid, clause=clause)
        while len(self.blocks) <= cid:
            self.blocks.append(block)
        self.blocks[cid] = block
        self._heads[clause.indicator].append(cid)
        self._wire_block(block)
        ind = clause.indicator
        for other in self.blocks:
            if other.block_id == cid:
                continue
            for ix, goal in enumerate(other.clause.body):
                try:
                    gind = goal.indicator
                except TypeError:
                    continue
                if gind == ind:
                    key = ArcKey("pointer", (other.block_id, ix, cid))
                    other.pointers.append(
                        NamedPointer(
                            name=ind[0],
                            literal_index=ix,
                            target=cid,
                            weight=self.store.weight(key),
                        )
                    )
        return cid

    def refresh_weights(self) -> None:
        """Re-read every pointer weight from the store (after updates)."""
        for block in self:
            for p in block.pointers:
                p.weight = self.store.weight(p.arc_key(block.block_id))

    # -- access -----------------------------------------------------------------
    def retract_clause(self, cid: int) -> None:
        """Retract a clause: its block dies and every pointer to it is
        unlinked (the inverted-file delete of §5)."""
        self.program.retract(cid)
        self.dead.add(cid)
        block = self.blocks[cid]
        try:
            ind = block.clause.indicator
            if cid in self._heads.get(ind, ()):
                self._heads[ind].remove(cid)
        except TypeError:
            pass
        block.pointers = []
        for other in self.blocks:
            if other.block_id == cid or other.block_id in self.dead:
                continue
            other.pointers = [p for p in other.pointers if p.target != cid]

    def block(self, block_id: int) -> Block:
        return self.blocks[block_id]

    def __len__(self) -> int:
        return len(self.blocks) - len(self.dead)

    def __iter__(self) -> Iterator[Block]:
        return (b for b in self.blocks if b.block_id not in self.dead)

    def blocks_for(self, indicator: tuple[str, int]) -> list[int]:
        """Block ids whose clause head matches ``indicator``."""
        return list(self._heads.get(indicator, ()))

    @property
    def total_words(self) -> int:
        """Total database footprint in words — the "substantial increase
        in database size" §5 accepts to keep per-arc weights."""
        return sum(b.size_words for b in self)

    @property
    def pointer_count(self) -> int:
        return sum(len(b.pointers) for b in self)

    def as_graph(self) -> "nx.DiGraph":
        """Block-level pointer graph (for SPD paging experiments)."""
        g = nx.DiGraph()
        for b in self:
            g.add_node(b.block_id, indicator=b.indicator, words=b.size_words)
        for b in self:
            for p in b.pointers:
                g.add_edge(b.block_id, p.target, name=p.name, weight=p.weight)
        return g

    def render(self) -> str:
        """Figure-4 style listing of every block."""
        return "\n".join(b.render() for b in self)


def fact_graph(program: Program) -> "nx.MultiDiGraph":
    """The figure-2 view: constants as nodes, binary facts as labeled arcs.

    ``f(curt, elain)`` becomes an arc ``curt --f--> elain``.  Only
    binary facts with atomic arguments participate (exactly the shape
    of the paper's example database).
    """
    g = nx.MultiDiGraph()
    for clause in program.facts():
        head = clause.head
        if (
            isinstance(head, Struct)
            and head.arity == 2
            and all(isinstance(a, Atom) for a in head.args)
        ):
            src, dst = head.args
            g.add_edge(src.name, dst.name, label=head.functor)
    return g
