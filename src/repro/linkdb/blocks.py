"""The figure-4 linked-list database: blocks with named weighted pointers.

Section 5: "The database will be stored as a linked list data
structure, with blocks representing each Horn clause (rule or fact),
and pointers to blocks representing other rules or facts in the
database that can resolve the rule.  [...] just below each named
pointer is a weight.  It may be recognized that these blocks are much
like inverted files kept for each rule."

A :class:`Block` holds one Horn clause; for every body literal it keeps
one :class:`NamedPointer` per clause whose head can resolve that
literal (indicator match — the static over-approximation an inverted
file gives; unification still filters at run time).  Weights live *on
the pointers* ("the weights are stored with the pointers, rather than
at the beginning of each block.  This speeds up the search process
because we can decide whether we wish to retrieve another block by
examining these weights, before we access the block").

Blocks also know their size in memory words so the SPD simulator can
lay them out on tracks: header (2 words: block id, clause text handle)
+ 1 word per term symbol + 3 words per pointer (name, target, weight).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..logic.parser import Clause
from ..logic.terms import term_size
from ..ortree.tree import ArcKey

__all__ = ["NamedPointer", "Block", "POINTER_WORDS", "BLOCK_HEADER_WORDS"]

POINTER_WORDS = 3  # name, target block number, weight
BLOCK_HEADER_WORDS = 2  # block number, clause handle


@dataclass
class NamedPointer:
    """A weighted pointer from a body literal to a resolving clause.

    ``name`` is the literal's predicate name (the pointer label of
    figure 4); ``literal_index`` its position in the body; ``target``
    the block id of the candidate clause; ``weight`` the current bound
    component.
    """

    name: str
    literal_index: int
    target: int
    weight: float

    def arc_key(self, source_block: int) -> ArcKey:
        """The weight-store key this pointer corresponds to."""
        return ArcKey("pointer", (source_block, self.literal_index, self.target))


@dataclass
class Block:
    """One Horn clause as a physical database block."""

    block_id: int
    clause: Clause
    pointers: list[NamedPointer] = field(default_factory=list)

    @property
    def indicator(self) -> tuple[str, int]:
        return self.clause.indicator

    @property
    def is_fact(self) -> bool:
        return self.clause.is_fact

    def pointers_for_literal(self, literal_index: int) -> list[NamedPointer]:
        return [p for p in self.pointers if p.literal_index == literal_index]

    @property
    def size_words(self) -> int:
        """Block footprint in memory words (for SPD track layout)."""
        body_words = sum(term_size(g) for g in self.clause.body)
        return (
            BLOCK_HEADER_WORDS
            + term_size(self.clause.head)
            + body_words
            + POINTER_WORDS * len(self.pointers)
        )

    def render(self) -> str:
        """Figure-4 style rendering: the clause, then named pointers
        with their weights underneath."""
        lines = [str(self.clause)]
        for p in self.pointers:
            lines.append(f"    {p.name}[{p.literal_index}] -> block {p.target}")
            lines.append(f"        weight {p.weight:g}")
        return "\n".join(lines)

    def __iter__(self) -> Iterator[NamedPointer]:
        return iter(self.pointers)
