#!/usr/bin/env python3
"""Semantic paging in action (§6, figure 6).

Lays a five-generation family database out over semantic paging disks,
extracts semantic pages of increasing Hamming radius, and compares the
disk work against conventional fixed-size paging and against SIMD-mode
operation.

Run:  python examples/spd_paging.py
"""

from repro.linkdb import LinkedDatabase
from repro.reporting import print_table
from repro.spd import FixedPager, SemanticPagingDisk, SimdSpd
from repro.workloads import scaled_family


def main() -> None:
    fam = scaled_family(5, 2, 3, seed=3)
    db = LinkedDatabase(fam.program)
    print(
        f"Linked database: {len(db)} blocks, {db.pointer_count} weighted "
        f"pointers, {db.total_words} words\n"
    )

    # --- semantic pages of growing radius ---------------------------------
    rows = []
    for radius in (0, 1, 2, 3):
        spd = SemanticPagingDisk(db, n_sps=2, track_words=256)
        page = spd.page_in([0], radius=radius)
        rows.append(
            {
                "radius": radius,
                "page_blocks": len(page.blocks),
                "track_loads": page.track_loads,
                "disk_cycles": round(page.cycles),
            }
        )
    print_table("semantic page vs Hamming radius (start: block 0)", rows)

    # --- semantic vs fixed paging -------------------------------------------
    spd = SemanticPagingDisk(db, n_sps=2, track_words=256)
    page = spd.page_in([0], radius=3)
    pager = FixedPager(db, blocks_per_page=4, cache_pages=2)
    pager.touch_all(sorted(page.blocks))
    print_table(
        "same blocks, two paging disciplines",
        [
            {
                "discipline": "semantic (graph pages)",
                "cycles": round(page.cycles),
            },
            {
                "discipline": "fixed 4-block pages, LRU(2)",
                "cycles": round(pager.cycles),
            },
        ],
    )

    # --- SIMD vs MIMD ------------------------------------------------------------
    simd = SimdSpd(db, n_sps=4, track_words=128)
    sp_page = simd.page_in([0], radius=3)
    mimd = SemanticPagingDisk(db, n_sps=4, track_words=128)
    mp_page = mimd.page_in([0], radius=3)
    assert sp_page.blocks == mp_page.blocks
    print_table(
        "SIMD vs MIMD SP modes (radius-3 page, 4 SPs)",
        [
            {
                "mode": "SIMD cylinders",
                "loads": simd.track_loads,
                "cycles": round(sp_page.cycles),
            },
            {
                "mode": "MIMD tracks",
                "loads": mp_page.track_loads,
                "cycles": round(mp_page.cycles),
            },
        ],
    )
    print(
        "\nA semantic page is 'a subgraph defined by the state of the\n"
        "process at run time' — blocks arrive because the search is about\n"
        "to dereference them, not because they share a page frame."
    )


if __name__ == "__main__":
    main()
