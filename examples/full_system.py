#!/usr/bin/env python3
"""The complete B-LOG system in one object.

`BLogSystem` wires the whole paper together: the clause database on
semantic paging disks, the adaptive weight store with sessions and
conservative merges, both executors (sequential engine and the
simulated parallel machine), session-end write-back of learned weights
to disk, and JSON persistence of the global store.

Run:  python examples/full_system.py
"""

import tempfile
from pathlib import Path

from repro import BLogConfig, BLogSystem
from repro.machine import MachineConfig
from repro.workloads import scaled_family


def main() -> None:
    fam = scaled_family(generations=5, children_per_couple=2,
                        couples_per_generation=2, seed=11)
    store_path = Path(tempfile.gettempdir()) / "blog_weights_demo.json"
    if store_path.exists():
        store_path.unlink()

    system = BLogSystem(
        fam.program,
        BLogConfig(n=16, a=16, max_depth=64),
        machine=MachineConfig(n_processors=4, tasks_per_processor=2, d=2.0),
        n_sps=2,
        store_path=store_path,
    )
    print(system)

    # gf queries mix succeeding f-chains with failing m-chains, so the
    # learned weights genuinely pay (anc-style failure-free queries would
    # not — see EXPERIMENTS.md, E3)
    subject = fam.roots[0]
    query = f"gf({subject}, G)"

    # --- session 1: learn -------------------------------------------------
    system.begin_session()
    cold = system.query(query, max_solutions=1)
    print(f"\ncold sequential query : {cold.expansions_to_first} expansions to first answer")
    full = system.query(query)
    print(f"full enumeration      : {len(full.answers)} grandchildren of {subject}")
    merge, writeback = system.end_session()
    print(
        f"session merged        : {merge.adopted} adopted, {merge.averaged} averaged;"
        f" write-back touched {writeback.blocks_touched} blocks"
        f" ({writeback.dirty_pointers} pointers, {writeback.cycles:.0f} disk cycles)"
    )

    # --- the same query on the parallel machine ---------------------------------
    par = system.query_parallel(query)
    print(
        f"\nparallel machine      : {len(par.answers)} answers in "
        f"{par.makespan:.0f} cycles on 4 processors "
        f"(utilization {par.mean_utilization:.2f}, {par.migrations} migrations)"
    )

    # --- persistence across restarts ------------------------------------------------
    system.save()
    reborn = BLogSystem(
        fam.program, BLogConfig(n=16, a=16, max_depth=64), store_path=store_path
    )
    warm = reborn.query(query, max_solutions=1)
    print(
        f"\nafter restart (store loaded from {store_path.name}): "
        f"{warm.expansions_to_first} expansions to first answer "
        f"(cold was {cold.expansions_to_first})"
    )
    store_path.unlink()


if __name__ == "__main__":
    main()
