#!/usr/bin/env python3
"""The §4 weight theory, end to end on the paper's own example.

Builds the figure-3 OR-tree, sets up the "N equations in M unknowns"
linear system over arc weights, solves it, verifies the branch-and-
bound requirements, and then shows the heuristic §5 updates converging
to the same structure.

Run:  python examples/weight_theory.py
"""

from repro import BLogConfig, BLogEngine, OrTree
from repro.ortree.dot import to_dot
from repro.weights import solve_weights, store_from_theory, verify_assignment
from repro.workloads import FIGURE1_QUERY, family_program


def main() -> None:
    program = family_program()

    # --- exact weights (§4) --------------------------------------------
    tree = OrTree(program, FIGURE1_QUERY, arc_key_policy="goal")
    tree.expand_all()
    theory = solve_weights(tree)
    print("The §4 linear system on the figure-3 tree:")
    print(f"  equations (solution chains) : {theory.n_solutions}")
    print(f"  failure chains              : {theory.n_failures}")
    print(
        f"  unknowns (distinct arcs)    : "
        f"{len(theory.finite_weights) + len(theory.infinite_arcs)}"
    )
    print(f"  common chain bound (target) : {theory.target:g}  (= log2 S)")
    print(f"  residual                    : {theory.residual:.2e}")
    print(f"  feasible                    : {theory.feasible}")
    print(f"  verified on the tree        : {verify_assignment(tree, theory)}\n")

    print("Solved arc weights (w = -log2 p):")
    for key, w in sorted(theory.finite_weights.items(), key=lambda kv: str(kv[0])):
        print(f"  w = {w:5.3f}   p = {theory.probability(key):5.3f}   {key}")
    for key in sorted(theory.infinite_arcs, key=str):
        print(f"  w =   inf   p = 0.000   {key}  <- the failing m-branch")

    # --- the heuristic converging to the same structure (§5) ----------------
    print("\nHeuristic §5 updates after a 3-query session:")
    engine = BLogEngine(program, BLogConfig(n=8, a=16))
    engine.begin_session()
    for _ in range(3):
        engine.query(FIGURE1_QUERY)
    store = engine.store
    ptree = OrTree(program, FIGURE1_QUERY, arc_key_policy="pointer")
    ptree.expand_all()
    for sol in ptree.solutions():
        keys = {
            a.key for a in ptree.chain_arcs(sol.nid) if a.key.kind != "builtin"
        }
        total = sum(store.weight(k) for k in keys)
        answer = ptree.solution_answer(sol)["G"]
        print(f"  chain to G={answer}: weight sum = {total:g}  (target N = 8)")
    (fail,) = ptree.failures()
    inf_arcs = [
        a.key for a in ptree.chain_arcs(fail.nid) if store.is_infinite(a.key)
    ]
    print(f"  failing chain: {len(inf_arcs)} arc(s) priced at infinity")
    engine.end_session()

    # --- a figure-3 diagram for a Graphviz viewer --------------------------------
    seeded = store_from_theory(theory, n=8.0)
    dot = to_dot(tree, title="figure 3 with exact weights")
    print(f"\nGraphviz export: {len(dot.splitlines())} DOT lines "
          "(pipe through `dot -Tpng` to draw figure 3)")


if __name__ == "__main__":
    main()
