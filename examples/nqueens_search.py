#!/usr/bin/env python3
"""N-queens: a non-deterministic search workload through every engine.

Solves 6-queens with (a) the Prolog baseline, (b) the B-LOG best-first
engine, and (c) the OS-process OR-parallel backend, and prints the
boards plus work accounting.  OR-parallelism "is specially effective in
speeding up non-deterministic programs, specially when more than one
solution is needed" (§7) — the per-branch solution counts show why.

Run:  python examples/nqueens_search.py
"""

import time

from repro import BLogConfig, BLogEngine, Solver
from repro.core import or_parallel_solve
from repro.workloads import board_from_term, nqueens_program, nqueens_query


def render(board: list[int]) -> str:
    n = len(board)
    lines = []
    for row in range(n, 0, -1):
        cells = ["Q" if board[col] == row else "." for col in range(n)]
        lines.append(" ".join(cells))
    return "\n".join(lines)


def main() -> None:
    n = 6
    program = nqueens_program(n)

    # (a) Prolog baseline
    solver = Solver(program, max_depth=8 * n + 32)
    t0 = time.perf_counter()
    boards = [
        board_from_term(s["Qs"]) for s in solver.solve(nqueens_query())
    ]
    t_prolog = time.perf_counter() - t0
    print(f"{n}-queens: {len(boards)} solutions")
    print(f"  Prolog baseline: {solver.stats.inferences} inferences, "
          f"{t_prolog * 1000:.1f} ms")
    print("\nFirst board:")
    print(render(boards[0]))

    # (b) B-LOG engine
    engine = BLogEngine(program, BLogConfig(max_depth=520))
    t0 = time.perf_counter()
    result = engine.query(nqueens_query())
    t_blog = time.perf_counter() - t0
    print(
        f"\n  B-LOG engine: {result.expansions} expansions, "
        f"{len(result.answers)} answers, {t_blog * 1000:.1f} ms"
    )
    assert len(result.answers) == len(boards)

    # (c) OR-parallel over OS processes
    t0 = time.perf_counter()
    par = or_parallel_solve(program, nqueens_query(), processes=4,
                            max_depth=8 * n + 32)
    t_par = time.perf_counter() - t0
    print(
        f"  OR-parallel (4 processes): {len(par.answers)} answers over "
        f"{par.branches} branches, per-branch counts "
        f"{par.per_branch_solutions}, {t_par * 1000:.1f} ms"
    )
    assert len(par.answers) == len(boards)
    print(
        "\n(Process fork+pickle overhead usually swamps a board this "
        "small — exactly the communication cost the paper's D threshold "
        "models; try n=8 to see the crossover.)"
    )


if __name__ == "__main__":
    main()
