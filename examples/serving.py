"""Serving B-LOG: the concurrent query service end to end.

Starts a :class:`~repro.service.BLogService` over two programs, runs a
mixed-session burst through the in-process API, shows the answer cache
filling, a session merge invalidating it (the weight-store generation
counter), a machine-engine request, and the stats a fleet operator
would watch — then does one round-trip over the TCP line-JSON endpoint.

Run:  PYTHONPATH=src python examples/serving.py
"""

import asyncio
import json

from repro.service import BLogService, QueryRequest, format_stats
from repro.workloads import family_program, nrev_program


async def main() -> None:
    service = BLogService(
        {"family": family_program(), "nrev": nrev_program()},
        n_workers=4,
        max_pending=64,
    )
    await service.start()

    # -- a mixed-session burst -------------------------------------------
    print("== burst: three sessions, two programs (concurrent) ==")
    burst = [
        QueryRequest("family", "gf(sam, G)", session="alice"),
        QueryRequest("family", "gf(curt, G)", session="alice"),
        QueryRequest("nrev", "nrev([a,b,c], R)", session="carol"),
        QueryRequest("family", "gf(sam, G)", session="carol", engine="machine"),
    ]
    for resp in await asyncio.gather(*(service.submit(r) for r in burst)):
        print(
            f"  {resp.request_id}: engine={resp.engine:<8} "
            f"cached={str(resp.cached):<5} answers={resp.answers}"
        )

    # a renamed re-ask is a cache hit — variable names are canonicalized
    # away in the key, and answers come back under *this* asker's names
    renamed = await service.submit(
        QueryRequest("family", "gf(sam, Who)", session="bob")
    )
    print(f"  {renamed.request_id}: cached={renamed.cached} answers={renamed.answers}")

    # -- session merge invalidates cached answers -------------------------
    print("\n== end alice's session: conservative merge, cache goes stale ==")
    store = service.programs["family"].global_store
    print(f"  generation before merge: {store.generation}")
    report = await service.end_session("family", "alice")
    print(f"  merge report: {report}")
    print(f"  generation after merge:  {store.generation}")
    again = await service.submit(QueryRequest("family", "gf(sam, G)", session="bob"))
    print(f"  re-ask gf(sam, G): cached={again.cached}  (stale entry evicted)")

    # -- operator stats ----------------------------------------------------
    print("\n== stats ==")
    print(format_stats(service.stats()))

    # -- the TCP front-end -------------------------------------------------
    print("\n== one round-trip over TCP (line JSON) ==")
    server = await service.serve_tcp("127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        (json.dumps({"program": "family", "query": "f(larry, Y)"}) + "\n").encode()
    )
    await writer.drain()
    print("  reply:", json.loads(await reader.readline()))
    writer.close()
    await writer.wait_closed()

    await service.stop()


if __name__ == "__main__":
    asyncio.run(main())
