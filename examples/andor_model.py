#!/usr/bin/env python3
"""The AND/OR process model vs B-LOG's OR-tree (§2's modeling choice).

Runs the same queries through both models, showing the tree shapes,
the join work the AND/OR model pays, the ideal AND∥OR speedup it can
expose — and then places its task graph on finite machines with list
scheduling.

Run:  python examples/andor_model.py
"""

from repro.machine import list_schedule
from repro.ortree import AndOrEvaluator, OrTree, breadth_first
from repro.reporting import print_table
from repro.workloads import family_program, synthetic_tree


def main() -> None:
    program = family_program()
    wl = synthetic_tree(branching=3, depth=4, seed=5)

    rows = []
    for label, prog, query, depth in [
        ("gf(sam,G)", program, "gf(sam, G)", 32),
        ("two independent gf's", program, "gf(sam, G1), gf(curt, G2)", 32),
        ("synthetic b=3 d=4", wl.program, wl.query, 32),
    ]:
        tree = OrTree(prog, query, max_depth=depth)
        breadth_first(tree)
        ao = AndOrEvaluator(prog, max_depth=depth).run(query)
        rows.append(
            {
                "query": label,
                "or_nodes": len(tree.nodes),
                "andor_nodes": ao.stats.or_nodes + ao.stats.and_nodes,
                "join_work": ao.stats.join_work,
                "ideal_speedup": round(ao.ideal_speedup, 2),
                "answers": len(ao.answers),
            }
        )
    print_table("OR-tree (B-LOG, §2) vs AND/OR process model [4]", rows)

    # --- schedule the AND/OR task graph on finite machines -----------------
    res = AndOrEvaluator(wl.program, max_depth=32).run(wl.query, record_tasks=True)
    graph = res.task_graph
    print(
        f"\nAND/OR task graph for the synthetic query: "
        f"{len(graph.durations)} tasks, {len(graph.edges)} precedence "
        f"edges, critical path {graph.critical_path():g}"
    )
    rows = []
    for n in (1, 2, 4, 8, 16):
        sched = list_schedule(graph, n)
        rows.append(
            {
                "processors": n,
                "makespan": sched.makespan,
                "speedup": round(sched.speedup, 2),
                "efficiency": round(sched.efficiency, 2),
            }
        )
    print_table("list-scheduled on N processors", rows)
    print(
        "\nB-LOG linearizes conjunctions 'in very much the same way Prolog\n"
        "does' (§2) and wins on join-free execution; the AND/OR model\n"
        "exposes conjunction parallelism B-LOG leaves on the table — the\n"
        "trade §7 revisits with its AND-parallel extensions."
    )


if __name__ == "__main__":
    main()
