#!/usr/bin/env python3
"""The simulated parallel B-LOG machine (§6) on a bushy search.

Builds the linked clause database, lays it out over semantic paging
disks, and runs the N-processor machine over a synthetic OR-tree at
several machine sizes, reporting makespan, speedup, utilization, chain
migrations and disk behaviour — the figure-5 environment, live.

Run:  python examples/parallel_machine.py
"""

from repro.linkdb import LinkedDatabase
from repro.machine import BLogMachine, MachineConfig
from repro.ortree import OrTree
from repro.reporting import print_table
from repro.spd import SemanticPagingDisk
from repro.workloads import synthetic_tree


def main() -> None:
    wl = synthetic_tree(branching=3, depth=5, dead_fraction=0.34, seed=7)
    print(
        f"Workload: synthetic OR-tree, branching {wl.branching}, depth "
        f"{wl.depth}, {wl.n_dead_branches} dead subtree(s), "
        f"{wl.n_solutions} solutions\n"
    )

    rows = []
    base = None
    for n_processors in (1, 2, 4, 8, 16):
        db = LinkedDatabase(wl.program)
        disk = SemanticPagingDisk(db, n_sps=2, track_words=256)
        tree = OrTree(wl.program, wl.query, max_depth=32)
        config = MachineConfig(
            n_processors=n_processors,
            tasks_per_processor=2,
            d=2.0,  # the §6 migration threshold
        )
        result = BLogMachine(config, disk=disk).run(tree)
        if base is None:
            base = result.makespan
        rows.append(
            {
                "processors": n_processors,
                "makespan": result.makespan,
                "speedup": round(base / result.makespan, 2),
                "utilization": round(result.mean_utilization, 2),
                "migrations": result.migrations,
                "net_words": result.network_words_moved,
                "disk_cycles": round(result.disk_cycles),
                "answers": len(result.answers),
            }
        )

    print_table("B-LOG machine scaling (cycle-level simulation)", rows)
    print(
        "\nSpeedup grows while the OR frontier is wider than the machine\n"
        "and saturates beyond it; the minimum-seeking network spreads\n"
        "chains from the seed processor (migrations), and local memories\n"
        "absorb repeat block accesses after the first page-in."
    )


if __name__ == "__main__":
    main()
