#!/usr/bin/env python3
"""Quickstart: the paper's figure-1 example end to end.

Loads the family database, answers ``?- gf(sam, G)`` with the Prolog
baseline, shows the figure-3 OR-tree, then runs the B-LOG engine with
adaptive weights and a session.

Run:  python examples/quickstart.py
"""

from repro import BLogConfig, BLogEngine, OrTree, Program, Solver
from repro.workloads import FIGURE1_QUERY, FIGURE1_SOURCE


def main() -> None:
    print("=" * 64)
    print("B-LOG quickstart: the paper's figure-1 program")
    print("=" * 64)
    print(FIGURE1_SOURCE)

    program = Program.from_source(FIGURE1_SOURCE)

    # --- 1. the Prolog baseline (depth-first, §2) --------------------
    solver = Solver(program)
    print(f"?- {FIGURE1_QUERY}.   (depth-first baseline)")
    for sol in solver.solve(FIGURE1_QUERY):
        print(f"   {sol}")
    print(
        f"   [{solver.stats.inferences} inferences, "
        f"{solver.stats.resolutions} resolutions]\n"
    )

    # --- 2. the OR-tree of figure 3 (§2–3) ---------------------------
    tree = OrTree(program, FIGURE1_QUERY)
    tree.expand_all()
    print("The OR search tree (figure 3):")
    print(tree.render())
    print()

    # --- 3. the B-LOG engine: best-first with adaptive weights (§4–5)
    engine = BLogEngine(program, BLogConfig(n=8, a=16))
    engine.begin_session()

    cold = engine.query(FIGURE1_QUERY, max_solutions=1)
    print(
        f"B-LOG cold query : first answer G = {cold.answers[0]['G']} "
        f"after {cold.expansions_to_first} expansions"
    )
    warm = engine.query(FIGURE1_QUERY, max_solutions=1)
    print(
        f"B-LOG warm query : first answer G = {warm.answers[0]['G']} "
        f"after {warm.expansions_to_first} expansions "
        "(the failed m-branch is now priced at infinity)"
    )

    report = engine.end_session()
    print(
        f"\nSession merged into the global store: "
        f"{report.adopted} adopted, {report.averaged} averaged, "
        f"{report.suppressed_infinities} infinities suppressed"
    )
    print(f"Global store: {engine.store}")


if __name__ == "__main__":
    main()
