#!/usr/bin/env python3
"""Session-based weight learning on a realistic workload (§5).

A genealogy service answers a stream of similar ancestor queries.  We
run three sessions over a generated five-generation family; within
each session weights adapt strongly, and at each session end the
global database absorbs the results conservatively.  Watch the
per-query work drop as the weights converge.

Run:  python examples/session_learning.py
"""

from repro import BLogConfig, BLogEngine
from repro.workloads import query_sequence, scaled_family


def main() -> None:
    fam = scaled_family(generations=5, children_per_couple=2,
                        couples_per_generation=2, seed=42)
    print(
        f"Family database: {len(fam.program.facts())} facts, "
        f"{len(fam.program.rules())} rules, "
        f"{len(fam.people)} people over {len(fam.generations)} generations\n"
    )

    engine = BLogEngine(fam.program, BLogConfig(n=16, a=16, max_depth=64))

    for session_ix in range(3):
        queries = query_sequence(
            fam, n_queries=6, predicate="anc", seed=100 + session_ix
        )
        engine.begin_session()
        print(f"--- session {session_ix + 1} ---")
        total = 0
        for q in queries:
            result = engine.query(q)
            total += result.expansions
            print(
                f"  {q:<22} answers={len(result.answers):>3} "
                f"expansions={result.expansions:>4}"
            )
        report = engine.end_session()
        print(
            f"  session total: {total} expansions; merge: "
            f"{report.adopted} adopted, {report.averaged} averaged, "
            f"{report.retracted} retracted, "
            f"{report.suppressed_infinities} infinities suppressed"
        )
        print(f"  global store now: {engine.store}\n")

    print(
        "Conservative merging means a pointer once proven useful is never\n"
        "poisoned by a later failing session — infinities only ever land\n"
        "on pointers the global database knows nothing about."
    )


if __name__ == "__main__":
    main()
