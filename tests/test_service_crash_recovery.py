"""Crash-recovery harness: SIGKILL the whole server mid-load.

The durability contract under test is the strongest one the service
makes: an ``end_session`` reply is an *ack* — the merge it reports has
been fsynced to the write-ahead journal before the bytes of the reply
leave the process.  So after a SIGKILL at any moment:

* every acked (session, generation) pair is present in the snapshot's
  applied-map or the journal (zero acknowledged merges lost),
* replaying the journal with the dedupe rules applies each merge at
  most once (zero double-applied),
* ``DurableStore.recover()`` produces a store entry-for-entry equal to
  an *independent*, test-local replay of the same files.

The server runs as a real subprocess (``python -m repro serve``) so the
kill takes out every thread, lane, and buffered file handle at once —
exactly what a power cut or OOM kill does.  Backend selection follows
the suite convention: ``BLOG_SERVICE_BACKEND`` (thread | process).
``BLOG_CRASH_DATA_DIR``, when set (CI does), roots the data
directories somewhere the workflow can upload as a failure artifact.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.weights import WeightStore
from repro.weights.persist import apply_delta, store_from_dict
from repro.weights.wal import DurableStore, WeightWal

BACKEND = os.environ.get("BLOG_SERVICE_BACKEND", "thread")
REPO = Path(__file__).resolve().parent.parent
TIMEOUT = 60.0


def data_root() -> Path:
    """Parent for this test's data dirs; CI points it at an artifact path."""
    configured = os.environ.get("BLOG_CRASH_DATA_DIR")
    if configured:
        Path(configured).mkdir(parents=True, exist_ok=True)
    return Path(tempfile.mkdtemp(prefix="blog-crash-", dir=configured or None))


class Server:
    """A `repro serve` subprocess plus one line-oriented TCP client."""

    def __init__(self, data_dir: Path, *extra: str, program: str = "--demo"):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        source = ["--demo"] if program == "--demo" else ["--source", program]
        self.proc = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro", "serve", *source,
                "--port", "0", "--backend", BACKEND, "--workers", "2",
                "--data-dir", str(data_dir), *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=str(REPO),
        )
        self.port = self._await_port()
        self.sock = socket.create_connection(("127.0.0.1", self.port), TIMEOUT)
        self.sock.settimeout(TIMEOUT)
        self.rfile = self.sock.makefile("r", encoding="utf-8")

    def _await_port(self) -> int:
        deadline = time.monotonic() + TIMEOUT
        assert self.proc.stdout is not None
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise AssertionError(
                    f"server exited before serving (rc={self.proc.poll()})"
                )
            if line.startswith("serving "):
                # "serving family on 127.0.0.1:PORT (...)"
                return int(line.split(" on ", 1)[1].split()[0].rsplit(":", 1)[1])
        raise AssertionError("timed out waiting for the serving banner")

    def ask(self, msg: dict) -> dict:
        self.sock.sendall((json.dumps(msg) + "\n").encode())
        line = self.rfile.readline()
        if not line:
            raise AssertionError("server closed the connection mid-request")
        return json.loads(line)

    def send_only(self, msg: dict) -> None:
        self.sock.sendall((json.dumps(msg) + "\n").encode())

    def kill(self) -> None:
        self.proc.kill()
        self.proc.wait(timeout=TIMEOUT)

    def close(self) -> None:
        for closer in (self.rfile.close, self.sock.close):
            try:
                closer()
            except OSError:
                pass
        if self.proc.poll() is None:
            self.proc.kill()
        self.proc.wait(timeout=TIMEOUT)
        if self.proc.stdout is not None:
            self.proc.stdout.close()


def independent_replay(program_dir: Path) -> tuple[WeightStore, dict, list]:
    """Rebuild the store from disk WITHOUT DurableStore.recover().

    This is the oracle: plain JSON + frame parsing + ``apply_delta``,
    reimplementing the replay rules the docs promise (seq guard, then
    per-session generation high-water mark).
    """
    applied: dict[str, int] = {}
    snapshot_seq = 0
    store = WeightStore(n=16.0, a=16)
    snap = program_dir / "snapshot.json"
    if snap.exists():
        data = json.loads(snap.read_text())
        assert data["format"] == "blog-wal-snapshot-v1"
        store = store_from_dict(data["store"])
        store.generation = max(store.generation, int(data["generation"]))
        applied = {str(k): int(v) for k, v in data["applied"].items()}
        snapshot_seq = int(data["seq"])
    records, _, _ = WeightWal(program_dir / "wal.log").scan()
    replayed = []
    for rec in records:
        if rec["seq"] <= snapshot_seq:
            continue
        if applied.get(rec["session"], -1) >= rec["generation"]:
            continue
        apply_delta(store, rec["delta"])
        applied[rec["session"]] = rec["generation"]
        replayed.append((rec["session"], rec["generation"]))
    return store, applied, replayed


def entries(store: WeightStore) -> dict:
    return {k: store.entry(k) for k in store.keys()}


class TestSigkillRecovery:
    def test_no_acked_merge_lost_no_merge_double_applied(self, tmp_path):
        # the figure-1 demo is too small for ten sessions to each learn
        # something new; a scaled family gives every session its own
        # region of fact clauses (and therefore its own pointer arcs)
        from repro.workloads import scaled_family

        fam = scaled_family(
            generations=4, children_per_couple=2,
            couples_per_generation=3, seed=7,
        )
        source = tmp_path / "kin.pl"
        source.write_text(fam.source)
        people = [p for gen in fam.generations[:2] for p in gen]

        root = data_root()
        data_dir = root / "kill"
        srv = Server(data_dir, program=str(source))
        acks: dict[str, int] = {}
        try:
            # ~200 queries across 10 sessions, each session acked by an
            # end_session reply carrying the post-merge generation
            for s in range(10):
                session = f"crash-{s}"
                person = people[s % len(people)]
                for q in range(20):
                    goal = (
                        f"gf({person}, G)" if q % 2 else f"anc({person}, D)"
                    )
                    reply = srv.ask(
                        {"op": "query", "id": f"{session}-{q}",
                         "program": "kin", "query": goal,
                         "session": session}
                    )
                    assert reply["ok"], reply
                merged = srv.ask(
                    {"op": "end_session", "program": "kin",
                     "session": session}
                )
                assert merged["ok"], merged
                # a merge that adopted entries bumped the generation and
                # was journaled before this reply was sent — a strong ack
                if merged["merged"] and merged["merged"]["adopted"] > 0:
                    acks[session] = merged["merged"]["generation"]
            assert len(acks) >= 5, f"load produced too few acked merges: {acks}"
            # leave work in flight so the kill lands mid-load, then pull
            # the plug on the whole process tree
            for q in range(5):
                srv.send_only(
                    {"op": "query", "id": f"inflight-{q}", "program": "kin",
                     "query": f"anc({people[q]}, D)", "session": "inflight"}
                )
            srv.kill()
        finally:
            srv.close()

        program_dir = data_dir / "kin"
        reference, applied, replayed = independent_replay(program_dir)

        # zero acked merges lost: every acked (session, generation) is on
        # disk — in the snapshot's applied-map or as a journal record
        for session, generation in acks.items():
            assert applied.get(session, -1) >= generation, (
                f"acked merge lost: {session}@{generation} not on disk "
                f"(applied={applied})"
            )
        # zero double-applied: the replay rules touched each (session,
        # generation) at most once
        assert len(replayed) == len(set(replayed))

        # recover() agrees with the independent replay, entry for entry
        recovered, info = DurableStore(program_dir, n=16.0, a=16).recover()
        assert entries(recovered) == entries(reference)
        assert recovered.generation >= max(acks.values())
        assert info.seq >= len(replayed)

    def test_second_boot_serves_recovered_weights(self):
        root = data_root()
        data_dir = root / "reboot"
        srv = Server(data_dir)
        try:
            for q in range(10):
                srv.ask(
                    {"op": "query", "id": f"q{q}", "program": "family",
                     "query": "gf(sam, G)", "session": "boot"}
                )
            merged = srv.ask(
                {"op": "end_session", "program": "family", "session": "boot"}
            )
            assert merged["ok"] and merged["merged"] is not None
            acked = merged["merged"]["generation"]
            srv.kill()
        finally:
            srv.close()

        srv2 = Server(data_dir)
        try:
            health = srv2.ask({"op": "health"})
            assert health["ok"]
            assert "recovering" in health["history"]
            stats = srv2.ask({"op": "stats"})
            durable = stats["stats"]["durability"]["family"]
            assert durable["recovery"]["records_replayed"] >= 1
            reply = srv2.ask(
                {"op": "query", "id": "after", "program": "family",
                 "query": "gf(sam, G)", "session": "boot2"}
            )
            assert reply["ok"]
            merged2 = srv2.ask(
                {"op": "end_session", "program": "family", "session": "boot2"}
            )
            assert merged2["ok"]
            if merged2["merged"] is not None:
                # generations never regress across a crash — the dedupe
                # keys on them, so a reused one would be silently dropped
                assert merged2["merged"]["generation"] >= acked
            srv2.kill()
        finally:
            srv2.close()

    def test_recover_cli_reports_the_journal(self):
        root = data_root()
        data_dir = root / "cli"
        srv = Server(data_dir)
        try:
            for q in range(5):
                srv.ask(
                    {"op": "query", "id": f"q{q}", "program": "family",
                     "query": "gf(sam, G)", "session": "s"}
                )
            merged = srv.ask(
                {"op": "end_session", "program": "family", "session": "s"}
            )
            assert merged["ok"]
            srv.kill()
        finally:
            srv.close()
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        out = subprocess.run(
            [sys.executable, "-m", "repro", "recover", str(data_dir),
             "--format", "json"],
            capture_output=True, text=True, env=env, cwd=str(REPO),
            timeout=TIMEOUT,
        )
        assert out.returncode == 0, out.stdout + out.stderr
        reports = json.loads(out.stdout)
        assert reports[0]["program"] == "family" and reports[0]["ok"]
        assert reports[0]["entries"] > 0


class TestGracefulShutdown:
    def test_sigterm_drains_checkpoints_and_exits_zero(self):
        root = data_root()
        data_dir = root / "drain"
        srv = Server(data_dir)
        try:
            for q in range(10):
                srv.ask(
                    {"op": "query", "id": f"q{q}", "program": "family",
                     "query": "gf(sam, G)", "session": "open-session"}
                )
            # "open-session" is deliberately NOT end_session'd: the drain
            # must merge it on the way down
            srv.proc.send_signal(signal.SIGTERM)
            stdout, _ = srv.proc.communicate(timeout=TIMEOUT)
        finally:
            srv.close()
        assert srv.proc.returncode == 0, stdout
        assert "drained." in stdout

        program_dir = data_dir / "family"
        # the final checkpoint compacted the journal into the snapshot
        assert (program_dir / "snapshot.json").exists()
        assert (program_dir / "wal.log").stat().st_size == 0
        snapshot = json.loads((program_dir / "snapshot.json").read_text())
        assert "open-session" in snapshot["applied"]
        recovered, info = DurableStore(program_dir, n=16.0, a=16).recover()
        assert info.snapshot_loaded and info.records_replayed == 0
        assert len(list(recovered.keys())) > 0

    def test_sigterm_without_data_dir_still_exits_zero(self):
        # lifecycle without durability: drain must not require a data dir
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "serve", "--demo",
             "--port", "0", "--backend", BACKEND, "--workers", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env, cwd=str(REPO),
        )
        try:
            assert proc.stdout is not None
            deadline = time.monotonic() + TIMEOUT
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if line.startswith("serving "):
                    break
            else:
                pytest.fail("no serving banner")
            proc.send_signal(signal.SIGTERM)
            stdout, _ = proc.communicate(timeout=TIMEOUT)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=TIMEOUT)
        assert proc.returncode == 0, stdout
        assert "drained." in stdout
