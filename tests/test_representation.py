"""Tests for the structure-sharing vs copying cost analysis."""

import pytest

from repro.ortree import OrTree
from repro.ortree.representation import representation_costs
from repro.workloads import comb_tree, family_program, scaled_family


def developed(program, query, max_depth=64):
    tree = OrTree(program, query, max_depth=max_depth)
    tree.expand_all()
    return tree


class TestCosts:
    def test_counts_every_non_root_node(self):
        tree = developed(family_program(), "gf(sam, G)")
        costs = representation_costs(tree)
        assert costs.nodes == len(tree.nodes) - 1

    def test_sharing_saves_memory(self):
        fam = scaled_family(4, 2, 2, seed=50)
        tree = developed(fam.program, f"anc({fam.roots[0]}, D)")
        costs = representation_costs(tree)
        assert costs.share_memory_words < costs.copy_memory_words
        assert costs.memory_ratio > 1.0

    def test_sharing_costs_access(self):
        """On deep chains, dereference chains make sharing touch more
        cells than direct copied access."""
        wl = comb_tree(teeth=2, tooth_depth=12)
        tree = developed(wl.program, wl.query, max_depth=32)
        costs = representation_costs(tree)
        assert costs.share_access_touches > costs.copy_access_touches

    def test_deeper_trees_widen_access_gap(self):
        shallow = developed(comb_tree(2, 3).program, "l0(W)", 16)
        deep = developed(comb_tree(2, 12).program, "l0(W)", 32)
        r_shallow = representation_costs(shallow).access_ratio
        r_deep = representation_costs(deep).access_ratio
        assert r_deep > r_shallow

    def test_contention_cells_grow_with_depth(self):
        wl = comb_tree(teeth=2, tooth_depth=10)
        tree = developed(wl.program, wl.query, max_depth=32)
        costs = representation_costs(tree)
        assert costs.shared_frame_cells > 0

    def test_copy_memory_matches_tree_accounting(self):
        tree = developed(family_program(), "gf(sam, G)")
        costs = representation_costs(tree)
        assert costs.copy_memory_words == tree.words_copied

    def test_empty_tree(self):
        tree = OrTree(family_program(), "gf(sam, G)")
        costs = representation_costs(tree)
        assert costs.nodes == 0
        assert costs.memory_ratio == 1.0
        assert costs.access_ratio == 1.0
