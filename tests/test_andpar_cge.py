"""Tests for Conditional Graph Expressions (restricted AND-parallelism)."""

import pytest

from repro.andpar.cge import (
    CgeExecutor,
    Goal,
    IfGround,
    Par,
    Seq,
    compile_clause,
)
from repro.logic import Bindings, Program, Solver, parse_clause, parse_query, unify
from repro.logic.solver import _rename_clause
from repro.logic.terms import term_vars


class TestCompilation:
    def test_fact_empty_plan(self):
        plan = compile_clause(parse_clause("f(a)."))
        assert plan == Seq(())

    def test_single_goal(self):
        plan = compile_clause(parse_clause("p(X) :- q(X)."))
        assert plan == Goal(0)

    def test_linked_body_sequential(self):
        # Y links both goals and is NOT a head variable: always sequential
        plan = compile_clause(parse_clause("p(X) :- q(X, Y), r(Y)."))
        assert isinstance(plan, (Seq, IfGround))
        if isinstance(plan, IfGround):
            pytest.fail("local links must not be guarded away")

    def test_head_var_crossing_emits_guard(self):
        # X crosses both goals but is a head variable: parallel iff X ground
        plan = compile_clause(parse_clause("p(X) :- q(X), r(X)."))
        assert isinstance(plan, IfGround)
        assert isinstance(plan.then, Par)
        assert isinstance(plan.otherwise, Seq)

    def test_fully_independent_unconditional_par(self):
        plan = compile_clause(parse_clause("p :- q(A), r(B)."))
        assert isinstance(plan, Par)

    def test_mixed_groups(self):
        plan = compile_clause(parse_clause("p(X) :- a(X, M), b(M), c(Z)."))
        # {a,b} linked by local M; {c} separate; no head var crosses groups
        assert isinstance(plan, Par)
        assert len(plan.parts) == 2

    def test_render_readable(self):
        plan = compile_clause(parse_clause("p(X) :- q(X), r(X)."))
        text = plan.render()
        assert "->" in text and "&" in text and "indep" in text


class TestExecution:
    @pytest.fixture
    def program(self):
        return Program.from_source(
            """
            q(1). q(2).
            r(1). r(3).
            s(a). s(b).
            """
        )

    def _body_instance(self, clause_src, call_src, program):
        """Resolve a call against the clause head; return instantiated body."""
        clause = parse_clause(clause_src)
        head, body = _rename_clause(clause)
        (call,) = parse_query(call_src)
        b = Bindings()
        assert unify(call, head, b)
        return tuple(b.resolve(g) for g in body)

    def test_guard_true_runs_parallel(self, program):
        plan = compile_clause(parse_clause("p(X) :- q(X), r(X)."))
        goals = self._body_instance("p(X) :- q(X), r(X).", "p(1)", program)
        run = CgeExecutor(program).run(goals, plan)
        assert run.guards_evaluated == 1
        assert run.guards_true == 1
        assert run.ran_parallel
        assert len(run.answers) == 1  # q(1), r(1) both hold

    def test_guard_false_runs_sequential(self, program):
        plan = compile_clause(parse_clause("p(X) :- q(X), r(X)."))
        goals = self._body_instance("p(X) :- q(X), r(X).", "p(W)", program)
        run = CgeExecutor(program).run(goals, plan)
        assert run.guards_true == 0
        assert not run.ran_parallel
        # sequential answers: q and r intersect at 1
        assert len(run.answers) == 1

    def test_parallel_answers_match_sequential(self, program):
        plan = compile_clause(parse_clause("p :- q(A), s(B)."))
        goals = self._body_instance("p :- q(A), s(B).", "p", program)
        run = CgeExecutor(program).run(goals, plan)
        assert run.ran_parallel
        assert len(run.answers) == 4  # 2 q's x 2 s's
        # against the sequential engine
        seq = Solver(program).solve_all("q(A), s(B)")
        assert len(seq) == 4

    def test_speedup_accounting(self, program):
        plan = compile_clause(parse_clause("p :- q(A), s(B)."))
        goals = self._body_instance("p :- q(A), s(B).", "p", program)
        run = CgeExecutor(program).run(goals, plan)
        assert run.critical_path_inferences <= run.sequential_inferences
        assert run.speedup >= 1.0

    def test_empty_group_product(self, program):
        plan = compile_clause(parse_clause("p :- q(A), missing(B)."))
        goals = self._body_instance("p :- q(A), missing(B).", "p", program)
        run = CgeExecutor(program).run(goals, plan)
        assert run.answers == []


class TestWholeProgramConsistency:
    def test_cge_answers_equal_prolog_on_calls(self):
        program = Program.from_source(
            """
            edge(a, b). edge(b, c). edge(a, d).
            color(red). color(blue).
            pair(X, Y, C1, C2) :- edge(X, Y), color(C1), color(C2).
            """
        )
        clause = parse_clause(
            "pair(X, Y, C1, C2) :- edge(X, Y), color(C1), color(C2)."
        )
        plan = compile_clause(clause)
        # ground head args at call time -> guard passes where emitted
        head, body = _rename_clause(clause)
        (call,) = parse_query("pair(a, b, C1, C2)")
        b = Bindings()
        assert unify(call, head, b)
        goals = tuple(b.resolve(g) for g in body)
        run = CgeExecutor(program).run(goals, plan)
        expected = Solver(program).solve_all("edge(a, b), color(C1), color(C2)")
        assert len(run.answers) == len(expected) == 4
