"""Unit tests for the generic branch-and-bound framework."""

import pytest

from repro.bandb import (
    BnBProblem,
    BoundViolation,
    BranchAndBound,
    OrTreeProblem,
    parallel_best_first,
    speedup_curve,
)
from repro.ortree import OrTree
from repro.workloads import synthetic_tree


class SubsetSum(BnBProblem):
    """Pick items whose weights sum exactly to a target.

    State: (index, remaining).  Arc cost = item weight when taken (so
    the bound is the total taken so far — monotone); a solution is any
    state with remaining == 0.
    """

    def __init__(self, items, target):
        self.items = list(items)
        self.target = target

    def root(self):
        return (0, self.target)

    def branch(self, state):
        ix, remaining = state
        if ix >= len(self.items) or remaining <= 0:
            return
        w = self.items[ix]
        if w <= remaining:
            yield (ix + 1, remaining - w), float(w)  # take
        yield (ix + 1, remaining), 0.0  # skip

    def is_solution(self, state):
        return state[1] == 0


class NegativeCost(BnBProblem):
    def root(self):
        return 0

    def branch(self, state):
        if state < 3:
            yield state + 1, -1.0

    def is_solution(self, state):
        return state == 3


class TestSequential:
    def test_finds_subset(self):
        prob = SubsetSum([5, 3, 2, 7], 10)
        res = BranchAndBound(prob).run(max_solutions=1)
        assert res.best is not None
        assert res.best.bound == 10.0

    def test_no_solution(self):
        prob = SubsetSum([4, 4], 3)
        res = BranchAndBound(prob).run(max_solutions=1)
        assert res.solutions == []

    def test_all_solutions_share_target_bound(self):
        prob = SubsetSum([1, 2, 3, 4], 5)
        res = BranchAndBound(prob).run(max_solutions=None)
        assert len(res.solutions) >= 2  # {1,4}, {2,3}
        assert all(s.bound == 5.0 for s in res.solutions)

    def test_best_first_optimality(self):
        """With a monotone bound, the first solution popped is minimal."""
        prob = SubsetSum([1, 1, 1, 9], 3)
        res = BranchAndBound(prob).run(max_solutions=1)
        assert res.best.bound == 3.0

    def test_pruning_counts(self):
        prob = SubsetSum([0, 5], 0)  # root is already a solution at bound 0
        res = BranchAndBound(prob).run(max_solutions=None, prune=True)
        assert res.incumbent == 0.0

    def test_monotonicity_enforced(self):
        with pytest.raises(BoundViolation):
            BranchAndBound(NegativeCost()).run()

    def test_monotonicity_check_optional(self):
        res = BranchAndBound(NegativeCost(), check_monotone=False).run(
            max_solutions=1, prune=False
        )
        assert len(res.solutions) == 1

    def test_chain_reconstruction(self):
        prob = SubsetSum([2, 3], 5)
        res = BranchAndBound(prob).run(max_solutions=1)
        chain = res.best.chain()
        assert chain[0].depth == 0
        assert chain[-1].state == (2, 0)

    def test_max_expansions_cap(self):
        prob = SubsetSum(list(range(1, 20)), 1000)  # unsatisfiable, big tree
        res = BranchAndBound(prob).run(max_solutions=1, max_expansions=50)
        assert res.expansions <= 50


class TestOrTreeAdapter:
    def test_adapter_finds_solutions(self, figure1):
        tree = OrTree(figure1, "gf(sam, G)")
        prob = OrTreeProblem(tree)
        res = BranchAndBound(prob).run(max_solutions=None, prune=False)
        assert len(res.solutions) == 2

    def test_adapter_bounds_match_tree(self, figure1):
        tree = OrTree(figure1, "gf(sam, G)", weight_fn=lambda k: 1.0)
        prob = OrTreeProblem(tree)
        res = BranchAndBound(prob).run(max_solutions=1)
        node = tree.node(res.best.state)
        assert node.bound == res.best.bound


class TestParallelFormulation:
    def test_single_processor_matches_sequential_work(self, figure1):
        tree = OrTree(figure1, "gf(sam, G)")
        res = parallel_best_first(OrTreeProblem(tree), 1, max_solutions=None)
        assert len(res.solutions) == 2
        assert res.iterations >= res.expansions  # 1 expansion per iteration

    def test_more_processors_fewer_iterations(self):
        wl = synthetic_tree(branching=3, depth=4, seed=1)

        def factory():
            return OrTreeProblem(OrTree(wl.program, wl.query, max_depth=16))

        r1 = parallel_best_first(factory(), 1, max_solutions=None)
        r8 = parallel_best_first(factory(), 8, max_solutions=None)
        assert r8.iterations < r1.iterations
        assert len(r8.solutions) == len(r1.solutions)

    def test_utilization_declines_with_processors(self):
        wl = synthetic_tree(branching=2, depth=4, seed=2)

        def factory():
            return OrTreeProblem(OrTree(wl.program, wl.query, max_depth=16))

        r2 = parallel_best_first(factory(), 2, max_solutions=None)
        r32 = parallel_best_first(factory(), 32, max_solutions=None)
        assert r32.utilization <= r2.utilization

    def test_invalid_processor_count(self, figure1):
        tree = OrTree(figure1, "gf(sam, G)")
        with pytest.raises(ValueError):
            parallel_best_first(OrTreeProblem(tree), 0)

    def test_speedup_curve_shape(self):
        wl = synthetic_tree(branching=3, depth=4, seed=3)
        rows = speedup_curve(
            lambda: OrTreeProblem(OrTree(wl.program, wl.query, max_depth=16)),
            [1, 2, 4, 8],
            max_solutions=None,
        )
        speedups = [r["speedup"] for r in rows]
        assert speedups[0] == 1.0
        assert all(b >= a * 0.99 for a, b in zip(speedups, speedups[1:]))
        assert speedups[-1] > 1.5

    def test_solutions_found_in_same_iteration_all_recorded(self):
        wl = synthetic_tree(branching=4, depth=2, seed=4)
        res = parallel_best_first(
            OrTreeProblem(OrTree(wl.program, wl.query, max_depth=8)),
            16,
            max_solutions=None,
        )
        assert len(res.solutions) == wl.n_solutions
