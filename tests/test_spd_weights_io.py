"""Tests for the session-end SPD weight write-back."""

import pytest

from repro.core import BLogConfig, BLogEngine
from repro.linkdb import LinkedDatabase
from repro.ortree import ArcKey
from repro.spd import SemanticPagingDisk
from repro.spd.weights_io import write_back_weights
from repro.weights import WeightStore
from repro.workloads import family_program


@pytest.fixture
def setup():
    program = family_program()
    store = WeightStore(n=8, a=16)
    db = LinkedDatabase(program, store)
    spd = SemanticPagingDisk(db, n_sps=2, track_words=128)
    return program, store, db, spd


class TestWriteBack:
    def test_clean_store_writes_nothing(self, setup):
        _, store, _, spd = setup
        report = write_back_weights(spd, store)
        assert report.dirty_pointers == 0
        assert report.blocks_touched == 0
        assert report.words_written == 0

    def test_dirty_pointer_lands_on_disk(self, setup):
        program, store, db, spd = setup
        # rule 0 (gf via f-f), literal 0, some f fact target
        target = db.block(0).pointers[0].target
        key = ArcKey("pointer", (0, 0, target))
        store.set_known(key, 2.5)
        report = write_back_weights(spd, store)
        assert report.dirty_pointers == 1
        assert report.blocks_touched == 1
        assert report.words_written == 1
        # the record on disk now carries the weight
        addr = spd.addresses[0]
        track = spd.sps[addr.sp].tracks[addr.cylinder]
        rec = track.records[addr.index]
        assert any(w == 2.5 for _name, _target, w in rec.pointers)

    def test_db_view_refreshed(self, setup):
        program, store, db, spd = setup
        p0 = db.block(0).pointers[0]
        key = p0.arc_key(0)
        store.set_known(key, 3.25)
        write_back_weights(spd, store)
        assert db.block(0).pointers[0].weight == 3.25

    def test_query_pseudo_block_skipped(self, setup):
        _, store, _, spd = setup
        store.set_known(ArcKey("pointer", (-1, 0, 0)), 1.0)
        report = write_back_weights(spd, store)
        assert report.dirty_pointers == 0

    def test_idempotent_second_writeback_cheap(self, setup):
        program, store, db, spd = setup
        key = db.block(0).pointers[0].arc_key(0)
        store.set_known(key, 2.0)
        first = write_back_weights(spd, store)
        second = write_back_weights(spd, store)
        # same track already cached; no changed words
        assert second.track_loads == 0
        assert second.words_written == 0
        assert second.cycles < first.cycles or first.track_loads == 0

    def test_batched_loads(self, setup):
        """Many dirty pointers in one block cost one track visit."""
        program, store, db, spd = setup
        block = db.block(0)
        for p in block.pointers:
            store.set_known(p.arc_key(0), 1.0)
        report = write_back_weights(spd, store)
        assert report.dirty_pointers == len(block.pointers)
        assert report.blocks_touched == 1
        assert report.track_loads <= 1


class TestEndToEnd:
    def test_session_learn_then_persist(self):
        program = family_program()
        store = WeightStore(n=8, a=16)
        db = LinkedDatabase(program, store)
        spd = SemanticPagingDisk(db, n_sps=2, track_words=128)
        eng = BLogEngine(program, BLogConfig(n=8, a=16), global_store=store)
        eng.begin_session()
        eng.query("gf(sam, G)")
        eng.end_session()
        report = write_back_weights(spd, store)
        assert report.dirty_pointers > 0
        assert report.cycles > 0
        # every learned pointer weight is now visible in the database view
        for block in db:
            for p in block.pointers:
                assert p.weight == store.weight(p.arc_key(block.block_id))
