"""Unit tests for the §5 success/failure update rules."""

import pytest

from repro.ortree import ArcKey, OrArc
from repro.weights import WeightStore, apply_outcome, on_failure, on_success


def arcs(*ids, kind="pointer"):
    """A chain of arcs root->leaf with the given key ids."""
    return [
        OrArc(parent=i, child=i + 1, key=ArcKey(kind, (0, 0, k)), weight=0.0)
        for i, k in enumerate(ids)
    ]


def key(i):
    return ArcKey("pointer", (0, 0, i))


class TestFailureRule:
    def test_blames_unknown_nearest_leaf(self):
        store = WeightStore(n=8, a=4)
        chain = arcs(1, 2, 3)
        log = on_failure(store, chain)
        assert log.kind == "failure"
        assert log.set_infinite == [key(3)]
        assert store.is_infinite(key(3))
        assert store.is_unknown(key(1))

    def test_skips_known_arcs(self):
        store = WeightStore(n=8, a=4)
        store.set_known(key(3), 2.0)  # leafmost is known
        log = on_failure(store, arcs(1, 2, 3))
        assert log.set_infinite == [key(2)]

    def test_noop_when_chain_already_infinite(self):
        store = WeightStore(n=8, a=4)
        store.set_infinite(key(2))
        log = on_failure(store, arcs(1, 2, 3))
        assert log.kind == "noop"
        assert store.is_unknown(key(3))

    def test_all_known_failed_chain_is_anomaly(self):
        store = WeightStore(n=8, a=4)
        for i in (1, 2):
            store.set_known(key(i), 1.0)
        log = on_failure(store, arcs(1, 2))
        assert log.kind == "noop"
        assert log.anomaly

    def test_builtin_arcs_transparent(self):
        store = WeightStore(n=8, a=4)
        chain = arcs(1) + arcs(9, kind="builtin") + arcs(2)
        log = on_failure(store, chain)
        assert log.set_infinite == [key(2)]

    def test_duplicate_arc_counted_once(self):
        store = WeightStore(n=8, a=4)
        chain = arcs(1, 2, 1)  # key 1 appears twice
        log = on_failure(store, chain)
        # nearest the leaf among distinct keys in chain order: key 2
        assert log.set_infinite == [key(2)]


class TestSuccessRule:
    def test_distributes_n_over_unknowns(self):
        store = WeightStore(n=12, a=4)
        log = on_success(store, arcs(1, 2, 3))
        assert log.kind == "success"
        for i in (1, 2, 3):
            assert store.weight(key(i)) == 4.0
        assert sum(w for _, w in log.set_known) == 12.0

    def test_accounts_for_existing_known(self):
        store = WeightStore(n=12, a=4)
        store.set_known(key(1), 6.0)
        on_success(store, arcs(1, 2, 3))
        assert store.weight(key(2)) == 3.0
        assert store.weight(key(3)) == 3.0
        # the whole chain now sums to N
        assert sum(store.weight(key(i)) for i in (1, 2, 3)) == 12.0

    def test_resets_infinite_arcs(self):
        store = WeightStore(n=12, a=4)
        store.set_infinite(key(2))
        on_success(store, arcs(1, 2))
        assert store.is_known(key(2))
        assert store.weight(key(2)) == 6.0

    def test_overshoot_clamps_to_zero_with_anomaly(self):
        store = WeightStore(n=10, a=4)
        store.set_known(key(1), 7.0)
        store.set_known(key(2), 7.0)  # M=14 > N=10
        log = on_success(store, arcs(1, 2, 3))
        assert log.anomaly
        assert store.weight(key(3)) == 0.0

    def test_all_known_chain_is_noop(self):
        store = WeightStore(n=10, a=4)
        store.set_known(key(1), 5.0)
        store.set_known(key(2), 5.0)
        log = on_success(store, arcs(1, 2))
        assert log.kind == "noop"
        assert log.set_known == []

    def test_solution_chain_sums_to_n(self):
        """Invariant: after a success update (no anomaly), the chain's
        total weight equals N."""
        store = WeightStore(n=16, a=8)
        chain = arcs(1, 2, 3, 4)
        store.set_known(key(2), 4.0)
        log = on_success(store, chain)
        assert not log.anomaly
        total = sum(store.weight(key(i)) for i in (1, 2, 3, 4))
        assert total == pytest.approx(16.0)

    def test_duplicate_arc_single_update(self):
        store = WeightStore(n=12, a=4)
        chain = arcs(1, 2, 1)
        on_success(store, chain)
        # two distinct keys share N equally
        assert store.weight(key(1)) == 6.0
        assert store.weight(key(2)) == 6.0


class TestDispatch:
    def test_apply_outcome_success(self):
        store = WeightStore(n=8, a=4)
        log = apply_outcome(store, arcs(1), solved=True)
        assert log.kind == "success"

    def test_apply_outcome_failure(self):
        store = WeightStore(n=8, a=4)
        log = apply_outcome(store, arcs(1), solved=False)
        assert log.kind == "failure"


class TestAdaptiveBehaviour:
    def test_failure_then_success_retracts_infinity(self):
        """§5: 'If a successful query is found, the next search will try
        this path early' — a success on a previously failed pointer
        retracts the infinity."""
        store = WeightStore(n=8, a=4)
        on_failure(store, arcs(1, 2))
        assert store.is_infinite(key(2))
        on_success(store, arcs(1, 2))
        assert store.is_known(key(2))
        assert store.weight(key(2)) < store.unknown_value

    def test_learned_ordering(self):
        """Failed pointers end up heavier than successful ones."""
        store = WeightStore(n=8, a=4)
        on_success(store, arcs(1, 2))
        on_failure(store, arcs(3, 4))
        good = max(store.weight(key(1)), store.weight(key(2)))
        bad = store.weight(key(4))
        assert bad > good
