"""Seeded property tests for span-tree invariants under random workloads.

Every finished request — on both lane backends — must satisfy:

* exactly one root span per request, named ``request``;
* every child span's interval nests inside its parent's interval;
* the sum of the root's direct-children durations is at most the root's
  wall duration (children are sequential phases of one request);
* cache-hit responses never contain an ``engine`` span, served
  responses always do;
* registry counters agree with the span trees they summarise.
"""

import asyncio
import os
import random

import pytest

from repro.service import BLogService, QueryRequest
from repro.workloads import family_program, nrev_program

SEED = int(os.environ.get("BLOG_TELEMETRY_SEED", "20260806"))
N_REQUESTS = 48

QUERIES = [
    ("family", "gf(sam, G)"),
    ("family", "anc(sam, D)"),
    ("family", "sib(ann, S)"),
    ("nrev", "nrev([a, b, c, d], R)"),
    ("nrev", "nrev([a, b, c], R)"),
]


def _children_of(spans, span_id):
    return [s for s in spans if s.parent_id == span_id]


async def _run_workload(backend, rng):
    svc = BLogService(
        {"family": family_program(), "nrev": nrev_program()},
        n_workers=3,
        backend=backend,
        default_timeout=30.0,
    )
    await svc.start()
    responses = {}
    try:
        for i in range(N_REQUESTS):
            program, goals = rng.choice(QUERIES)
            request = QueryRequest(
                program,
                goals,
                session=f"s{rng.randrange(6)}",
                request_id=f"p{i}",
                cache=rng.random() < 0.8,
            )
            responses[request.request_id] = await svc.submit(request)
    finally:
        await svc.stop()
    return svc, responses


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_span_tree_invariants_random_workload(backend):
    rng = random.Random(SEED)
    svc, responses = asyncio.run(_run_workload(backend, rng))

    traces = {
        t.trace_id: t
        for t in svc.telemetry.tracer.finished
        if t.root.name == "request"
    }
    assert set(traces) == set(responses), "one finished trace per request id"

    for rid, trace in traces.items():
        resp = responses[rid]
        roots = [s for s in trace.spans if s.parent_id is None]
        assert len(roots) == 1, f"{rid}: exactly one root span"
        root = roots[0]
        assert root.name == "request"
        assert root.end_s is not None

        by_id = {s.span_id: s for s in trace.spans}
        for span in trace.spans:
            assert span.end_s is not None, f"{rid}: span {span.name} left open"
            assert span.end_s >= span.start_s
            if span.parent_id is not None:
                parent = by_id[span.parent_id]
                assert span.start_s >= parent.start_s, (
                    f"{rid}: {span.name} starts before parent {parent.name}"
                )
                assert span.end_s <= parent.end_s, (
                    f"{rid}: {span.name} ends after parent {parent.name}"
                )

        phases = _children_of(trace.spans, root.span_id)
        assert sum(s.duration_s for s in phases) <= root.duration_s + 1e-6, (
            f"{rid}: sequential phase durations exceed wall duration"
        )

        engine_spans = trace.find("engine")
        if resp.cached:
            assert not engine_spans, f"{rid}: cache hit must not run the engine"
        elif resp.ok:
            assert engine_spans, f"{rid}: served response missing engine span"
            assert root.attributes.get("cache_hit") is False
        if resp.ok and not resp.cached:
            dispatch = trace.find("lane-dispatch")
            assert dispatch and dispatch[0].attributes["backend"] == backend

    reg = svc.telemetry.registry
    assert reg.counter("blog_requests_total").value == len(traces) == N_REQUESTS
    cached = sum(1 for r in responses.values() if r.cached)
    assert reg.counter("blog_request_cache_hits_total").value == cached
    engine_traced = sum(1 for t in traces.values() if t.find("engine"))
    assert engine_traced == N_REQUESTS - cached
    assert svc.telemetry.tracer.started >= svc.telemetry.tracer.completed


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_repeat_run_same_seed_same_shape(backend):
    """The workload is deterministic given the seed: same cache-hit
    pattern, same per-request span names (timings aside)."""
    svc_a, resp_a = asyncio.run(_run_workload(backend, random.Random(SEED)))
    svc_b, resp_b = asyncio.run(_run_workload(backend, random.Random(SEED)))
    assert {r: v.cached for r, v in resp_a.items()} == {
        r: v.cached for r, v in resp_b.items()
    }

    def shape(svc):
        return {
            t.trace_id: sorted({s.name for s in t.spans})
            for t in svc.telemetry.tracer.finished
            if t.root.name == "request"
        }

    assert shape(svc_a) == shape(svc_b)
