"""Tests for the deriv workload, chain explanations, and CSV export."""

import pytest

from repro.ortree import OrTree, best_first
from repro.reporting import to_csv
from repro.workloads import family_program
from repro.workloads.deriv import deriv_program, differentiate, nested_expr


class TestDeriv:
    def test_dx_dx(self):
        assert str(differentiate("x")) == "1"

    def test_constant(self):
        assert str(differentiate("num(5)")) == "num(0)"

    def test_sum_rule(self):
        assert str(differentiate("plus(x, num(3))")) == "plus(1, num(0))"

    def test_product_rule(self):
        got = str(differentiate("times(x, x)"))
        assert got == "plus(times(x, 1), times(1, x))"

    def test_power_rule(self):
        assert str(differentiate("power(x, 5)")) == "times(num(5), power(x, 4))"

    def test_nested_expression_grows(self):
        from repro.logic import term_size

        shallow = differentiate(nested_expr(2))
        deep = differentiate(nested_expr(5))
        assert term_size(deep) > term_size(shallow)

    def test_unknown_form_fails(self):
        with pytest.raises(ValueError):
            differentiate("mystery(x)")

    def test_single_solution(self):
        from repro.logic import Solver

        solver = Solver(deriv_program(), max_depth=128)
        sols = solver.solve_all(f"d({nested_expr(3)}, D)")
        assert len(sols) == 1


class TestExplainChain:
    def test_solution_explanation(self, figure1):
        tree = OrTree(figure1, "gf(sam, G)")
        res = best_first(tree)
        sol = res.solutions[0]
        lines = tree.explain_chain(sol.nid)
        assert lines[-1] == "=> solution"
        assert any("gf(sam, G)" in l for l in lines)
        assert any("f(sam, Y)" in l for l in lines)
        assert all("weight" in l for l in lines[:-1])

    def test_failure_explanation(self, figure1):
        tree = OrTree(figure1, "gf(sam, G)")
        tree.expand_all()
        (fail,) = tree.failures()
        lines = tree.explain_chain(fail.nid)
        assert lines[-1].startswith("=> failure at m(larry")

    def test_builtin_steps_labeled(self):
        from repro.logic import Program

        p = Program.from_source("double(X, Y) :- Y is X * 2.")
        tree = OrTree(p, "double(3, R)")
        tree.expand_all()
        sol = tree.solutions()[0]
        lines = tree.explain_chain(sol.nid)
        assert any("builtin is/2" in l for l in lines)


class TestCsv:
    def test_roundtrip(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        text = to_csv(rows)
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,x"

    def test_empty(self):
        assert to_csv([]) == ""

    def test_column_subset_and_missing(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        text = to_csv(rows, columns=["b"])
        lines = [l.strip() for l in text.strip().splitlines()]
        assert lines[0] == "b"
        assert lines[1] == "2"
        assert lines[2] in ("", '""')  # missing cell renders empty
