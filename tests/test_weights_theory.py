"""Unit tests for the §4 theoretical weight model."""

import math

import pytest

from repro.logic import Program
from repro.ortree import OrTree
from repro.weights import (
    WeightStore,
    solve_weights,
    store_from_theory,
    verify_assignment,
)


def full_tree(program, query, policy="goal", max_depth=32):
    t = OrTree(program, query, arc_key_policy=policy, max_depth=max_depth)
    t.expand_all()
    return t


class TestFigure3Weights:
    """§4's worked example on the figure-3 tree."""

    def test_target_is_log2_solutions(self, figure1):
        tree = full_tree(figure1, "gf(sam, G)")
        res = solve_weights(tree)
        assert res.n_solutions == 2
        assert res.target == pytest.approx(1.0)  # log2(2)

    def test_feasible_and_verified(self, figure1):
        tree = full_tree(figure1, "gf(sam, G)")
        res = solve_weights(tree)
        assert res.feasible
        assert verify_assignment(tree, res)

    def test_solution_chains_sum_to_target(self, figure1):
        tree = full_tree(figure1, "gf(sam, G)")
        res = solve_weights(tree)
        for sol in tree.solutions():
            keys = {
                a.key for a in tree.chain_arcs(sol.nid) if a.key.kind != "builtin"
            }
            total = sum(res.weight(k) for k in keys)
            assert total == pytest.approx(res.target, abs=1e-6)

    def test_failure_chain_killed(self, figure1):
        """The m-rule arc (probability 0 in the paper) goes to infinity."""
        tree = full_tree(figure1, "gf(sam, G)")
        res = solve_weights(tree)
        (fail,) = tree.failures()
        keys = [a.key for a in tree.chain_arcs(fail.nid)]
        assert any(res.weight(k) == float("inf") for k in keys)

    def test_probabilities_multiply_to_half(self, figure1):
        """Each solution chain's probability product is 1/S = 1/2."""
        tree = full_tree(figure1, "gf(sam, G)")
        res = solve_weights(tree)
        for sol in tree.solutions():
            keys = {
                a.key for a in tree.chain_arcs(sol.nid) if a.key.kind != "builtin"
            }
            prod = math.prod(res.probability(k) for k in keys)
            assert prod == pytest.approx(0.5, abs=1e-6)

    def test_custom_target(self, figure1):
        tree = full_tree(figure1, "gf(sam, G)")
        res = solve_weights(tree, target=16.0)
        assert res.feasible
        assert verify_assignment(tree, res)


class TestPathologicalCases:
    def test_shared_arc_failure_is_pathological(self):
        """A failure chain all of whose arcs serve solutions cannot be
        priced (the §4 pathology).  Construction: p(X) :- q(X) with one
        q fact and a second *rule* q(X) :- r(X) where r is empty — the
        failing chain's only non-shared arc is... actually the q->r arc
        is killable, so we need the failure to reuse exactly the
        solution's arcs."""
        # p :- q.  q. (fact)  => query "p, q" both succeed; no failures.
        # Pathological: query p where p :- q, r and p :- q; q holds, r empty.
        # Failure chain arcs: [p1-rule, q-fact, ...r has no arc since r
        # never resolves] — the r goal fails *at* the node, so the chain
        # is (p1). If p1's arc is unique to the failure, it's killable.
        p = Program.from_source(
            """
            p :- q, r.
            p :- q.
            q.
            """
        )
        tree = full_tree(p, "p")
        res = solve_weights(tree)
        # the p:-q,r arc appears in no solution => killable, feasible
        assert res.feasible

    def test_true_pathology_detected(self):
        """?- q, r with q succeeding and r failing: the failure chain
        ends under the q-fact arc which is also the prefix of nothing
        else — but with 0 solutions every chain fails and arcs shared
        with no solution are killable; pathology needs an arc set fully
        inside solution arcs.  Construct it with the same fact used by
        a succeeding and a failing *continuation*."""
        p = Program.from_source(
            """
            top :- a, good.
            top :- a, bad.
            a.
            good.
            """
        )
        tree = full_tree(p, "top", policy="goal")
        res = solve_weights(tree)
        # failure chain: top-rule2 -> a -> bad(fails). The rule2 arc is
        # not in any solution => killable. Still feasible.
        assert res.feasible
        # now make the failing chain share ALL its arcs with a solution:
        # same rule, same facts, failure only at the very end via 'b'
        p2 = Program.from_source(
            """
            top2(X) :- a2, pick(X).
            a2.
            pick(one).
            pick(X) :- nothing(X).
            """
        )
        tree2 = full_tree(p2, "top2(W)", policy="goal")
        res2 = solve_weights(tree2)
        # the pick:-nothing arc is unique to the failure => killable
        assert res2.feasible

    def test_unkillable_failure_marked_pathological(self):
        """Force sharing: the failing chain is a strict prefix extension
        of the solution chain with no private arc (via 'goal' policy
        merging the repeated fact arc)."""
        # query: ?- a3, a3, miss.  Chain arcs: a3-fact (merged by goal
        # policy across both calls) then 'miss' never resolves -> the
        # failure leaf's chain only contains the a3 arc, which IS in a
        # solution of query ?- a3... but solutions/failures come from
        # the same tree, so craft: top3 :- a3. top3 :- a3, miss.
        # Under the *goal* policy both a3 arcs merge; rule arcs differ.
        # Rule2 arc is private => killable. To be truly pathological the
        # failing chain must have no private arc at all: query the fact
        # conjunction directly.
        p = Program.from_source("a3.")
        tree = full_tree(p, "a3, a3, miss", policy="goal")
        res = solve_weights(tree)
        # 0 solutions: the failure chain has only the a3 arc... which
        # appears in no successful chain (there are none), so killable.
        assert res.n_solutions == 0
        assert not res.pathological_chains
        # the genuinely pathological shape: one fact arc shared by a
        # solution (?- a4) and the failure continuation (?- a4, miss)
        p2 = Program.from_source("a4.\nboth(X) :- w(X).\nw(yes).")
        tree2 = full_tree(p2, "a4, opt", policy="goal")
        res2 = solve_weights(tree2)
        assert res2.n_solutions == 0  # 'opt' undefined

    def test_explicit_pathology(self):
        """?- f(X), g(X) where f has two facts, g holds for only one:
        under the goal policy the failing chain f(b)->g(b) has the g
        *goal* arc... the f(X)->f(b) arc is private to the failure, so
        killable.  The irreducible pathology — failure chain strictly
        inside solution arcs — requires the same arc sequence to both
        succeed and fail, impossible in a deterministic tree; assert
        solve_weights handles the near-miss without false positives."""
        p = Program.from_source("f(a). f(b). g(a).")
        tree = full_tree(p, "f(X), g(X)", policy="goal")
        res = solve_weights(tree)
        assert res.feasible
        assert verify_assignment(tree, res)


class TestStoreFromTheory:
    def test_finite_weights_materialized(self, figure1):
        tree = full_tree(figure1, "gf(sam, G)")
        res = solve_weights(tree, target=8.0)
        store = store_from_theory(res, n=8.0, a=16)
        for k, w in res.finite_weights.items():
            assert store.weight(k) == pytest.approx(w)
        for k in res.infinite_arcs:
            assert store.is_infinite(k)

    def test_default_n_at_least_one(self, figure1):
        tree = full_tree(figure1, "gf(sam, den)")
        res = solve_weights(tree)
        store = store_from_theory(res)
        assert store.n >= 1.0

    def test_requires_fully_expanded_tree(self, figure1):
        tree = OrTree(figure1, "gf(sam, G)")
        tree.expand(0)  # partial
        with pytest.raises(ValueError):
            solve_weights(tree)


class TestBiggerPrograms:
    def test_append_splits(self, append_program):
        tree = full_tree(append_program, "app(A, B, [1,2,3])")
        res = solve_weights(tree)
        assert res.n_solutions == 4
        assert res.feasible
        assert verify_assignment(tree, res)

    def test_single_solution_tree(self, figure1):
        tree = full_tree(figure1, "gf(curt, G)")
        res = solve_weights(tree)
        assert res.n_solutions == 1
        assert verify_assignment(tree, res)
