"""Tests for the pure-Prolog standard library."""

import pytest

from repro.logic import Program, Solver
from repro.logic.library import with_library


@pytest.fixture
def solver():
    return Solver(with_library(Program()), max_depth=128)


def one(solver, query, var):
    sols = solver.solve_all(query, max_solutions=1)
    assert sols, f"no solution for {query}"
    return str(sols[0][var])


def all_values(solver, query, var):
    return [str(s[var]) for s in solver.solve_all(query)]


class TestAppendMember:
    def test_append(self, solver):
        assert one(solver, "append([1,2], [3,4], R)", "R") == "[1, 2, 3, 4]"

    def test_append_splits(self, solver):
        sols = solver.solve_all("append(A, B, [1,2])")
        assert len(sols) == 3

    def test_member_enumerates(self, solver):
        assert all_values(solver, "member(X, [a,b,c])", "X") == ["a", "b", "c"]

    def test_member_checks(self, solver):
        assert solver.succeeds("member(b, [a,b,c])")
        assert not solver.succeeds("member(z, [a,b,c])")


class TestLengthReverse:
    def test_length(self, solver):
        assert one(solver, "length([a,b,c,d], N)", "N") == "4"

    def test_length_empty(self, solver):
        assert one(solver, "length([], N)", "N") == "0"

    def test_reverse(self, solver):
        assert one(solver, "reverse([1,2,3], R)", "R") == "[3, 2, 1]"

    def test_reverse_empty(self, solver):
        assert one(solver, "reverse([], R)", "R") == "[]"


class TestIndexing:
    def test_nth0(self, solver):
        assert one(solver, "nth0(2, [a,b,c,d], X)", "X") == "c"

    def test_nth1(self, solver):
        assert one(solver, "nth1(1, [a,b,c], X)", "X") == "a"

    def test_nth0_out_of_range(self, solver):
        assert not solver.succeeds("nth0(9, [a,b], X)")

    def test_last(self, solver):
        assert one(solver, "last([a,b,c], X)", "X") == "c"


class TestSelectPermutation:
    def test_select_removes(self, solver):
        assert all_values(solver, "select(b, [a,b,c], R)", "R") == ["[a, c]"]

    def test_select_enumerates(self, solver):
        sols = solver.solve_all("select(X, [a,b], R)")
        assert len(sols) == 2

    def test_permutation_count(self, solver):
        assert len(solver.solve_all("permutation([1,2,3], P)")) == 6

    def test_permutation_check(self, solver):
        assert solver.succeeds("permutation([1,2,3], [3,1,2])")
        assert not solver.succeeds("permutation([1,2,3], [1,2])")

    def test_delete_all(self, solver):
        assert one(solver, "delete_all([a,b,a,c,a], a, R)", "R") == "[b, c]"


class TestArithmeticLists:
    def test_sum_list(self, solver):
        assert one(solver, "sum_list([1,2,3,4], S)", "S") == "10"

    def test_max_min(self, solver):
        assert one(solver, "max_list([3,9,2], M)", "M") == "9"
        assert one(solver, "min_list([3,9,2], M)", "M") == "2"

    def test_numlist(self, solver):
        assert one(solver, "numlist(1, 5, L)", "L") == "[1, 2, 3, 4, 5]"

    def test_numlist_empty(self, solver):
        assert one(solver, "numlist(3, 2, L)", "L") == "[]"


class TestComposition:
    def test_user_program_plus_library(self):
        p = Program.from_source("scores(alice, [3, 9, 5]).\nscores(bob, [7, 2]).")
        with_library(p)
        solver = Solver(p, max_depth=128)
        sols = solver.solve_all("scores(Who, L), max_list(L, Best)")
        got = {(str(s["Who"]), str(s["Best"])) for s in sols}
        assert got == {("alice", "9"), ("bob", "7")}

    def test_library_on_blog_engine(self):
        from repro.core import BLogConfig, BLogEngine

        p = with_library(Program())
        eng = BLogEngine(p, BLogConfig(max_depth=128))
        res = eng.query("permutation([1,2], P)")
        assert sorted(str(a["P"]) for a in res.answers) == ["[1, 2]", "[2, 1]"]
