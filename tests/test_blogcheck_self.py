"""The self-check: the repo must lint clean under its own linter.

This is the regression gate ISSUE 4 asks for — once the tree is clean,
it can never silently regress: a new store-mutation site, blocking call
in a coroutine, unpicklable lane payload, leaked span, swallowed
exception, or uncataloged metric fails this test (and the CI `lint`
job) immediately.
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.analysis import analyze_paths
from repro.cli import main

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
TESTS = REPO / "tests"


def test_repo_lints_clean():
    result = analyze_paths([SRC, TESTS])
    assert result.files > 100  # sanity: the walk actually saw the tree
    details = "\n".join(
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in result.findings
    )
    assert result.ok, f"blogcheck found regressions:\n{details}"


def test_suppressions_are_counted_not_lost():
    # the tree carries a handful of justified suppressions (shutdown-path
    # pipe errors etc.); the runner must surface them, not drop them
    result = analyze_paths([SRC])
    assert len(result.suppressed) >= 1
    assert all(f.rule == "BLG005" for f in result.suppressed)


def test_cli_gate_passes_on_the_repo():
    out = io.StringIO()
    assert main(["lint", str(SRC), str(TESTS)], out=out) == 0
    assert "clean" in out.getvalue()


def test_default_path_is_the_package():
    # `python -m repro.cli lint` with no paths lints the installed package
    out = io.StringIO()
    assert main(["lint"], out=out) == 0
