"""Tests for alternative update policies and the conditional bound."""

import pytest

from repro.core import BLogConfig, BLogEngine
from repro.logic import Program
from repro.ortree import ArcKey, OrArc, OrTree, best_first
from repro.weights import (
    ConditionalWeightStore,
    WeightStore,
    conditional_on_failure,
    conditional_on_success,
    on_failure_policy,
    on_success_policy,
)


def arcs(*ids):
    return [
        OrArc(parent=i, child=i + 1, key=ArcKey("pointer", (0, 0, k)), weight=0.0)
        for i, k in enumerate(ids)
    ]


def key(i):
    return ArcKey("pointer", (0, 0, i))


class TestBlamePolicies:
    def test_leafmost_matches_default(self):
        a, b = WeightStore(n=8, a=4), WeightStore(n=8, a=4)
        from repro.weights import on_failure

        on_failure(a, arcs(1, 2, 3))
        on_failure_policy(b, arcs(1, 2, 3), "leafmost")
        assert a.snapshot() == b.snapshot()

    def test_rootmost(self):
        store = WeightStore(n=8, a=4)
        log = on_failure_policy(store, arcs(1, 2, 3), "rootmost")
        assert log.set_infinite == [key(1)]

    def test_all(self):
        store = WeightStore(n=8, a=4)
        log = on_failure_policy(store, arcs(1, 2, 3), "all")
        assert set(log.set_infinite) == {key(1), key(2), key(3)}

    def test_known_arcs_never_blamed(self):
        store = WeightStore(n=8, a=4)
        store.set_known(key(1), 1.0)
        log = on_failure_policy(store, arcs(1, 2), "rootmost")
        assert log.set_infinite == [key(2)]

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            on_failure_policy(WeightStore(), arcs(1), "sideways")


class TestDistributePolicies:
    def test_equal_matches_default(self):
        a, b = WeightStore(n=12, a=4), WeightStore(n=12, a=4)
        from repro.weights import on_success

        on_success(a, arcs(1, 2, 3))
        on_success_policy(b, arcs(1, 2, 3), "equal")
        assert a.snapshot() == b.snapshot()

    def test_leaf_weighted_sums_to_n(self):
        store = WeightStore(n=12, a=4)
        on_success_policy(store, arcs(1, 2, 3), "leaf-weighted")
        weights = [store.weight(key(i)) for i in (1, 2, 3)]
        assert sum(weights) == pytest.approx(12.0)
        assert weights == sorted(weights)  # deeper gets more
        assert weights[2] == pytest.approx(6.0)  # 12 * 3/6

    def test_root_weighted_mirror(self):
        store = WeightStore(n=12, a=4)
        on_success_policy(store, arcs(1, 2, 3), "root-weighted")
        weights = [store.weight(key(i)) for i in (1, 2, 3)]
        assert weights == sorted(weights, reverse=True)
        assert sum(weights) == pytest.approx(12.0)

    def test_overshoot_anomaly(self):
        store = WeightStore(n=8, a=4)
        store.set_known(key(1), 10.0)
        log = on_success_policy(store, arcs(1, 2), "leaf-weighted")
        assert log.anomaly
        assert store.weight(key(2)) == 0.0

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            on_success_policy(WeightStore(), arcs(1), "chaotic")


class TestEnginePolicyKnobs:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            BLogConfig(failure_blame="bogus")
        with pytest.raises(ValueError):
            BLogConfig(success_distribute="bogus")

    @pytest.mark.parametrize("blame", ["leafmost", "rootmost", "all"])
    @pytest.mark.parametrize("dist", ["equal", "leaf-weighted", "root-weighted"])
    def test_all_combinations_preserve_answers(self, figure1, blame, dist):
        cfg = BLogConfig(failure_blame=blame, success_distribute=dist)
        eng = BLogEngine(figure1, cfg)
        eng.begin_session()
        for _ in range(2):
            res = eng.query("gf(sam, G)")
            assert sorted(str(a["G"]) for a in res.answers) == ["den", "doug"]


CONTEXT_PROGRAM = """
go(X) :- via_a(X).
go(X) :- via_b(X).
via_a(X) :- pick(X), fin_a(X).
via_b(X) :- pick(X), fin_b(X).
pick(m1). pick(m2).
fin_a(m1).
fin_b(m2).
"""


class TestConditionalStore:
    def test_backoff_to_marginal(self):
        store = ConditionalWeightStore(n=8, a=4)
        store.marginal.set_known(key(1), 3.0)
        assert store.weight(None, key(1)) == 3.0
        assert store.weight(key(9), key(1)) == 3.0

    def test_pair_overrides_marginal(self):
        store = ConditionalWeightStore(n=8, a=4)
        store.marginal.set_known(key(1), 3.0)
        store.set_infinite(key(2), key(1))
        assert store.is_infinite(key(2), key(1))
        assert store.weight(None, key(1)) == 3.0  # other contexts intact

    def test_success_chain_sums_to_n(self):
        store = ConditionalWeightStore(n=12, a=4)
        conditional_on_success(store, arcs(1, 2, 3))
        total = (
            store.weight(None, key(1))
            + store.weight(key(1), key(2))
            + store.weight(key(2), key(3))
        )
        assert total == pytest.approx(12.0)

    def test_failure_blames_leafmost_pair(self):
        store = ConditionalWeightStore(n=8, a=4)
        log = conditional_on_failure(store, arcs(1, 2))
        assert store.is_infinite(key(1), key(2))
        assert store.is_unknown(None, key(1))

    def test_table_entries_counted(self):
        store = ConditionalWeightStore(n=8, a=4)
        conditional_on_success(store, arcs(1, 2, 3))
        assert store.table_entries == 3

    def test_copy_independent(self):
        store = ConditionalWeightStore(n=8, a=4)
        store.set_known(None, key(1), 2.0)
        c = store.copy()
        c.set_infinite(None, key(1))
        assert store.is_known(None, key(1))


class TestConditionalResolvesContextConflation:
    """The same pick(m1) pointer succeeds in context via_a and fails in
    context via_b — the marginal store conflates; the conditional store
    separates (the §5 'decision should depend on what has been
    previously decided')."""

    def _learn(self, conditional: bool):
        program = Program.from_source(CONTEXT_PROGRAM)
        if conditional:
            store = ConditionalWeightStore(n=8, a=16)
            tree_kwargs = {"pair_weight_fn": store.pair_weight_fn()}
        else:
            store = WeightStore(n=8, a=16)
            tree_kwargs = {"weight_fn": store.weight_fn()}

        # learn from a full enumeration
        tree = OrTree(program, "go(X)", max_depth=16, **tree_kwargs)
        res = best_first(tree)
        from repro.weights import on_failure, on_success

        for node in tree.solutions():
            if conditional:
                conditional_on_success(store, tree.chain_arcs(node.nid))
            else:
                on_success(store, tree.chain_arcs(node.nid))
        for node in tree.failures():
            if conditional:
                conditional_on_failure(store, tree.chain_arcs(node.nid))
            else:
                on_failure(store, tree.chain_arcs(node.nid))
        return program, store, tree_kwargs

    def _warm_failures(self, program, tree_kwargs) -> int:
        tree = OrTree(program, "go(X)", max_depth=16, **tree_kwargs)
        res = best_first(tree, max_solutions=2)
        return sum(1 for n in tree.nodes if n.is_failure)

    def test_conditional_avoids_cross_context_failures(self):
        program, store, kwargs = self._learn(conditional=True)
        # warm run: both context-specific dead picks are priced, so the
        # two solutions are reachable with at most the discovery of
        # already-priced failures
        program2 = Program.from_source(CONTEXT_PROGRAM)
        tree = OrTree(
            program2, "go(X)", max_depth=16, pair_weight_fn=store.pair_weight_fn()
        )
        res = best_first(tree, max_solutions=2)
        answers = sorted(str(tree.solution_answer(s)["X"]) for s in res.solutions)
        assert answers == ["m1", "m2"]
        # the dead (context, pick) pairs carry infinite weight
        dead_pairs = sum(
            1
            for (p, k), e in store._pairs.items()
            if e.state.value == "infinite"
        )
        assert dead_pairs >= 1

    def test_marginal_conflates(self):
        """The marginal store cannot price pick(m1) differently per
        context: after learning, at most one of the two (context, pick)
        conflicts is representable."""
        program, store, kwargs = self._learn(conditional=False)
        # the pick pointers are shared by via_a and via_b (same caller
        # clause? no — different callers), so find the shared situation:
        # callers differ here, so the marginal store *can* separate —
        # verify the genuinely shared case with the 'goal' policy where
        # canonical pick(X) arcs merge across contexts
        program2 = Program.from_source(CONTEXT_PROGRAM)
        store2 = WeightStore(n=8, a=16)
        tree = OrTree(
            program2,
            "go(X)",
            weight_fn=store2.weight_fn(),
            arc_key_policy="goal",
            max_depth=16,
        )
        best_first(tree)
        from repro.weights import on_failure, on_success

        logs = []
        for node in tree.solutions():
            logs.append(on_success(store2, tree.chain_arcs(node.nid)))
        for node in tree.failures():
            logs.append(on_failure(store2, tree.chain_arcs(node.nid)))
        # under merged goal arcs, the same pick arc sits in succeeding
        # AND failing chains: some update must degenerate (noop/anomaly)
        assert any(l.kind == "noop" or l.anomaly for l in logs)
