"""The serving layer: routing, caching, backpressure, failure handling.

Covers the contract end to end: session affinity (one session, one
lane, one local store, learning visible across a session's queries),
cache hit → session merge → generation-stale miss, per-query deadline
with session abandonment, one retry on worker death, ``Overloaded``
rejection at the admission bound, the TCP line-JSON endpoint, and a
200-query mixed-session load test with zero lost or duplicated
answers.
"""

import asyncio
import json
import math
import os
import signal
import time

import pytest
from typing import ClassVar

from repro.logic.parser import parse_query
from repro.service import (
    AdmissionController,
    AnswerCache,
    BLogService,
    LifecycleState,
    NotServing,
    Overloaded,
    QueryRequest,
    WorkerDied,
    canonical_query_text,
    percentile,
)
from repro.workloads import family_program, nrev_program


def run(coro):
    return asyncio.run(coro)


# CI runs this whole module once per backend (BLOG_SERVICE_BACKEND in the
# matrix); tests that reach into thread-lane internals pin backend="thread".
BACKEND = os.environ.get("BLOG_SERVICE_BACKEND", "thread")


def make_service(**kw):
    kw.setdefault("n_workers", 2)
    kw.setdefault("backend", BACKEND)
    return BLogService({"family": family_program()}, **kw)


async def with_service(body, **kw):
    svc = make_service(**kw)
    await svc.start()
    try:
        return await body(svc)
    finally:
        await svc.stop()


# -- unit pieces -------------------------------------------------------------


class TestCanonicalQuery:
    def test_variable_names_do_not_matter(self):
        a = canonical_query_text(parse_query("gf(sam, G)"))
        b = canonical_query_text(parse_query("gf(sam, Who)"))
        assert a == b

    def test_sharing_between_goals_is_preserved(self):
        shared = canonical_query_text(parse_query("f(X, Y), f(Y, Z)"))
        unshared = canonical_query_text(parse_query("f(X, Y), f(W, Z)"))
        assert shared != unshared

    def test_constants_matter(self):
        assert canonical_query_text(parse_query("gf(sam, G)")) != canonical_query_text(
            parse_query("gf(curt, G)")
        )

    def test_anonymous_variables_get_a_distinct_cache_line(self):
        from repro.service import cache_key

        named = cache_key("p", parse_query("gf(sam, G)"), None)
        anon = cache_key("p", parse_query("gf(sam, _)"), None)
        assert named != anon  # same canonical text, different bindings reported


class TestAnswerCache:
    def test_put_get_roundtrip(self):
        c = AnswerCache(capacity=4)
        c.put(("p", "q", None), 0, [{"X": "a"}])
        assert c.get(("p", "q", None), 0) == [{"X": "a"}]
        assert c.hits == 1

    def test_generation_mismatch_evicts(self):
        c = AnswerCache(capacity=4)
        c.put(("p", "q", None), 0, [{"X": "a"}])
        assert c.get(("p", "q", None), 1) is None
        assert c.stale == 1
        assert len(c) == 0

    def test_lru_eviction(self):
        c = AnswerCache(capacity=2)
        c.put(("p", "a", None), 0, [])
        c.put(("p", "b", None), 0, [])
        c.get(("p", "a", None), 0)  # refresh a
        c.put(("p", "c", None), 0, [])  # evicts b
        assert c.get(("p", "b", None), 0) is None
        assert c.get(("p", "a", None), 0) is not None

    def test_invalidate_program(self):
        c = AnswerCache(capacity=8)
        c.put(("p", "a", None), 0, [])
        c.put(("r", "a", None), 0, [])
        assert c.invalidate_program("p") == 1
        assert len(c) == 1


class TestAdmission:
    def test_bound_enforced(self):
        adm = AdmissionController(max_pending=2)
        adm.acquire()
        adm.acquire()
        with pytest.raises(Overloaded):
            adm.acquire()
        adm.release()
        adm.acquire()  # slot freed
        assert adm.rejected == 1

    def test_release_without_acquire(self):
        with pytest.raises(RuntimeError):
            AdmissionController(max_pending=1).release()


class TestPercentile:
    def test_interpolation(self):
        assert percentile([0.0, 10.0], 50.0) == 5.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 95.0) == pytest.approx(3.85)
        assert percentile([], 95.0) == 0.0

    def test_single_sample_any_q(self):
        for q in (0.0, 37.2, 50.0, 95.0, 100.0):
            assert percentile([7.5], q) == 7.5

    def test_unsorted_input(self):
        assert percentile([10.0, 0.0], 50.0) == 5.0
        assert percentile([3.0, 1.0, 4.0, 2.0], 0.0) == 1.0
        assert percentile([3.0, 1.0, 4.0, 2.0], 100.0) == 4.0

    def test_q_extremes_are_min_and_max(self):
        xs = [5.0, 1.0, 9.0, 3.0]
        assert percentile(xs, 0.0) == 1.0
        assert percentile(xs, 100.0) == 9.0  # exactly the max, no index error

    def test_out_of_range_q_clamps(self):
        xs = [1.0, 2.0, 3.0]
        # a negative q must clamp to the min — int(pos) truncation on a
        # negative position used to wrap around to xs[-1] (the max!)
        assert percentile(xs, -5.0) == 1.0
        assert percentile(xs, 150.0) == 3.0

    def test_nan_samples_are_dropped(self):
        nan = float("nan")
        assert percentile([nan, 1.0, nan, 3.0], 50.0) == 2.0
        assert percentile([nan, 42.0], 95.0) == 42.0
        assert percentile([nan, nan], 50.0) == 0.0  # all-NaN == empty
        for q in (0.0, 50.0, 95.0, 100.0):
            assert not math.isnan(percentile([nan, 1.0, 2.0], q))


# -- the service itself ------------------------------------------------------


class TestBasicServing:
    def test_answers_match_engine(self):
        async def body(svc):
            return await svc.submit(QueryRequest("family", "gf(sam, G)"))

        resp = run(with_service(body))
        assert resp.ok
        assert sorted(a["G"] for a in resp.answers) == ["den", "doug"]
        assert resp.engine == "blog" and not resp.cached

    def test_unknown_program_and_engine(self):
        async def body(svc):
            bad_prog = await svc.submit(QueryRequest("nope", "gf(sam, G)"))
            bad_eng = await svc.submit(
                QueryRequest("family", "gf(sam, G)", engine="warp")
            )
            return bad_prog, bad_eng

        bad_prog, bad_eng = run(with_service(body))
        assert not bad_prog.ok and "unknown program" in bad_prog.error
        assert not bad_eng.ok and "unknown engine" in bad_eng.error

    def test_syntax_error_is_a_response_not_a_crash(self):
        async def body(svc):
            return await svc.submit(QueryRequest("family", "gf(sam,"))

        resp = run(with_service(body))
        assert not resp.ok and "syntax error" in resp.error

    def test_procpool_engine(self):
        async def body(svc):
            return await svc.submit(
                QueryRequest("family", "gf(sam, G)", engine="procpool")
            )

        resp = run(with_service(body))
        assert resp.ok
        assert sorted(a["G"] for a in resp.answers) == ["den", "doug"]


class TestSessionAffinity:
    def test_same_session_same_lane_and_state(self):
        async def body(svc):
            await svc.submit(QueryRequest("family", "gf(sam, G)", session="alice"))
            await svc.submit(
                QueryRequest("family", "gf(curt, G)", session="alice")
            )
            state = svc.router.get("family", "alice")
            return state, svc.router.lane_for("alice")

        state, lane = run(with_service(body))
        assert state is not None
        assert state.queries == 2
        assert state.lane == lane  # placement never moved

    def test_learning_is_visible_within_a_session(self):
        """The second query of a session runs under weights the first
        one learned (strong local updates); a fresh session is cold."""

        async def body(svc):
            cold = await svc.submit(
                QueryRequest("family", "gf(sam, G)", session="warmup")
            )
            warm = await svc.submit(
                QueryRequest(
                    "family", "gf(sam, G)", session="warmup", max_solutions=1
                )
            )
            fresh = await svc.submit(
                QueryRequest(
                    "family", "gf(sam, G)", session="newcomer",
                    max_solutions=1, cache=False,
                )
            )
            return cold, warm, fresh

        cold, warm, fresh = run(with_service(body))
        assert cold.ok and warm.ok and fresh.ok
        assert not warm.cached and not fresh.cached
        assert warm.expansions < fresh.expansions

    def test_distinct_sessions_have_distinct_local_stores(self):
        async def body(svc):
            await svc.submit(
                QueryRequest("family", "gf(sam, G)", session="a", cache=False)
            )
            await svc.submit(
                QueryRequest("family", "gf(sam, G)", session="b", cache=False)
            )
            sa = svc.router.get("family", "a")
            sb = svc.router.get("family", "b")
            return sa, sb

        # thread-pinned: pokes the in-parent local stores, which live in
        # the lane child under the process backend
        sa, sb = run(with_service(body, backend="thread"))
        assert sa.local_store is not sb.local_store
        # neither session has merged: the global store is untouched
        assert len(sa.engine.sessions.global_store) == 0


class TestCacheLifecycle:
    def test_hit_then_merge_then_stale_miss(self):
        async def body(svc):
            first = await svc.submit(
                QueryRequest("family", "gf(sam, G)", session="s1")
            )
            renamed = await svc.submit(
                QueryRequest("family", "gf(sam, Who)", session="s1")
            )
            gen_before = svc.programs["family"].global_store.generation
            report = await svc.end_session("family", "s1")
            gen_after = svc.programs["family"].global_store.generation
            third = await svc.submit(
                QueryRequest("family", "gf(sam, G)", session="s2")
            )
            fourth = await svc.submit(
                QueryRequest("family", "gf(sam, G)", session="s3")
            )
            return first, renamed, report, gen_before, gen_after, third, fourth, svc

        first, renamed, report, g0, g1, third, fourth, svc = run(with_service(body))
        assert first.ok and not first.cached
        assert renamed.cached  # canonical key: variable names don't matter
        # ...and the cached answers come back under the *asker's* names
        assert sorted(a["Who"] for a in renamed.answers) == ["den", "doug"]
        assert report is not None and report.adopted > 0
        assert g1 > g0  # the merge moved the weights
        assert not third.cached  # stale entry evicted, recomputed
        assert fourth.cached  # refilled under the new generation
        assert svc.cache.stale >= 1

    def test_end_session_unknown_session_is_none(self):
        async def body(svc):
            return await svc.end_session("family", "ghost")

        assert run(with_service(body)) is None


class TestFailureHandling:
    """Thread-pinned: these tests monkeypatch ``svc._execute``, which only
    runs in-process for thread lanes (process lanes execute in the lane
    child — their failure modes are exercised by test_service_faults.py)."""

    def test_timeout_fails_request_and_abandons_session(self):
        async def body(svc):
            real = svc._execute

            def slow(*a, **k):
                time.sleep(0.5)
                return real(*a, **k)

            svc._execute = slow
            resp = await svc.submit(
                QueryRequest("family", "gf(sam, G)", session="slowpoke", timeout=0.05)
            )
            svc._execute = real
            follow_up = await svc.submit(
                QueryRequest("family", "gf(curt, G)", session="slowpoke")
            )
            return resp, follow_up, svc.router.get("family", "slowpoke")

        resp, follow_up, state = run(with_service(body, backend="thread"))
        assert not resp.ok and "deadline" in resp.error
        assert follow_up.ok  # a fresh session state served the next query
        assert state is not None and state.queries == 1  # reopened, not reused

    def test_worker_death_is_retried_once(self):
        async def body(svc):
            real = svc._execute
            deaths = {"n": 0}

            def flaky(*a, **k):
                if deaths["n"] == 0:
                    deaths["n"] += 1
                    raise WorkerDied("simulated crash")
                return real(*a, **k)

            svc._execute = flaky
            return await svc.submit(QueryRequest("family", "gf(sam, G)"))

        resp = run(with_service(body, backend="thread"))
        assert resp.ok
        assert resp.retries == 1
        assert sorted(a["G"] for a in resp.answers) == ["den", "doug"]

    def test_second_death_fails_the_request(self):
        async def body(svc):
            def doomed(*a, **k):
                raise WorkerDied("persistent crash")

            svc._execute = doomed
            return await svc.submit(QueryRequest("family", "gf(sam, G)"))

        resp = run(with_service(body, backend="thread"))
        assert not resp.ok
        assert "worker died twice" in resp.error
        assert resp.retries == 1

    def test_overloaded_rejection_when_queue_full(self):
        async def body(svc):
            def slow(*a, **k):
                time.sleep(0.2)
                return [], None

            svc._execute = slow
            reqs = [
                svc.submit(
                    QueryRequest("family", "gf(sam, G)", session=f"c{i}")
                )
                for i in range(5)
            ]
            return await asyncio.gather(*reqs, return_exceptions=True)

        results = run(with_service(body, n_workers=1, max_pending=2, backend="thread"))
        rejected = [r for r in results if isinstance(r, Overloaded)]
        served = [r for r in results if not isinstance(r, Exception)]
        assert len(rejected) == 3 and len(served) == 2
        assert all(r.ok for r in served)

    def test_machine_degrades_to_blog_under_load(self):
        async def body(svc):
            return await svc.submit(
                QueryRequest("family", "gf(sam, G)", engine="machine")
            )

        resp = run(with_service(body, degrade_pending=0, backend="thread"))
        assert resp.ok
        assert resp.engine == "blog" and resp.degraded

    def test_machine_runs_when_unloaded(self):
        async def body(svc):
            return await svc.submit(
                QueryRequest("family", "gf(sam, G)", engine="machine")
            )

        resp = run(with_service(body, backend="thread"))
        assert resp.ok and resp.engine == "machine" and not resp.degraded
        assert sorted(a["G"] for a in resp.answers) == ["den", "doug"]


class TestTcpEndpoint:
    def test_query_merge_stats_roundtrip(self):
        async def body():
            svc = make_service()
            server = await svc.serve_tcp("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)

            async def ask(msg):
                writer.write((json.dumps(msg) + "\n").encode())
                await writer.drain()
                return json.loads(await reader.readline())

            q1 = await ask(
                {"op": "query", "id": "r1", "program": "family",
                 "query": "gf(sam, G)", "session": "tcp1"}
            )
            q2 = await ask(
                {"program": "family", "query": "gf(sam, G)", "session": "tcp1"}
            )  # op defaults to query
            merged = await ask(
                {"op": "end_session", "program": "family", "session": "tcp1"}
            )
            stats = await ask({"op": "stats"})
            bad = await ask({"op": "nope"})
            garbage_reply = None
            writer.write(b"this is not json\n")
            await writer.drain()
            garbage_reply = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            await svc.stop()
            return q1, q2, merged, stats, bad, garbage_reply

        q1, q2, merged, stats, bad, garbage = run(body())
        assert q1["ok"] and q1["id"] == "r1"
        assert sorted(a["G"] for a in q1["answers"]) == ["den", "doug"]
        assert q2["ok"] and q2["cached"]
        assert merged["ok"] and merged["merged"]["adopted"] > 0
        assert stats["ok"] and stats["stats"]["served"] >= 2
        assert not bad["ok"]
        assert not garbage["ok"] and "bad json" in garbage["error"]


class TestLifecycle:
    """PR 5: graceful lifecycle — health/ready, drain, signal wiring."""

    def test_ready_tracks_lifecycle_states(self):
        async def body():
            svc = make_service()
            states = [(svc.lifecycle.state, svc.lifecycle.ready)]
            await svc.start()
            states.append((svc.lifecycle.state, svc.lifecycle.ready))
            await svc.lifecycle.drain(timeout=5.0)
            states.append((svc.lifecycle.state, svc.lifecycle.ready))
            return states

        before, serving, stopped = run(body())
        assert before == (LifecycleState.STARTING, False)
        assert serving == (LifecycleState.SERVING, True)
        assert stopped == (LifecycleState.STOPPED, False)

    def test_recovering_state_visited_with_data_dir(self, tmp_path):
        async def body():
            svc = make_service(data_dir=tmp_path / "weights")
            await svc.start()
            try:
                history = list(svc.lifecycle.history)
                durability = svc.stats()["durability"]
            finally:
                await svc.stop()
            return history, durability

        history, durability = run(body())
        assert "recovering" in history and "serving" in history
        assert durability["family"]["seq"] == 0  # fresh dir: nothing to replay

    def test_drain_merges_open_sessions_then_rejects_work(self):
        async def body():
            svc = make_service()
            await svc.start()
            resp = await svc.submit(
                QueryRequest("family", "gf(sam, G)", session="open")
            )
            assert resp.ok
            report = await svc.lifecycle.drain(timeout=5.0)
            with pytest.raises(NotServing):
                await svc.submit(QueryRequest("family", "gf(sam, G)"))
            return report

        report = run(body())
        assert report["sessions_merged"] >= 1
        assert report["pending_at_exit"] == 0

    def test_drain_completes_inflight_queries(self):
        async def body():
            svc = make_service()
            await svc.start()
            inflight = [
                asyncio.ensure_future(
                    svc.submit(
                        QueryRequest("family", "gf(sam, G)", session=f"s{i}")
                    )
                )
                for i in range(4)
            ]
            await asyncio.sleep(0)  # let the submissions reach the lanes
            report = await svc.lifecycle.drain(timeout=10.0)
            replies = await asyncio.gather(*inflight)
            return report, replies

        report, replies = run(body())
        assert all(r.ok for r in replies)  # admitted work survived the drain
        assert report["cancelled"] == 0

    def test_drain_is_idempotent(self):
        async def body():
            svc = make_service()
            await svc.start()
            first, second = await asyncio.gather(
                svc.lifecycle.drain(timeout=5.0),
                svc.lifecycle.drain(timeout=5.0),
            )
            return first, second

        first, second = run(body())
        assert first == second

    def test_end_session_reply_carries_generation(self):
        async def body(svc):
            resp = await svc.submit(
                QueryRequest("family", "gf(sam, G)", session="gen")
            )
            assert resp.ok
            return await svc.end_session("family", "gen")

        report = run(with_service(body))
        assert report is not None and report.generation > 0

    def test_tcp_health_ready_and_draining_reply(self):
        async def body():
            svc = make_service()
            server = await svc.serve_tcp("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)

            async def ask(msg):
                writer.write((json.dumps(msg) + "\n").encode())
                await writer.drain()
                return json.loads(await reader.readline())

            health = await ask({"op": "health"})
            ready = await ask({"op": "ready"})
            await svc.lifecycle.drain(timeout=5.0)
            # the established connection outlives the listener: replies
            # for draining-time requests still flow back
            rejected = await ask(
                {"op": "query", "program": "family", "query": "gf(sam, G)"}
            )
            stopped = await ask({"op": "health"})
            writer.close()
            return health, ready, rejected, stopped

        health, ready, rejected, stopped = run(body())
        assert health["ok"] and health["state"] == "serving"
        assert ready["ok"] and ready["ready"]
        assert not rejected["ok"] and rejected["draining"]
        assert stopped["state"] == "stopped" and not stopped["ready"]

    def test_sigterm_triggers_drain(self):
        async def body():
            svc = make_service()
            await svc.start()
            installed = svc.lifecycle.install_signal_handlers(
                asyncio.get_running_loop()
            )
            try:
                if not installed:  # platform without add_signal_handler
                    await svc.stop()
                    return None
                os.kill(os.getpid(), signal.SIGTERM)
                await asyncio.wait_for(svc.lifecycle.terminated.wait(), 30.0)
            finally:
                svc.lifecycle.remove_signal_handlers()
                if svc.lifecycle.state is not LifecycleState.STOPPED:
                    await svc.stop()
            return svc.lifecycle.state

        state = run(body())
        assert state is None or state is LifecycleState.STOPPED


class TestLoadAcceptance:
    """The issue's acceptance bar: ≥200 mixed-session queries, zero
    lost/duplicated answers, latency + hit-rate reported, cache
    invalidated by a session merge."""

    QUERIES: ClassVar[dict] = {
        "family": {
            "gf(sam, G)": {"den", "doug"},
            "gf(curt, G)": {"john"},
            "f(sam, Y)": {"larry"},
            "f(larry, Y)": {"den", "doug"},
        },
    }

    def test_200_query_closed_loop(self):
        programs = {"family": family_program(), "nrev": nrev_program()}
        nrev_expected = "[e, d, c, b, a]"
        total = 200
        clients = 8
        plan = []  # (program, query, session, expected answer multiset)
        fam_items = list(self.QUERIES["family"].items())
        for i in range(total):
            session = f"sess{i % 10}"
            if i % 5 == 4:
                plan.append(
                    ("nrev", "nrev([a,b,c,d,e], R)", session,
                     frozenset([nrev_expected]))
                )
            else:
                q, expect = fam_items[i % len(fam_items)]
                plan.append(("family", q, session, frozenset(expect)))

        async def body():
            svc = BLogService(
                programs, n_workers=4, max_pending=256, backend=BACKEND
            )
            await svc.start()
            queue = asyncio.Queue()
            for i, item in enumerate(plan):
                queue.put_nowait((f"req{i}", item))
            responses = {}

            async def client():
                while True:
                    try:
                        rid, (prog, q, sess, _) = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        return
                    responses[rid] = await svc.submit(
                        QueryRequest(prog, q, session=sess, request_id=rid)
                    )

            await asyncio.gather(*[client() for _ in range(clients)])

            # demonstrate invalidation: a cached family query goes stale
            # after its session merges
            probe = QueryRequest("family", "gf(sam, G)", session="sess0")
            before = await svc.submit(probe)
            merge = await svc.end_session("family", "sess0")
            after = await svc.submit(
                QueryRequest("family", "gf(sam, G)", session="sess1")
            )
            stats = svc.stats()
            await svc.stop()
            return responses, before, merge, after, stats

        responses, before, merge, after, stats = run(body())

        # zero lost, zero duplicated requests
        assert len(responses) == total
        assert sorted(responses) == sorted(f"req{i}" for i in range(total))

        # every answer set exact — nothing lost or duplicated inside a reply
        for i, (prog, q, sess, expect) in enumerate(plan):
            resp = responses[f"req{i}"]
            assert resp.ok, f"req{i} failed: {resp.error}"
            if prog == "family":
                got = [a["G" if "G)" in q else "Y"] for a in resp.answers]
            else:
                got = [a["R"] for a in resp.answers]
            assert len(got) == len(set(got)), f"req{i} duplicated answers: {got}"
            assert set(got) == set(expect), f"req{i} wrong answers: {got}"

        # the merge moved weights and invalidated the cached entry
        assert before.cached
        assert merge is not None and merge.adopted + merge.averaged > 0
        assert not after.cached

        # the report the issue asks for
        assert stats["served"] >= total
        assert stats["errors"] == 0 and stats["rejected"] == 0
        assert stats["cache_hit_rate"] > 0.5  # closed loop re-asks hot queries
        assert stats["p50_ms"] >= 0.0 and stats["p95_ms"] >= stats["p50_ms"]
        print(
            f"\nload: served={stats['served']} qps={stats['throughput_qps']:.0f} "
            f"p50={stats['p50_ms']:.2f}ms p95={stats['p95_ms']:.2f}ms "
            f"hit_rate={stats['cache_hit_rate']:.2f}"
        )
