"""Property tests: the simulated machine always terminates and agrees
with the sequential baseline on random configurations."""

from hypothesis import given, settings, strategies as st

from repro.logic import Solver
from repro.machine import BLogMachine, MachineConfig
from repro.ortree import OrTree
from repro.workloads import synthetic_tree


@st.composite
def machine_cases(draw):
    wl = synthetic_tree(
        branching=draw(st.integers(2, 3)),
        depth=draw(st.integers(2, 3)),
        dead_fraction=draw(st.sampled_from([0.0, 0.34])),
        seed=draw(st.integers(0, 8)),
    )
    cfg = MachineConfig(
        n_processors=draw(st.integers(1, 6)),
        tasks_per_processor=draw(st.integers(1, 3)),
        d=draw(st.sampled_from([0.0, 1.0, 4.0, 1e9])),
        adaptive_d=draw(st.booleans()),
        chain_words_per_depth=draw(st.sampled_from([4, 8, 32])),
    )
    return wl, cfg


class TestMachineProperties:
    @given(machine_cases())
    @settings(max_examples=25, deadline=None)
    def test_terminates_with_correct_answers(self, case):
        wl, cfg = case
        expected = sorted(
            str(s["W"])
            for s in Solver(wl.program, max_depth=32).solve_all(wl.query)
        )
        tree = OrTree(wl.program, wl.query, max_depth=32)
        res = BLogMachine(cfg).run(tree)
        got = sorted(str(a["W"]) for a in res.answers)
        assert got == expected
        assert res.makespan >= 0

    @given(machine_cases())
    @settings(max_examples=15, deadline=None)
    def test_work_conservation(self, case):
        """Total expansions equal the sum over processors, regardless of
        migration pattern."""
        wl, cfg = case
        tree = OrTree(wl.program, wl.query, max_depth=32)
        res = BLogMachine(cfg).run(tree)
        assert sum(res.per_processor_expansions) == res.expansions
        assert res.idle_pulls + res.rebalances == res.migrations

    @given(machine_cases())
    @settings(max_examples=10, deadline=None)
    def test_utilization_bounded(self, case):
        wl, cfg = case
        tree = OrTree(wl.program, wl.query, max_depth=32)
        res = BLogMachine(cfg).run(tree)
        for u in res.per_processor_utilization:
            assert 0.0 <= u <= 1.0 + 1e-9


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        """The DES is fully deterministic: two runs of the same config
        produce byte-identical event traces and results."""
        wl = synthetic_tree(branching=3, depth=4, dead_fraction=0.34, seed=77)

        def run():
            cfg = MachineConfig(
                n_processors=4, tasks_per_processor=2, d=2.0, record_events=True
            )
            tree = OrTree(wl.program, wl.query, max_depth=32)
            return BLogMachine(cfg).run(tree)

        a, b = run(), run()
        assert a.makespan == b.makespan
        assert a.events == b.events
        assert [str(x) for x in a.answers] == [str(x) for x in b.answers]
        assert a.per_processor_expansions == b.per_processor_expansions

    def test_engine_runs_deterministic(self, figure1=None):
        from repro.core import BLogConfig, BLogEngine
        from repro.workloads import family_program

        program = family_program()

        def run():
            eng = BLogEngine(program, BLogConfig(n=8, a=16))
            eng.begin_session()
            r = eng.query("gf(sam, G)")
            eng.end_session()
            return r

        a, b = run(), run()
        assert [str(x) for x in a.answers] == [str(x) for x in b.answers]
        assert a.expansions == b.expansions
        assert a.solution_bounds == b.solution_bounds
