"""Unit tests for the benchmark reporting helpers."""

from repro.reporting import format_series, format_table, print_table


def test_format_table_alignment():
    rows = [
        {"strategy": "depth-first", "expansions": 10, "speedup": 1.0},
        {"strategy": "best-first", "expansions": 3, "speedup": 3.333},
    ]
    text = format_table(rows)
    lines = text.splitlines()
    assert lines[0].startswith("strategy")
    assert "depth-first" in lines[2]
    assert "3.333" in lines[3]


def test_format_table_column_subset():
    rows = [{"a": 1, "b": 2}]
    text = format_table(rows, columns=["b"])
    assert "a" not in text.splitlines()[0]


def test_format_table_empty():
    assert format_table([]) == "(no rows)"


def test_float_formatting():
    rows = [{"x": float("inf"), "y": 12345.6, "z": 2.0}]
    text = format_table(rows)
    assert "inf" in text
    assert "12346" in text
    assert " 2" in text


def test_missing_cell_blank():
    rows = [{"a": 1}, {"a": 2, "b": 3}]
    text = format_table(rows, columns=["a", "b"])
    assert text  # renders without KeyError


def test_print_table_titled(capsys):
    print_table("E1", [{"k": 1}])
    out = capsys.readouterr().out
    assert "=== E1 ===" in out
    assert "k" in out


def test_format_series():
    s = format_series("speedup", [1, 2, 4], [1.0, 1.9, 3.5])
    assert s == "speedup: 1->1 2->1.900 4->3.500"
