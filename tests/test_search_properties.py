"""Property tests on search-level invariants (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import Program, Solver
from repro.ortree import ArcKey, OrTree, best_first, breadth_first, depth_first
from repro.workloads import synthetic_tree


@st.composite
def weighted_trees(draw):
    """A synthetic tree plus a deterministic non-negative weight function."""
    branching = draw(st.integers(2, 3))
    depth = draw(st.integers(2, 3))
    dead = draw(st.sampled_from([0.0, 0.34]))
    seed = draw(st.integers(0, 10))
    scale = draw(st.integers(0, 5))

    def weight_fn(key: ArcKey) -> float:
        if key.kind == "builtin":
            return 0.0
        return float((hash(key.key) % 7) * scale % 11)

    wl = synthetic_tree(branching, depth, dead, seed=seed)
    return wl, weight_fn


class TestBestFirstProperties:
    @given(weighted_trees())
    @settings(max_examples=25, deadline=None)
    def test_first_solution_has_minimal_bound(self, case):
        """With non-negative monotone weights, best-first pops the
        minimum-bound solution first."""
        wl, weight_fn = case
        tree = OrTree(wl.program, wl.query, weight_fn=weight_fn, max_depth=16)
        res = best_first(tree, max_solutions=None)
        if res.solutions:
            first = res.solution_bounds[0]
            assert first == min(res.solution_bounds)

    @given(weighted_trees())
    @settings(max_examples=25, deadline=None)
    def test_solutions_pop_in_bound_order(self, case):
        wl, weight_fn = case
        tree = OrTree(wl.program, wl.query, weight_fn=weight_fn, max_depth=16)
        res = best_first(tree)
        assert res.solution_bounds == sorted(res.solution_bounds)

    @given(weighted_trees())
    @settings(max_examples=25, deadline=None)
    def test_bounds_monotone_along_every_chain(self, case):
        wl, weight_fn = case
        tree = OrTree(wl.program, wl.query, weight_fn=weight_fn, max_depth=16)
        tree.expand_all()
        for node in tree.nodes:
            if node.parent is not None:
                assert node.bound >= tree.node(node.parent).bound - 1e-12

    @given(weighted_trees())
    @settings(max_examples=20, deadline=None)
    def test_all_strategies_same_solution_count(self, case):
        wl, weight_fn = case
        counts = set()
        for strat in (depth_first, breadth_first, best_first):
            tree = OrTree(wl.program, wl.query, weight_fn=weight_fn, max_depth=16)
            counts.add(len(strat(tree).solutions))
        assert len(counts) == 1

    @given(weighted_trees())
    @settings(max_examples=20, deadline=None)
    def test_arc_key_policy_does_not_change_answers(self, case):
        wl, _ = case
        results = []
        for policy in ("pointer", "goal"):
            tree = OrTree(wl.program, wl.query, arc_key_policy=policy, max_depth=16)
            res = depth_first(tree)
            results.append(
                sorted(str(tree.solution_answer(s)["W"]) for s in res.solutions)
            )
        assert results[0] == results[1]


class TestPruningProperties:
    @given(weighted_trees())
    @settings(max_examples=20, deadline=None)
    def test_pruned_first_solution_still_optimal(self, case):
        """Incumbent pruning never removes the best solution."""
        wl, weight_fn = case
        t1 = OrTree(wl.program, wl.query, weight_fn=weight_fn, max_depth=16)
        plain = best_first(t1, max_solutions=1)
        t2 = OrTree(wl.program, wl.query, weight_fn=weight_fn, max_depth=16)
        pruned = best_first(t2, max_solutions=1, prune_bound=True)
        if plain.solutions:
            assert pruned.solutions
            assert pruned.solution_bounds[0] == pytest.approx(
                plain.solution_bounds[0]
            )

    @given(weighted_trees())
    @settings(max_examples=15, deadline=None)
    def test_pruning_never_increases_expansions(self, case):
        wl, weight_fn = case
        t1 = OrTree(wl.program, wl.query, weight_fn=weight_fn, max_depth=16)
        plain = best_first(t1)
        t2 = OrTree(wl.program, wl.query, weight_fn=weight_fn, max_depth=16)
        pruned = best_first(t2, prune_bound=True)
        assert pruned.expansions <= plain.expansions


class TestSelectionRuleProperties:
    @given(weighted_trees(), st.sampled_from(["most-bound", "fewest-candidates"]))
    @settings(max_examples=20, deadline=None)
    def test_selection_rules_preserve_answers(self, case, rule):
        wl, _ = case
        base_tree = OrTree(wl.program, wl.query, max_depth=16)
        base = sorted(
            str(base_tree.solution_answer(s)["W"])
            for s in depth_first(base_tree).solutions
        )
        tree = OrTree(wl.program, wl.query, selection_rule=rule, max_depth=16)
        got = sorted(
            str(tree.solution_answer(s)["W"])
            for s in depth_first(tree).solutions
        )
        assert got == base
