"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestOneShotQueries:
    def test_demo_blog_query(self):
        code, out = run_cli("--demo", "--query", "gf(sam, G)")
        assert code == 0
        assert "G = den" in out
        assert "G = doug" in out
        assert "expansions" in out

    def test_demo_prolog_query(self):
        code, out = run_cli("--demo", "--engine", "prolog", "--query", "gf(sam, G)")
        assert code == 0
        assert out.index("G = den") < out.index("G = doug")
        assert "inferences" in out

    def test_demo_machine_query(self):
        code, out = run_cli(
            "--demo", "--engine", "machine", "--query", "gf(sam, G)",
            "--processors", "2",
        )
        assert code == 0
        assert "makespan" in out
        assert "G = den" in out

    def test_failed_query_exit_code(self):
        code, out = run_cli("--demo", "--query", "gf(john, G)")
        assert code == 1
        assert "false." in out

    def test_max_solutions(self):
        code, out = run_cli("--demo", "--query", "gf(sam, G)", "--max-solutions", "1")
        assert code == 0
        assert out.count("G = ") == 1

    def test_tree_rendering(self):
        code, out = run_cli("--demo", "--query", "gf(sam, G)", "--tree")
        assert "[SOLUTION]" in out

    def test_syntax_error(self):
        code, out = run_cli("--demo", "--query", "gf(sam,")
        assert code == 2
        assert "syntax error" in out


class TestProgramLoading:
    def test_source_file(self, tmp_path):
        src = tmp_path / "prog.pl"
        src.write_text("hello(world).\n")
        code, out = run_cli("--source", str(src), "--query", "hello(X)")
        assert code == 0
        assert "X = world" in out

    def test_listing(self):
        code, out = run_cli("--demo", "--listing")
        assert code == 0
        assert "gf(X, Z) :- f(X, Y), f(Y, Z)." in out

    def test_no_program_usage_error(self):
        code, out = run_cli("--query", "x(Y)")
        assert code == 2
        assert "error:" in out


class TestNrev:
    def test_nrev_benchmark(self):
        code, out = run_cli("--nrev", "10")
        assert code == 0
        assert "kLIPS" in out
        assert "reversed correctly: True" in out


class TestRepl:
    def test_repl_session(self, monkeypatch):
        lines = iter(["gf(sam, G)", ":store", ":listing", "bogus syntax((", ":quit"])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        code, out = run_cli("--demo")
        assert code == 0
        assert "G = den" in out
        assert "WeightStore" in out
        assert "gf(X, Z)" in out
        assert "syntax error" in out

    def test_repl_eof_exits(self, monkeypatch):
        def raise_eof(prompt=""):
            raise EOFError

        monkeypatch.setattr("builtins.input", raise_eof)
        code, out = run_cli("--demo")
        assert code == 0


class TestStorePersistence:
    def test_save_then_load_store(self, tmp_path):
        store = tmp_path / "w.json"
        code, _ = run_cli(
            "--demo", "--query", "gf(sam, G)", "--save-store", str(store)
        )
        assert code == 0
        assert store.exists()
        # a warm run loads it and reaches the first answer faster
        code2, out2 = run_cli(
            "--demo", "--query", "gf(sam, G)", "--max-solutions", "1",
            "--load-store", str(store),
        )
        assert code2 == 0
        code3, out3 = run_cli(
            "--demo", "--query", "gf(sam, G)", "--max-solutions", "1"
        )
        warm = int(out2.split("(")[1].split()[0])
        cold = int(out3.split("(")[1].split()[0])
        assert warm <= cold


class TestServeSubcommand:
    def test_selfcheck_roundtrip(self):
        """`repro serve --demo --selfcheck` starts the TCP service,
        queries itself, prints stats, and exits cleanly."""
        code, out = run_cli("serve", "--demo", "--port", "0", "--selfcheck")
        assert code == 0
        assert "serving family on" in out
        assert out.count("ok=True") == 4
        assert "cache hit rate" in out

    def test_serve_without_program_errors(self):
        code, out = run_cli("serve", "--port", "0", "--selfcheck")
        assert code == 2
        assert "--source FILE and/or --demo" in out

    def test_legacy_flags_unaffected_by_subcommand(self):
        code, out = run_cli("--demo", "--query", "gf(sam, G)")
        assert code == 0
        assert "G = den" in out
