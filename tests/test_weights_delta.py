"""Weight-store delta serialization and the touched-keys merge.

The process-lane backend stands on three mechanisms added to the
weights layer — each pinned here at the unit level:

* ``modified_since`` — the per-key modification journal behind "ship
  deltas, not stores";
* ``store_delta`` / ``apply_delta`` — the wire form, including UNKNOWN
  tombstones for dropped keys and the mirror's generation jump;
* ``SessionManager``'s touched-keys merge — only keys the session
  actually wrote participate in the end-of-session merge (the §5
  "separate buffer" of weight updates), never the stale copies it
  inherited at open.
"""

import json

import pytest

from repro.ortree.tree import ArcKey
from repro.weights.persist import (
    DELTA_FORMAT,
    apply_delta,
    delta_store,
    store_delta,
)
from repro.weights.session import SessionManager, merge_conservative
from repro.weights.store import WeightState, WeightStore


def arc(i: int) -> ArcKey:
    return ArcKey("pointer", (f"c{i}", 0, f"p{i}"))


class TestModifiedSince:
    def test_journal_tracks_writes(self):
        s = WeightStore()
        g0 = s.generation
        s.set_known(arc(1), 3.0)
        s.set_infinite(arc(2))
        assert set(s.modified_since(g0)) == {arc(1), arc(2)}
        g1 = s.generation
        s.set_known(arc(3), 1.0)
        assert set(s.modified_since(g1)) == {arc(3)}
        assert s.modified_since(s.generation) == []

    def test_forget_and_clear_are_modifications(self):
        s = WeightStore()
        s.set_known(arc(1), 3.0)
        s.set_known(arc(2), 4.0)
        g = s.generation
        s.forget(arc(1))
        assert set(s.modified_since(g)) == {arc(1)}
        s.clear()
        assert set(s.modified_since(g)) == {arc(1), arc(2)}

    def test_copy_inherits_the_journal(self):
        s = WeightStore()
        s.set_known(arc(1), 3.0)
        c = s.copy()
        g = c.generation
        c.set_known(arc(2), 5.0)
        assert set(c.modified_since(g)) == {arc(2)}
        assert set(c.modified_since(0)) == {arc(1), arc(2)}
        assert s.modified_since(s.generation) == []  # parent untouched


class TestDeltaRoundtrip:
    def test_full_delta_builds_an_identical_mirror(self):
        src = WeightStore(n=8.0, a=4)
        src.set_known(arc(1), 3.0)
        src.set_infinite(arc(2))
        delta = store_delta(src)  # since=None: the full entry set
        assert delta["format"] == DELTA_FORMAT
        mirror = WeightStore(n=8.0, a=4)
        assert apply_delta(mirror, delta) == 2
        assert mirror.snapshot() == src.snapshot()
        assert mirror.generation == src.generation

    def test_incremental_delta_ships_only_whats_missing(self):
        src = WeightStore()
        src.set_known(arc(1), 3.0)
        mirror = WeightStore()
        apply_delta(mirror, store_delta(src))
        src.set_known(arc(2), 5.0)
        src.set_known(arc(1), 2.5)  # re-write: also newer than the sync
        delta = store_delta(src, since=mirror.generation)
        assert len(delta["entries"]) == 2  # arc(1) rewrite + arc(2), no more
        apply_delta(mirror, delta)
        assert mirror.snapshot() == src.snapshot()
        # now current: the next delta is empty
        assert store_delta(src, since=mirror.generation)["entries"] == []

    def test_tombstones_propagate_removals(self):
        src = WeightStore()
        src.set_known(arc(1), 3.0)
        src.set_known(arc(2), 4.0)
        mirror = WeightStore()
        apply_delta(mirror, store_delta(src))
        src.forget(arc(1))
        delta = store_delta(src, since=mirror.generation)
        states = {e["state"] for e in delta["entries"]}
        assert states == {WeightState.UNKNOWN.value}  # a pure tombstone
        apply_delta(mirror, delta)
        assert arc(1) not in mirror
        assert mirror.snapshot() == src.snapshot()

    def test_clear_tombstones_everything(self):
        src = WeightStore()
        src.set_known(arc(1), 3.0)
        src.set_infinite(arc(2))
        mirror = WeightStore()
        apply_delta(mirror, store_delta(src))
        src.clear()
        apply_delta(mirror, store_delta(src, since=mirror.generation))
        assert len(mirror) == 0

    def test_delta_is_json_serializable(self):
        src = WeightStore()
        src.set_known(arc(1), 3.0)
        src.set_known(ArcKey("builtin", (("is", 2),)), 0.0)  # ignored write
        src.set_infinite(arc(2))
        delta = store_delta(src)
        wire = json.dumps(delta)  # the whole point of the JSON key forms
        assert json.loads(wire)["generation"] == src.generation

    def test_bad_format_is_rejected(self):
        with pytest.raises(ValueError, match="format"):
            apply_delta(WeightStore(), {"format": "something-else", "entries": []})

    def test_delta_store_drops_tombstones(self):
        src = WeightStore()
        src.set_known(arc(1), 3.0)
        src.set_known(arc(2), 4.0)
        g = src.generation
        src.forget(arc(2))
        local = delta_store(store_delta(src, since=0))
        assert arc(1) in local and arc(2) not in local
        assert local.weight(arc(1)) == 3.0
        # and it is merge-ready: conservative-merging it into a fresh
        # global adopts exactly the live entries
        glob = WeightStore()
        report = merge_conservative(glob, local)
        assert report.adopted == 1 and len(glob) == 1
        assert g  # (quiet the linters: g documents the pre-forget point)


class TestTouchedKeysMerge:
    def test_untouched_inherited_keys_do_not_remerge(self):
        """A session that wrote nothing merges nothing — even though its
        local store holds copies of every global entry.  Before the
        touched-keys merge this re-averaged every inherited copy (a
        no-op arithmetically, but generation-bumping and O(store))."""
        glob = WeightStore()
        glob.set_known(arc(1), 4.0)
        g = glob.generation
        mgr = SessionManager(glob)
        mgr.begin_session()
        report = mgr.end_session()
        assert report.adopted == 0 and report.averaged == 0
        assert glob.generation == g  # nothing merged → no invalidation

    def test_only_touched_keys_participate(self):
        """Keys the session wrote merge; inherited copies of keys some
        *other* merge moved meanwhile are not dragged back."""
        glob = WeightStore()
        glob.set_known(arc(1), 4.0)
        glob.set_known(arc(2), 10.0)
        mgr = SessionManager(glob)
        mgr.begin_session()
        mgr.local.set_known(arc(1), 2.0)  # touched by this session
        # a concurrent session's merge moves arc(2) in the global store;
        # this session still holds the stale 10.0 copy of it
        glob.set_known(arc(2), 6.0)
        mgr.end_session()  # conservative, alpha=0.5
        assert glob.weight(arc(1)) == pytest.approx(3.0)  # (4+2)/2
        assert glob.weight(arc(2)) == 6.0  # stale copy never re-averaged

    def test_touched_includes_forgets(self):
        glob = WeightStore()
        glob.set_known(arc(1), 4.0)
        mgr = SessionManager(glob)
        mgr.begin_session()
        mgr.local.forget(arc(1))
        report = mgr.end_session()
        # a locally forgotten key is UNKNOWN locally: conservative
        # merge leaves the global value alone (infinities/unknowns
        # never override), but the merge still *considered* the key
        assert glob.weight(arc(1)) == 4.0
        assert report.adopted == 0
