"""Tests for the Omega/banyan network model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.banyan import BanyanNetwork, crossbar_cost, omega_route


class TestRouting:
    def test_path_length_is_log_n(self):
        assert len(omega_route(8, 0, 5)) == 3
        assert len(omega_route(16, 3, 12)) == 4

    def test_route_ends_at_destination(self):
        for n in (2, 4, 8, 16):
            for src in range(n):
                for dst in range(n):
                    path = omega_route(n, src, dst)
                    assert path[-1][1] == dst

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            omega_route(6, 0, 1)

    @given(st.sampled_from([4, 8, 16]), st.data())
    @settings(max_examples=30, deadline=None)
    def test_unique_path_property(self, n, data):
        """A banyan has exactly one path per (src, dst): routing twice
        gives the same hops."""
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(st.integers(0, n - 1))
        assert omega_route(n, src, dst) == omega_route(n, src, dst)


class TestNetwork:
    def test_switch_count_formula(self):
        assert BanyanNetwork(8).switch_count == 12  # 4 * 3
        assert BanyanNetwork(64).switch_count == 192  # 32 * 6

    def test_linear_vs_crossbar_cost(self):
        for n in (8, 16, 64):
            assert BanyanNetwork(n).switch_count < crossbar_cost(n)["switches"]

    def test_identity_permutation_one_pass(self):
        net = BanyanNetwork(8)
        assert net.route_permutation(list(range(8))) == 1
        assert net.stats.conflicts == 0

    def test_all_to_one_needs_many_passes(self):
        """n packets to one output serialize completely."""
        net = BanyanNetwork(8)
        passes = net.route_permutation([3] * 8)
        assert passes == 8

    def test_permutation_routes_everyone(self):
        net = BanyanNetwork(16)
        import numpy as np

        perm = list(np.random.default_rng(1).permutation(16))
        passes = net.route_permutation(perm)
        assert net.stats.packets == 16
        assert passes >= 1

    def test_wrong_dest_count(self):
        with pytest.raises(ValueError):
            BanyanNetwork(4).route_permutation([0, 1])

    def test_monte_carlo_blocking(self):
        stats = BanyanNetwork(16).blocking_monte_carlo(trials=30, seed=2)
        # random permutations block sometimes but never catastrophically
        assert 1.0 <= stats["mean_passes"] <= 6.0
        assert stats["switches"] == 32

    def test_blocking_grows_with_size(self):
        small = BanyanNetwork(4).blocking_monte_carlo(trials=40, seed=3)
        big = BanyanNetwork(32).blocking_monte_carlo(trials=40, seed=3)
        assert big["mean_passes"] >= small["mean_passes"]
