"""Tests for DAG list scheduling."""

import pytest
from hypothesis import given, strategies as st

from repro.machine.schedule import ScheduleResult, TaskGraph, list_schedule


def chain_graph(n, dur=1.0):
    g = TaskGraph()
    for i in range(n):
        g.add_task(i, dur)
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def fork_join(width, dur=1.0):
    g = TaskGraph()
    g.add_task("src", dur)
    g.add_task("sink", dur)
    for i in range(width):
        g.add_task(f"m{i}", dur)
        g.add_edge("src", f"m{i}")
        g.add_edge(f"m{i}", "sink")
    return g


class TestGraph:
    def test_total_work(self):
        g = chain_graph(4, 2.0)
        assert g.total_work == 8.0

    def test_critical_path_chain(self):
        assert chain_graph(5).critical_path() == 5.0

    def test_critical_path_fork_join(self):
        assert fork_join(8).critical_path() == 3.0

    def test_cycle_detected(self):
        g = TaskGraph()
        g.add_task("a", 1)
        g.add_task("b", 1)
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with pytest.raises(ValueError):
            g.critical_path()

    def test_duplicate_task_rejected(self):
        g = TaskGraph()
        g.add_task("a", 1)
        with pytest.raises(ValueError):
            g.add_task("a", 2)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            TaskGraph().add_task("a", -1)

    def test_edge_endpoints_checked(self):
        g = TaskGraph()
        g.add_task("a", 1)
        with pytest.raises(KeyError):
            g.add_edge("a", "ghost")


class TestScheduling:
    def test_chain_cannot_parallelize(self):
        g = chain_graph(6)
        r = list_schedule(g, 4)
        assert r.makespan == 6.0
        assert r.speedup == 1.0

    def test_fork_join_parallelizes(self):
        g = fork_join(8)
        r1 = list_schedule(g, 1)
        r8 = list_schedule(g, 8)
        assert r1.makespan == 10.0
        assert r8.makespan == 3.0  # = critical path

    def test_precedence_respected(self):
        g = fork_join(4)
        r = list_schedule(g, 2)
        for p, s in g.edges:
            assert r.start_times[s] >= r.start_times[p] + g.durations[p]

    def test_no_processor_overlap(self):
        g = fork_join(6)
        r = list_schedule(g, 3)
        by_proc = {}
        for t, pix in r.assignment.items():
            by_proc.setdefault(pix, []).append(
                (r.start_times[t], r.start_times[t] + g.durations[t])
            )
        for spans in by_proc.values():
            spans.sort()
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert s2 >= e1

    def test_invalid_processors(self):
        with pytest.raises(ValueError):
            list_schedule(chain_graph(2), 0)

    def test_efficiency_bounds(self):
        g = fork_join(8)
        r = list_schedule(g, 4)
        assert 0 < r.efficiency <= 1.0


class TestGrahamBound:
    @given(st.integers(1, 24), st.integers(1, 6), st.integers(0, 50))
    def test_within_graham_bound(self, n_tasks, processors, n_edges):
        """List scheduling is within 2 - 1/m of optimal; optimal is at
        least max(critical path, work/m)."""
        import numpy as np

        rng = np.random.default_rng(n_tasks * 100 + processors * 7 + n_edges)
        g = TaskGraph()
        for i in range(n_tasks):
            g.add_task(i, float(rng.integers(1, 10)))
        for _ in range(n_edges):
            a, b = sorted(rng.choice(n_tasks, size=2, replace=False)) if n_tasks > 1 else (0, 0)
            if a != b:
                g.add_edge(int(a), int(b))
        r = list_schedule(g, processors)
        lower = max(g.critical_path(), g.total_work / processors)
        assert r.makespan >= lower - 1e-9
        assert r.makespan <= lower * (2 - 1 / processors) + 1e-9

    def test_makespan_never_worse_with_more_processors_on_forkjoin(self):
        g = fork_join(12)
        m = [list_schedule(g, p).makespan for p in (1, 2, 4, 12)]
        assert m == sorted(m, reverse=True)
