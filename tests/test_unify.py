"""Unit tests for unification and the trailed binding store."""

import pytest

from repro.logic import (
    Atom,
    Bindings,
    Int,
    Struct,
    UnifyStats,
    Var,
    occurs_in,
    rename_apart,
    unify,
)


def test_atom_unifies_with_itself():
    b = Bindings()
    assert unify(Atom("a"), Atom("a"), b)
    assert len(b) == 0


def test_atom_clash_fails():
    assert not unify(Atom("a"), Atom("b"), Bindings())


def test_var_binds_to_atom():
    b = Bindings()
    x = Var("X")
    assert unify(x, Atom("a"), b)
    assert b.walk(x) == Atom("a")


def test_symmetric_binding():
    b = Bindings()
    x = Var("X")
    assert unify(Atom("a"), x, b)
    assert b.walk(x) == Atom("a")


def test_var_var_aliasing():
    b = Bindings()
    x, y = Var("X"), Var("Y")
    assert unify(x, y, b)
    assert unify(x, Atom("k"), b)
    assert b.walk(y) == Atom("k")


def test_struct_recursive():
    b = Bindings()
    x, y = Var("X"), Var("Y")
    t1 = Struct("f", (x, Atom("b")))
    t2 = Struct("f", (Atom("a"), y))
    assert unify(t1, t2, b)
    assert b.walk(x) == Atom("a")
    assert b.walk(y) == Atom("b")


def test_arity_mismatch_fails():
    t1 = Struct("f", (Atom("a"),))
    t2 = Struct("f", (Atom("a"), Atom("b")))
    assert not unify(t1, t2, Bindings())


def test_functor_mismatch_fails():
    assert not unify(
        Struct("f", (Atom("a"),)), Struct("g", (Atom("a"),)), Bindings()
    )


def test_int_unification():
    b = Bindings()
    assert unify(Int(3), Int(3), b)
    assert not unify(Int(3), Int(4), b)


def test_occurs_check_off_allows_cyclic():
    b = Bindings()
    x = Var("X")
    assert unify(x, Struct("f", (x,)), b)  # standard Prolog behaviour


def test_occurs_check_on_rejects_cyclic():
    b = Bindings()
    x = Var("X")
    assert not unify(x, Struct("f", (x,)), b, occurs_check=True)


def test_occurs_in_through_bindings():
    b = Bindings()
    x, y = Var("X"), Var("Y")
    unify(y, Struct("g", (x,)), b)
    assert occurs_in(x, y, b)


def test_trail_undo():
    b = Bindings()
    x, y = Var("X"), Var("Y")
    unify(x, Atom("a"), b)
    mark = b.mark()
    unify(y, Atom("b"), b)
    assert y in b
    b.undo_to(mark)
    assert y not in b
    assert x in b


def test_undo_restores_failed_partial_unification():
    b = Bindings()
    x, y = Var("X"), Var("Y")
    t1 = Struct("f", (x, y, Atom("clash")))
    t2 = Struct("f", (Atom("a"), Atom("b"), Atom("other")))
    mark = b.mark()
    assert not unify(t1, t2, b)
    b.undo_to(mark)
    assert len(b) == 0


def test_resolve_rebuilds():
    b = Bindings()
    x = Var("X")
    unify(x, Struct("f", (Atom("a"),)), b)
    t = Struct("g", (x, x))
    resolved = b.resolve(t)
    assert resolved == Struct(
        "g", (Struct("f", (Atom("a"),)), Struct("f", (Atom("a"),)))
    )


def test_resolve_deep_chain():
    b = Bindings()
    x, y, z = Var("X"), Var("Y"), Var("Z")
    unify(x, y, b)
    unify(y, z, b)
    unify(z, Atom("end"), b)
    assert b.resolve(x) == Atom("end")


def test_double_bind_raises():
    b = Bindings()
    x = Var("X")
    b.bind(x, Atom("a"))
    with pytest.raises(ValueError):
        b.bind(x, Atom("b"))


def test_bindings_copy_is_independent():
    b = Bindings()
    x = Var("X")
    unify(x, Atom("a"), b)
    c = b.copy()
    y = Var("Y")
    unify(y, Atom("b"), c)
    assert y not in b
    assert x in c


def test_stats_counters():
    stats = UnifyStats()
    b = Bindings(stats)
    unify(Var("X"), Atom("a"), b)
    unify(Atom("a"), Atom("b"), b)
    assert stats.attempts == 2
    assert stats.successes == 1
    assert stats.bind_ops == 1


def test_rename_apart_fresh_and_consistent():
    x, y = Var("X"), Var("Y")
    t = Struct("f", (x, y, x))
    mapping = {}
    renamed = rename_apart(t, mapping)
    assert isinstance(renamed, Struct)
    rx, ry, rx2 = renamed.args
    assert rx == rx2  # sharing preserved
    assert rx != x and ry != y  # fresh ids
    assert rx.name == "X"  # display name kept


def test_rename_apart_shared_mapping_across_terms():
    x = Var("X")
    mapping = {}
    a = rename_apart(Struct("f", (x,)), mapping)
    b = rename_apart(Struct("g", (x,)), mapping)
    assert a.args[0] == b.args[0]


def test_unify_deep_wide_terms():
    b = Bindings()
    n = 200
    vars_ = [Var(f"V{i}") for i in range(n)]
    t1 = Struct("f", tuple(vars_))
    t2 = Struct("f", tuple(Int(i) for i in range(n)))
    assert unify(t1, t2, b)
    assert b.walk(vars_[150]) == Int(150)
