"""Tests for Batcher's sorting network (§3, reference [1])."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.machine.sorting import batcher_network, min_tree_cost


class TestConstruction:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16])
    def test_power_of_two_sizes(self, n):
        net = batcher_network(n)
        assert net.size == n

    def test_non_power_rounds_up(self):
        assert batcher_network(5).size == 8
        assert batcher_network(9).size == 16

    def test_comparator_count_formula(self):
        """Odd-even mergesort uses (k^2 - k + 4)·2^(k-2) - 1 comparators
        for 2^k inputs; spot-check known values."""
        known = {2: 1, 4: 5, 8: 19, 16: 63}
        for size, count in known.items():
            assert batcher_network(size).comparator_count == count

    def test_depth_is_k_times_k_plus_1_over_2(self):
        """Gate depth of odd-even mergesort is k(k+1)/2 for 2^k inputs."""
        for k in range(1, 6):
            net = batcher_network(2**k)
            assert net.depth == k * (k + 1) // 2

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            batcher_network(0)


class TestSorting:
    @given(st.lists(st.integers(-100, 100), min_size=0, max_size=16))
    def test_sorts_everything(self, values):
        net = batcher_network(max(1, len(values)))
        assert net.sort(values) == sorted(values)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=32))
    def test_sorts_floats(self, values):
        net = batcher_network(len(values))
        assert net.sort(values) == sorted(values)

    def test_oversized_input_rejected(self):
        net = batcher_network(4)
        with pytest.raises(ValueError):
            net.sort([1, 2, 3, 4, 5])

    def test_padding_with_short_input(self):
        net = batcher_network(8)
        assert net.sort([3, 1, 2]) == [1, 2, 3]

    @given(
        st.lists(st.integers(0, 1000), min_size=1, max_size=16),
        st.integers(1, 16),
    )
    def test_select_lowest(self, values, n):
        net = batcher_network(len(values))
        n = min(n, len(values))
        assert net.select_lowest(values, n) == sorted(values)[:n]


class TestStages:
    def test_stages_partition_comparators(self):
        net = batcher_network(8)
        flat = [c for stage in net.stages for c in stage]
        assert sorted(flat) == sorted(net.comparators)

    def test_no_wire_conflicts_within_stage(self):
        net = batcher_network(16)
        for stage in net.stages:
            wires = [w for c in stage for w in c]
            assert len(wires) == len(set(wires))


class TestCostComparison:
    def test_sorting_network_costlier_than_min_tree(self):
        """The §3→§6 design decision: full sorting costs O(n log² n)
        comparators vs the min tree's n-1."""
        for n in (8, 16, 32, 64):
            net = batcher_network(n)
            tree = min_tree_cost(n)
            assert net.comparator_count > tree["comparators"]
            assert net.depth >= tree["depth"]

    def test_ratio_grows(self):
        r8 = batcher_network(8).comparator_count / min_tree_cost(8)["comparators"]
        r64 = batcher_network(64).comparator_count / min_tree_cost(64)["comparators"]
        assert r64 > r8
