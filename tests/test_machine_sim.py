"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.machine import (
    Acquire,
    Resource,
    Signal,
    SimError,
    Simulator,
    Timeout,
    WaitSignal,
)


class TestTimeouts:
    def test_time_advances(self):
        sim = Simulator()
        log = []

        def proc():
            yield Timeout(5)
            log.append(sim.now)
            yield Timeout(3)
            log.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert log == [5, 8]
        assert sim.now == 8

    def test_zero_delay_allowed(self):
        sim = Simulator()

        def proc():
            yield Timeout(0)
            return "done"

        p = sim.spawn(proc())
        sim.run()
        assert p.result == "done"

    def test_negative_delay_rejected(self):
        with pytest.raises(SimError):
            Timeout(-1)

    def test_simultaneous_events_run_in_schedule_order(self):
        sim = Simulator()
        order = []

        def mk(name):
            def proc():
                yield Timeout(10)
                order.append(name)

            return proc()

        for n in ("a", "b", "c"):
            sim.spawn(mk(n))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_run_until(self):
        sim = Simulator()

        def proc():
            yield Timeout(100)

        sim.spawn(proc())
        now = sim.run(until=40)
        assert now == 40
        sim.run()
        assert sim.now == 100

    def test_interleaving(self):
        sim = Simulator()
        log = []

        def fast():
            for _ in range(3):
                yield Timeout(2)
                log.append(("fast", sim.now))

        def slow():
            yield Timeout(5)
            log.append(("slow", sim.now))

        sim.spawn(fast())
        sim.spawn(slow())
        sim.run()
        assert log == [("fast", 2), ("fast", 4), ("slow", 5), ("fast", 6)]


class TestResources:
    def test_mutual_exclusion(self):
        sim = Simulator()
        res = sim.resource(1, "cpu")
        spans = []

        def proc(name, hold):
            yield Acquire(res)
            start = sim.now
            yield Timeout(hold)
            res.release()
            spans.append((name, start, sim.now))

        sim.spawn(proc("a", 10))
        sim.spawn(proc("b", 5))
        sim.run()
        # b waits for a: no overlap
        assert spans == [("a", 0, 10), ("b", 10, 15)]

    def test_capacity_two_overlaps(self):
        sim = Simulator()
        res = sim.resource(2, "duo")
        done = []

        def proc(name):
            yield Acquire(res)
            yield Timeout(10)
            res.release()
            done.append((name, sim.now))

        for n in ("a", "b", "c"):
            sim.spawn(proc(n))
        sim.run()
        assert done == [("a", 10), ("b", 10), ("c", 20)]

    def test_fifo_ordering(self):
        sim = Simulator()
        res = sim.resource(1)
        order = []

        def holder():
            yield Acquire(res)
            yield Timeout(10)
            res.release()

        def waiter(name, arrive):
            yield Timeout(arrive)
            yield Acquire(res)
            order.append(name)
            res.release()

        sim.spawn(holder())
        sim.spawn(waiter("late", 5))
        sim.spawn(waiter("later", 6))
        sim.run()
        assert order == ["late", "later"]

    def test_release_idle_raises(self):
        sim = Simulator()
        res = sim.resource(1)
        with pytest.raises(SimError):
            res.release()

    def test_utilization(self):
        sim = Simulator()
        res = sim.resource(1)

        def proc():
            yield Acquire(res)
            yield Timeout(50)
            res.release()
            yield Timeout(50)

        sim.spawn(proc())
        sim.run()
        assert res.utilization() == pytest.approx(0.5)

    def test_bad_capacity(self):
        sim = Simulator()
        with pytest.raises(SimError):
            sim.resource(0)


class TestSignals:
    def test_broadcast_wakes_all(self):
        sim = Simulator()
        sig = sim.signal("go")
        woken = []

        def waiter(name):
            payload = yield WaitSignal(sig)
            woken.append((name, payload, sim.now))

        def firer():
            yield Timeout(7)
            sig.fire("payload!")

        sim.spawn(waiter("a"))
        sim.spawn(waiter("b"))
        sim.spawn(firer())
        sim.run()
        assert woken == [("a", "payload!", 7), ("b", "payload!", 7)]

    def test_fire_with_no_waiters(self):
        sim = Simulator()
        sig = sim.signal()
        assert sig.fire() == 0

    def test_waiter_after_fire_blocks_forever(self):
        sim = Simulator()
        sig = sim.signal()
        reached = []

        def late():
            yield Timeout(1)
            yield WaitSignal(sig)
            reached.append(True)  # pragma: no cover

        def early():
            sig.fire()
            yield Timeout(0)

        sim.spawn(early())
        p = sim.spawn(late())
        sim.run()
        assert reached == []
        assert p.alive  # still blocked — signals are not latched


class TestProtocol:
    def test_bad_yield_rejected(self):
        sim = Simulator()

        def proc():
            yield "nonsense"

        sim.spawn(proc())
        with pytest.raises(SimError):
            sim.run()

    def test_max_events_guard(self):
        sim = Simulator()

        def spinner():
            while True:
                yield Timeout(0)

        sim.spawn(spinner())
        with pytest.raises(SimError):
            sim.run(max_events=1000)

    def test_process_result_captured(self):
        sim = Simulator()

        def proc():
            yield Timeout(1)
            return 42

        p = sim.spawn(proc())
        sim.run()
        assert p.result == 42
        assert not p.alive
