"""Unit tests for the tokenizer and parser."""

import pytest

from repro.logic import (
    Atom,
    Clause,
    Int,
    ParseError,
    Struct,
    Var,
    format_clause,
    parse_clause,
    parse_program,
    parse_query,
    parse_term,
    tokenize,
)


class TestTokenizer:
    def test_simple_fact(self):
        toks = tokenize("f(curt, elain).")
        kinds = [t.kind for t in toks]
        assert kinds == ["atom", "punct", "atom", "punct", "atom", "punct", "punct", "end"]

    def test_variables_upper_and_underscore(self):
        toks = tokenize("X _y Foo _")
        assert all(t.kind == "var" for t in toks[:-1])

    def test_line_comment(self):
        toks = tokenize("a. % comment here\nb.")
        texts = [t.text for t in toks if t.kind == "atom"]
        assert texts == ["a", "b"]

    def test_block_comment(self):
        toks = tokenize("a. /* multi\nline */ b.")
        texts = [t.text for t in toks if t.kind == "atom"]
        assert texts == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError):
            tokenize("a. /* oops")

    def test_quoted_atom(self):
        toks = tokenize("'hello world'")
        assert toks[0].kind == "atom"
        assert toks[0].text == "hello world"

    def test_unterminated_quote(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_multichar_operators(self):
        toks = tokenize(":- ?- =< >= =:= =\\= \\= == \\==")
        texts = [t.text for t in toks if t.kind == "punct"]
        assert texts == [":-", "?-", "=<", ">=", "=:=", "=\\=", "\\=", "==", "\\=="]

    def test_line_col_tracking(self):
        toks = tokenize("a.\n  b.")
        b_tok = [t for t in toks if t.text == "b"][0]
        assert (b_tok.line, b_tok.col) == (2, 3)

    def test_unexpected_char(self):
        with pytest.raises(ParseError):
            tokenize("a @ b")


class TestTermParsing:
    def test_atom(self):
        assert parse_term("sam") == Atom("sam")

    def test_int(self):
        assert parse_term("42") == Int(42)

    def test_negative_int(self):
        assert parse_term("-7") == Int(-7)

    def test_var(self):
        t = parse_term("X")
        assert isinstance(t, Var) and t.name == "X"

    def test_compound(self):
        t = parse_term("f(a, B, 3)")
        assert isinstance(t, Struct)
        assert t.functor == "f" and t.arity == 3
        assert t.args[0] == Atom("a")
        assert isinstance(t.args[1], Var)
        assert t.args[2] == Int(3)

    def test_nested_compound(self):
        t = parse_term("f(g(h(x)))")
        assert str(t) == "f(g(h(x)))"

    def test_var_sharing_within_clause(self):
        cl = parse_clause("p(X, X).")
        a0, a1 = cl.head.args
        assert a0 == a1

    def test_anonymous_vars_distinct(self):
        cl = parse_clause("p(_, _).")
        a0, a1 = cl.head.args
        assert a0 != a1

    def test_list_literal(self):
        t = parse_term("[1, 2, 3]")
        assert str(t) == "[1, 2, 3]"

    def test_list_with_tail(self):
        t = parse_term("[H|T]")
        assert isinstance(t, Struct) and t.functor == "."

    def test_empty_list(self):
        assert parse_term("[]") == Atom("[]")

    def test_arith_precedence(self):
        t = parse_term("1 + 2 * 3")
        assert str(t) == "+(1, *(2, 3))"

    def test_left_assoc_subtraction(self):
        t = parse_term("10 - 3 - 2")
        assert str(t) == "-(-(10, 3), 2)"

    def test_parentheses_override(self):
        t = parse_term("(1 + 2) * 3")
        assert str(t) == "*(+(1, 2), 3)"

    def test_comparison_operator(self):
        t = parse_term("X =< Y + 1")
        assert isinstance(t, Struct) and t.functor == "=<"

    def test_is_operator(self):
        t = parse_term("X is Y mod 2")
        assert t.functor == "is"
        assert t.args[1].functor == "mod"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_term("f(a) b")


class TestClauseParsing:
    def test_fact(self):
        cl = parse_clause("f(curt, elain).")
        assert cl.is_fact
        assert cl.indicator == ("f", 2)

    def test_rule(self):
        cl = parse_clause("gf(X,Z) :- f(X,Y), f(Y,Z).")
        assert not cl.is_fact
        assert len(cl.body) == 2

    def test_head_body_share_vars(self):
        cl = parse_clause("p(X) :- q(X).")
        assert cl.head.args[0] == cl.body[0].args[0]

    def test_missing_period(self):
        with pytest.raises(ParseError):
            parse_clause("f(a)")

    def test_atom_fact(self):
        cl = parse_clause("go.")
        assert cl.head == Atom("go")

    def test_cut_in_body(self):
        cl = parse_clause("p(X) :- q(X), !, r(X).")
        assert cl.body[1] == Atom("!")

    def test_format_roundtrip_fact(self):
        src = "f(curt, elain)."
        assert format_clause(parse_clause(src)) == src

    def test_format_roundtrip_rule(self):
        src = "gf(X, Z) :- f(X, Y), f(Y, Z)."
        assert format_clause(parse_clause(src)) == src


class TestQueryParsing:
    def test_with_prefix(self):
        goals = parse_query("?- gf(sam, G).")
        assert len(goals) == 1

    def test_without_prefix(self):
        goals = parse_query("f(X,Y), m(Y,Z)")
        assert len(goals) == 2

    def test_shared_vars_across_goals(self):
        g1, g2 = parse_query("f(X,Y), m(Y,Z)")
        assert g1.args[1] == g2.args[0]


class TestProgramParsing:
    def test_figure1_program(self):
        from repro.workloads import FIGURE1_SOURCE

        clauses = parse_program(FIGURE1_SOURCE)
        assert len(clauses) == 12  # 2 rules + 10 facts
        facts = [c for c in clauses if c.is_fact]
        assert len(facts) == 10

    def test_empty_program(self):
        assert parse_program("") == []

    def test_comments_only(self):
        assert parse_program("% nothing\n/* here */") == []

    def test_multiple_clauses_with_comments(self):
        clauses = parse_program("a. % one\nb :- a. /* two */\nc.")
        assert len(clauses) == 3


class TestParserFuzz:
    """The parser must never hang or raise anything but ParseError."""

    from hypothesis import given, settings, strategies as st

    @given(st.text(max_size=80))
    @settings(max_examples=120, deadline=None)
    def test_tokenize_total(self, text):
        try:
            toks = tokenize(text)
            assert toks[-1].kind == "end"
        except ParseError:
            pass

    @given(st.text(alphabet="abXY,()[]|.:- 123'%\\+=<>", max_size=60))
    @settings(max_examples=120, deadline=None)
    def test_parse_program_total(self, text):
        try:
            clauses = parse_program(text)
            assert isinstance(clauses, list)
        except ParseError:
            pass

    @given(st.text(alphabet="abXY,()123+-*", max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_parse_term_total(self, text):
        try:
            parse_term(text)
        except ParseError:
            pass
