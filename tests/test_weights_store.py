"""Unit tests for the weight store (§5 encodings)."""

import pytest

from repro.ortree import ArcKey
from repro.weights import WeightState, WeightStore


def key(i: int) -> ArcKey:
    return ArcKey("pointer", (0, 0, i))


class TestEncodings:
    def test_unknown_default_is_n_plus_one(self):
        store = WeightStore(n=16, a=16)
        assert store.weight(key(1)) == 17.0
        assert store.state(key(1)) is WeightState.UNKNOWN

    def test_infinity_is_a_times_n(self):
        store = WeightStore(n=16, a=16)
        store.set_infinite(key(1))
        assert store.weight(key(1)) == 256.0
        assert store.is_infinite(key(1))

    def test_ordering_invariant(self):
        """known solution bound N < unknown N+1 < infinity A*N."""
        store = WeightStore(n=10, a=4)
        assert store.n < store.unknown_value < store.infinity_value

    def test_builtin_arcs_are_free(self):
        store = WeightStore()
        bk = ArcKey("builtin", (("is", 2),))
        assert store.weight(bk) == 0.0
        assert store.is_known(bk)
        store.set_known(bk, 5.0)  # ignored
        assert store.weight(bk) == 0.0
        store.set_infinite(bk)  # ignored
        assert store.weight(bk) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WeightStore(n=0)
        with pytest.raises(ValueError):
            WeightStore(n=4, a=1)


class TestWrites:
    def test_set_known(self):
        store = WeightStore(n=8, a=4)
        store.set_known(key(1), 2.5)
        assert store.weight(key(1)) == 2.5
        assert store.is_known(key(1))

    def test_known_clamped_nonnegative(self):
        store = WeightStore()
        store.set_known(key(1), -3.0)
        assert store.weight(key(1)) == 0.0

    def test_forget_returns_to_unknown(self):
        store = WeightStore(n=8, a=4)
        store.set_known(key(1), 1.0)
        store.forget(key(1))
        assert store.is_unknown(key(1))
        assert store.weight(key(1)) == 9.0

    def test_clear(self):
        store = WeightStore()
        store.set_known(key(1), 1.0)
        store.set_infinite(key(2))
        store.clear()
        assert len(store) == 0

    def test_overwrite_infinite_with_known(self):
        store = WeightStore()
        store.set_infinite(key(1))
        store.set_known(key(1), 2.0)
        assert store.is_known(key(1))
        assert store.weight(key(1)) == 2.0


class TestCopies:
    def test_copy_is_independent(self):
        store = WeightStore(n=8, a=4)
        store.set_known(key(1), 1.0)
        local = store.copy()
        local.set_known(key(2), 3.0)
        local.set_infinite(key(1))
        assert store.is_known(key(1))
        assert key(2) not in store
        assert local.is_infinite(key(1))

    def test_copy_preserves_parameters(self):
        store = WeightStore(n=5, a=3)
        c = store.copy()
        assert c.n == 5 and c.a == 3

    def test_snapshot(self):
        store = WeightStore()
        store.set_known(key(1), 1.0)
        snap = store.snapshot()
        store.set_known(key(1), 9.0)
        assert snap[key(1)].value == 1.0

    def test_weight_fn_hook(self):
        store = WeightStore(n=8, a=4)
        store.set_known(key(1), 2.0)
        fn = store.weight_fn()
        assert fn(key(1)) == 2.0
        assert fn(key(99)) == 9.0

    def test_contains_and_keys(self):
        store = WeightStore()
        store.set_known(key(1), 1.0)
        assert key(1) in store
        assert key(2) not in store
        assert list(store.keys()) == [key(1)]

    def test_repr_summary(self):
        store = WeightStore(n=8, a=4)
        store.set_known(key(1), 1.0)
        store.set_infinite(key(2))
        assert "known=1" in repr(store)
        assert "infinite=1" in repr(store)
