"""Failure-injection tests: transient disk faults, starved machines,
pathological weight systems — the system must degrade in latency, never
in answers."""

import pytest

from repro.linkdb import LinkedDatabase
from repro.machine import BLogMachine, MachineConfig
from repro.ortree import OrTree
from repro.spd import Record, SearchProcessor, SemanticPagingDisk, Track
from repro.weights import WeightStore, on_failure, on_success
from repro.workloads import family_program, synthetic_tree


class TestDiskFaults:
    def _sp(self):
        t0 = Track(records=[Record(0, 4, (), ("p", 1))])
        t1 = Track(records=[Record(1, 4, (), ("q", 1))])
        return SearchProcessor(0, [t0, t1])

    def test_fault_costs_extra_revolution(self):
        sp = self._sp()
        clean = sp.load_cylinder(0)
        sp.cached_cylinder = None  # force reload
        sp.inject_fault(0, retries=1)
        faulty = sp.load_cylinder(0)
        assert faulty == clean + sp.costs.revolution_cycles
        assert sp.stats.read_retries == 1

    def test_fault_is_transient(self):
        sp = self._sp()
        sp.inject_fault(0, retries=1)
        sp.load_cylinder(0)
        sp.cached_cylinder = None
        again = sp.load_cylinder(0)
        assert sp.stats.read_retries == 1  # second load clean
        assert again == sp.costs.load_cost(None, 0)

    def test_multiple_retries_accumulate(self):
        sp = self._sp()
        sp.inject_fault(1, retries=3)
        for _ in range(3):
            sp.load_cylinder(1)
            sp.cached_cylinder = None
        assert sp.stats.read_retries == 3

    def test_invalid_retries(self):
        sp = self._sp()
        with pytest.raises(ValueError):
            sp.inject_fault(0, retries=0)

    def test_data_never_corrupted(self):
        sp = self._sp()
        sp.inject_fault(0, retries=2)
        sp.load_cylinder(0)
        assert sp.cache.records[0].block_id == 0

    def test_machine_answers_survive_disk_faults(self, figure1):
        db = LinkedDatabase(figure1)
        disk = SemanticPagingDisk(db, n_sps=2, track_words=64)
        for sp in disk.sps:
            for cyl in range(len(sp.tracks)):
                sp.inject_fault(cyl, retries=2)
        tree = OrTree(figure1, "gf(sam, G)", max_depth=32)
        res = BLogMachine(
            MachineConfig(n_processors=2, tasks_per_processor=2), disk=disk
        ).run(tree)
        assert sorted(str(a["G"]) for a in res.answers) == ["den", "doug"]
        retries = sum(sp.stats.read_retries for sp in disk.sps)
        assert retries > 0

    def test_faults_only_add_latency(self, figure1):
        def run(faulty: bool) -> float:
            db = LinkedDatabase(figure1)
            disk = SemanticPagingDisk(db, n_sps=2, track_words=64)
            if faulty:
                for sp in disk.sps:
                    for cyl in range(len(sp.tracks)):
                        sp.inject_fault(cyl, retries=3)
            tree = OrTree(figure1, "gf(sam, G)", max_depth=32)
            cfg = MachineConfig(n_processors=1, tasks_per_processor=1)
            return BLogMachine(cfg, disk=disk).run(tree).makespan

        assert run(faulty=True) > run(faulty=False)


class TestStarvedMachine:
    def test_more_tasks_than_work(self):
        """64 tasks over a 3-expansion problem: everyone terminates."""
        p = family_program()
        tree = OrTree(p, "f(sam, Y)", max_depth=8)
        cfg = MachineConfig(n_processors=8, tasks_per_processor=8)
        res = BLogMachine(cfg).run(tree)
        assert len(res.answers) == 1

    def test_zero_solutions_terminates(self):
        p = family_program()
        tree = OrTree(p, "gf(john, G)", max_depth=8)
        res = BLogMachine(MachineConfig(n_processors=4)).run(tree)
        assert res.answers == []
        assert res.makespan > 0

    def test_expansion_budget_halts_runaway(self):
        from repro.logic import Program

        p = Program.from_source("b(X) :- b(X).\nb(X) :- b(X).\nb(leaf).")
        tree = OrTree(p, "b(W)", max_depth=64)
        cfg = MachineConfig(n_processors=2, max_expansions=50)
        res = BLogMachine(cfg).run(tree)
        assert res.expansions <= 60  # budget + in-flight slack


class TestPathologicalWeights:
    def test_contradictory_updates_never_crash(self):
        """Hammer a store with conflicting success/failure updates on
        overlapping chains; invariants (non-negative, encodings ordered)
        must hold throughout."""
        import numpy as np

        from repro.ortree import ArcKey, OrArc

        rng = np.random.default_rng(4)
        store = WeightStore(n=8, a=16)
        keys = [ArcKey("pointer", (0, 0, i)) for i in range(6)]
        for _ in range(200):
            length = int(rng.integers(1, 5))
            chain_keys = rng.choice(len(keys), size=length, replace=False)
            chain = [
                OrArc(parent=i, child=i + 1, key=keys[k], weight=0.0)
                for i, k in enumerate(chain_keys)
            ]
            if rng.random() < 0.5:
                on_success(store, chain)
            else:
                on_failure(store, chain)
            for k in keys:
                w = store.weight(k)
                assert w >= 0.0
                assert w <= store.infinity_value

    def test_engine_completes_with_poisoned_store(self, figure1):
        """Every pointer pre-marked infinite: search still finds all
        answers (infinity is a finite encoding, not a cutoff)."""
        from repro.core import BLogConfig, BLogEngine
        from repro.ortree import ArcKey

        store = WeightStore(n=8, a=16)
        for caller in range(-1, 12):
            for lit in range(3):
                for callee in range(12):
                    store.set_infinite(ArcKey("pointer", (caller, lit, callee)))
        eng = BLogEngine(figure1, BLogConfig(n=8, a=16), global_store=store)
        res = eng.query("gf(sam, G)", update_weights=False)
        assert sorted(str(a["G"]) for a in res.answers) == ["den", "doug"]
