"""Cross-module integration tests: every execution mechanism agrees
with the Prolog baseline on a corpus of programs, and the learned
weights converge toward the §4 theory."""

import pytest

from repro.core import BLogConfig, BLogEngine, or_parallel_solve
from repro.linkdb import LinkedDatabase
from repro.logic import Program, Solver
from repro.machine import BLogMachine, MachineConfig
from repro.ortree import OrTree, run_strategy
from repro.spd import SemanticPagingDisk
from repro.weights import WeightStore, solve_weights, store_from_theory
from repro.workloads import (
    family_program,
    grid_program,
    map_coloring_program,
    random_digraph_program,
    scaled_family,
    synthetic_tree,
)

CORPUS = []


def _corpus():
    if CORPUS:
        return CORPUS
    fam = scaled_family(4, 2, 2, seed=11)
    CORPUS.extend(
        [
            (family_program(), "gf(sam, G)", "G"),
            (family_program(), "gf(curt, G)", "G"),
            (fam.program, f"anc({fam.roots[0]}, D)", "D"),
            (synthetic_tree(3, 3, 0.34, seed=12).program, "l0(W)", "W"),
            (random_digraph_program(10, 0.25, seed=13).program, "path(n0, Y)", "Y"),
            (grid_program(3, 3).program, "path(c0_0, Y)", "Y"),
        ]
    )
    return CORPUS


def baseline_set(program, query, var):
    return sorted(
        str(s[var]) for s in Solver(program, max_depth=64).solve_all(query)
    )


class TestAllMechanismsAgree:
    @pytest.mark.parametrize("ix", range(6))
    def test_engine_matches_prolog(self, ix):
        program, query, var = _corpus()[ix]
        expected = baseline_set(program, query, var)
        eng = BLogEngine(program, BLogConfig(max_depth=64))
        got = sorted(str(a[var]) for a in eng.query(query).answers)
        assert got == expected

    @pytest.mark.parametrize("ix", range(6))
    def test_strategies_match_prolog(self, ix):
        program, query, var = _corpus()[ix]
        expected = baseline_set(program, query, var)
        for name in ("depth-first", "breadth-first", "best-first"):
            tree = OrTree(program, query, max_depth=64)
            res = run_strategy(name, tree)
            got = sorted(
                str(tree.solution_answer(s)[var]) for s in res.solutions
            )
            assert got == expected, name

    @pytest.mark.parametrize("ix", [0, 2, 3])
    def test_machine_matches_prolog(self, ix):
        program, query, var = _corpus()[ix]
        expected = baseline_set(program, query, var)
        tree = OrTree(program, query, max_depth=64)
        res = BLogMachine(MachineConfig(n_processors=3)).run(tree)
        got = sorted(str(a[var]) for a in res.answers)
        assert got == expected

    @pytest.mark.parametrize("ix", [0, 3])
    def test_or_parallel_matches_prolog(self, ix):
        program, query, var = _corpus()[ix]
        expected = baseline_set(program, query, var)
        par = or_parallel_solve(program, query, processes=2, max_depth=64)
        got = sorted(a[var] for a in par.answers)
        assert got == expected


class TestFullStack:
    """Engine + linked db + SPD + machine, end to end."""

    def test_machine_with_disk_and_learning(self):
        fam = scaled_family(4, 2, 2, seed=14)
        query = f"anc({fam.roots[0]}, D)"
        expected = baseline_set(fam.program, query, "D")
        store = WeightStore(n=16, a=16)
        db = LinkedDatabase(fam.program, store)
        disk = SemanticPagingDisk(db, n_sps=2, track_words=256)
        cfg = MachineConfig(n_processors=4, tasks_per_processor=2)
        tree = OrTree(fam.program, query, weight_fn=store.weight_fn(), max_depth=64)
        res = BLogMachine(cfg, disk=disk, store=store).run(tree)
        assert sorted(str(a["D"]) for a in res.answers) == expected
        assert res.disk_cycles > 0
        assert len(store) > 0

    def test_second_machine_run_benefits_from_weights(self):
        wl = synthetic_tree(branching=4, depth=4, dead_fraction=0.5, seed=15)
        store = WeightStore(n=16, a=16)
        cfg = MachineConfig(n_processors=2, max_solutions=1)

        def run():
            tree = OrTree(
                wl.program, wl.query, weight_fn=store.weight_fn(), max_depth=32
            )
            return BLogMachine(cfg, store=store).run(tree)

        cold = run()
        # learn the full tree once
        full_cfg = MachineConfig(n_processors=2)
        tree = OrTree(
            wl.program, wl.query, weight_fn=store.weight_fn(), max_depth=32
        )
        BLogMachine(full_cfg, store=store).run(tree)
        warm = run()
        assert warm.expansions <= cold.expansions


class TestHeuristicVsTheory:
    def test_session_weights_prove_same_bound_structure(self, figure1):
        """After a converged session, the heuristic weights satisfy the
        same qualitative structure as the theoretical solution: solution
        chains sum to N, the failing branch is priced at infinity."""
        eng = BLogEngine(figure1, BLogConfig(n=8, a=16))
        eng.begin_session()
        for _ in range(3):
            eng.query("gf(sam, G)")
        store = eng.store
        tree = OrTree(figure1, "gf(sam, G)", arc_key_policy="pointer")
        tree.expand_all()
        for sol in tree.solutions():
            keys = {
                a.key for a in tree.chain_arcs(sol.nid) if a.key.kind != "builtin"
            }
            total = sum(store.weight(k) for k in keys)
            assert total == pytest.approx(8.0)
        (fail,) = tree.failures()
        fail_keys = [a.key for a in tree.chain_arcs(fail.nid)]
        assert any(store.is_infinite(k) for k in fail_keys)

    def test_theory_store_drives_engine_like_learned_store(self, figure1):
        tree = OrTree(figure1, "gf(sam, G)", arc_key_policy="pointer")
        tree.expand_all()
        theory_store = store_from_theory(solve_weights(tree, target=8.0), n=8.0)
        eng = BLogEngine(
            figure1, BLogConfig(n=8, arc_key_policy="pointer"),
            global_store=theory_store,
        )
        res = eng.query("gf(sam, G)", max_solutions=2, update_weights=False)
        assert res.failures == 0


class TestMapColoringAcrossMechanisms:
    def test_engine_and_solver_agree(self):
        mi = map_coloring_program(colors=["red", "green", "blue"])
        expected = len(
            Solver(mi.program, max_depth=64).solve_all(mi.query)
        )
        eng = BLogEngine(mi.program, BLogConfig(max_depth=64))
        assert len(eng.query(mi.query).answers) == expected
