"""Unit tests for the sequential depth-first engine (Prolog baseline)."""

import pytest

from repro.logic import BuiltinError, Program, Solver, prolog_solutions


class TestFigure1:
    """Section 2's worked execution."""

    def test_all_grandchildren_of_sam(self, figure1):
        values = prolog_solutions(figure1, "gf(sam, G)", var="G")
        assert [str(v) for v in values] == ["den", "doug"]

    def test_first_solution_is_den(self, figure1):
        """Prolog finds den first (figure 1's trace)."""
        values = prolog_solutions(figure1, "gf(sam, G)", var="G", max_solutions=1)
        assert str(values[0]) == "den"

    def test_grandchild_via_mother_rule(self, figure1):
        values = prolog_solutions(figure1, "gf(curt, G)", var="G")
        assert [str(v) for v in values] == ["john"]

    def test_failed_query(self, figure1):
        assert prolog_solutions(figure1, "gf(john, G)") == []

    def test_ground_query_succeeds(self, figure1):
        solver = Solver(figure1)
        assert solver.succeeds("gf(sam, den)")
        assert not solver.succeeds("gf(sam, john)")

    def test_conjunction_query(self, figure1):
        solver = Solver(figure1)
        sols = solver.solve_all("f(sam, Y), f(Y, Z)")
        assert [(str(s["Y"]), str(s["Z"])) for s in sols] == [
            ("larry", "den"),
            ("larry", "doug"),
        ]


class TestListPrograms:
    def test_append_forward(self, append_program):
        sols = prolog_solutions(append_program, "app([1,2], [3], R)", var="R")
        assert [str(s) for s in sols] == ["[1, 2, 3]"]

    def test_append_backward_enumerates_splits(self, append_program):
        solver = Solver(append_program)
        sols = solver.solve_all("app(A, B, [1,2,3])")
        assert len(sols) == 4
        assert str(sols[0]["A"]) == "[]"
        assert str(sols[3]["B"]) == "[]"

    def test_member_via_append(self, append_program):
        append_program.add_source("mem(X, L) :- app(_, [X|_], L).")
        sols = prolog_solutions(append_program, "mem(X, [a,b,c])", var="X")
        assert [str(s) for s in sols] == ["a", "b", "c"]


class TestArithmeticPrograms:
    @pytest.fixture
    def fact_program(self):
        return Program.from_source(
            """
            fact(0, 1).
            fact(N, F) :- N > 0, M is N - 1, fact(M, G), F is N * G.
            """
        )

    def test_factorial(self, fact_program):
        sols = prolog_solutions(fact_program, "fact(6, F)", var="F")
        assert [s.value for s in sols] == [720]

    def test_factorial_zero(self, fact_program):
        sols = prolog_solutions(fact_program, "fact(0, F)", var="F")
        assert [s.value for s in sols] == [1]

    def test_fib(self):
        p = Program.from_source(
            """
            fib(0, 0).
            fib(1, 1).
            fib(N, F) :- N > 1, A is N - 1, B is N - 2,
                         fib(A, FA), fib(B, FB), F is FA + FB.
            """
        )
        sols = prolog_solutions(p, "fib(10, F)", var="F")
        assert [s.value for s in sols] == [55]


class TestCut:
    def test_cut_commits_to_first_clause(self):
        p = Program.from_source(
            """
            max(X, Y, X) :- X >= Y, !.
            max(_, Y, Y).
            """
        )
        sols = prolog_solutions(p, "max(3, 2, M)", var="M")
        assert [s.value for s in sols] == [3]  # without cut there'd be [3, 2]

    def test_cut_prunes_clause_alternatives(self):
        p = Program.from_source(
            """
            p(1) :- !.
            p(2).
            """
        )
        sols = prolog_solutions(p, "p(X)", var="X")
        assert [s.value for s in sols] == [1]

    def test_cut_transparent_to_continuation(self):
        p = Program.from_source(
            """
            q(1). q(2).
            p(X) :- first(_), q(X).
            first(a) :- !.
            first(b).
            """
        )
        sols = prolog_solutions(p, "p(X)", var="X")
        assert [s.value for s in sols] == [1, 2]


class TestDepthBound:
    def test_left_recursion_terminates(self):
        p = Program.from_source(
            """
            loop(X) :- loop(X).
            loop(done).
            """
        )
        solver = Solver(p, max_depth=32)
        sols = solver.solve_all("loop(W)", max_solutions=1)
        assert [str(s["W"]) for s in sols] == ["done"]
        assert solver.stats.depth_cutoffs > 0

    def test_infinite_enumeration_lazily(self):
        p = Program.from_source(
            """
            nat(0).
            nat(s(N)) :- nat(N).
            """
        )
        solver = Solver(p, max_depth=100)
        sols = solver.solve_all("nat(X)", max_solutions=4)
        assert [str(s["X"]) for s in sols] == ["0", "s(0)", "s(s(0))", "s(s(s(0)))"]


class TestStats:
    def test_counters_populated(self, figure1):
        solver = Solver(figure1)
        solver.solve_all("gf(sam, G)")
        assert solver.stats.solutions == 2
        assert solver.stats.resolutions >= 5
        assert solver.stats.inferences >= solver.stats.resolutions

    def test_builtin_calls_counted(self):
        p = Program.from_source("double(X, Y) :- Y is X * 2.")
        solver = Solver(p)
        solver.solve_all("double(3, Y)")
        assert solver.stats.builtin_calls == 1


class TestErrors:
    def test_unbound_goal_raises(self, figure1):
        solver = Solver(figure1)
        with pytest.raises(BuiltinError):
            solver.solve_all("G")

    def test_solution_str(self, figure1):
        solver = Solver(figure1)
        sol = solver.solve_all("gf(sam, G)", max_solutions=1)[0]
        assert str(sol) == "G = den"
        assert "G" in sol

    def test_ground_solution_str(self, figure1):
        solver = Solver(figure1)
        sol = solver.solve_all("gf(sam, den)")[0]
        assert str(sol) == "true"
