"""Tests for the production-rule interpreter (§6)."""

import pytest

from repro.machine import Scoreboard
from repro.machine.interpreter import (
    InterpreterReport,
    compile_expansion,
    simulate_query,
)
from repro.ortree import OrTree
from repro.workloads import family_program, synthetic_tree


class TestCompileExpansion:
    def test_root_expansion_shape(self, figure1):
        tree = OrTree(figure1, "gf(sam, G)")
        ops = compile_expansion(tree, 0)
        kinds = [op.kind for op in ops]
        # 2 gf candidates, both unify, both spawn children
        assert kinds.count("search") == 1
        assert kinds.count("unify") == 2
        assert kinds.count("copy") == 2
        assert kinds[-1] == "select"

    def test_failed_unifications_skip_copy(self, figure1):
        tree = OrTree(figure1, "gf(sam, G)")
        tree.expand(0)
        # child 1: resolvent f(sam,Y), f(Y,Z); f(sam,Y) indexes to one fact
        ops = compile_expansion(tree, 1)
        kinds = [op.kind for op in ops]
        assert kinds.count("unify") == 1  # first-arg indexing filters
        assert kinds.count("copy") == 1

    def test_no_candidates_still_searches(self, figure1):
        tree = OrTree(figure1, "nosuch(a)")
        ops = compile_expansion(tree, 0)
        kinds = [op.kind for op in ops]
        assert kinds == ["search", "select"]

    def test_does_not_mutate_tree(self, figure1):
        tree = OrTree(figure1, "gf(sam, G)")
        compile_expansion(tree, 0)
        assert tree.expansions == 0
        assert len(tree.nodes) == 1

    def test_latency_scales_with_head_size(self):
        from repro.logic import Program

        p = Program.from_source(
            "tiny(a).\nbig(f(g(h(a, b, c), d), e, k(m, n, o))).\n"
        )
        t1 = OrTree(p, "tiny(X)")
        t2 = OrTree(p, "big(X)")
        u1 = [op for op in compile_expansion(t1, 0) if op.kind == "unify"][0]
        u2 = [op for op in compile_expansion(t2, 0) if op.kind == "unify"][0]
        assert u2.latency > u1.latency

    def test_programs_runnable_on_scoreboard(self, figure1):
        tree = OrTree(figure1, "gf(sam, G)")
        sb = Scoreboard()
        stats = sb.run(compile_expansion(tree, 0))
        assert stats.cycles > 0
        assert stats.issued == 6


class TestSimulateQuery:
    def test_whole_query(self, figure1):
        tree = OrTree(figure1, "gf(sam, G)")
        report = simulate_query(tree)
        assert report.answers == 2
        assert report.expansions == 5
        assert report.total_cycles > 0
        assert report.ops_issued > 0

    def test_max_solutions_stops(self, figure1):
        tree = OrTree(figure1, "gf(sam, G)")
        report = simulate_query(tree, max_solutions=1)
        assert report.answers == 1

    def test_utilization_bounds(self, figure1):
        tree = OrTree(figure1, "gf(sam, G)")
        sb = Scoreboard()
        report = simulate_query(tree, scoreboard=sb)
        for kind, u in report.utilization(sb.unit_counts).items():
            assert 0.0 <= u <= 1.0

    def test_more_unify_units_fewer_cycles(self):
        wl = synthetic_tree(branching=6, depth=2, seed=90)

        def cycles(n_units):
            sb = Scoreboard(
                unit_counts={"search": 1, "unify": n_units, "copy": n_units, "select": 1}
            )
            tree = OrTree(wl.program, wl.query, max_depth=16)
            return simulate_query(tree, scoreboard=sb).total_cycles

        assert cycles(4) < cycles(1)

    def test_expansion_budget(self, figure1):
        tree = OrTree(figure1, "gf(sam, G)")
        report = simulate_query(tree, max_expansions=2)
        assert report.expansions <= 2
