"""Tests for the Conery–Kibler AND/OR process model (the [4] baseline)."""

import pytest

from repro.logic import Program, Solver
from repro.ortree.andor import AndOrEvaluator
from repro.workloads import (
    family_program,
    grid_program,
    map_coloring_program,
    scaled_family,
    synthetic_tree,
)


def answer_multiset(result, var):
    return sorted(str(a[var]) for a in result.answers)


def baseline_multiset(program, query, var, max_depth=64):
    return sorted(
        str(s[var]) for s in Solver(program, max_depth=max_depth).solve_all(query)
    )


class TestEquivalenceWithSLD:
    def test_figure1(self, figure1):
        res = AndOrEvaluator(figure1, max_depth=16).run("gf(sam, G)")
        assert answer_multiset(res, "G") == ["den", "doug"]

    def test_conjunction_query(self, figure1):
        res = AndOrEvaluator(figure1, max_depth=16).run("f(sam, Y), f(Y, Z)")
        pairs = sorted((str(a["Y"]), str(a["Z"])) for a in res.answers)
        assert pairs == [("larry", "den"), ("larry", "doug")]

    def test_failed_query(self, figure1):
        res = AndOrEvaluator(figure1, max_depth=16).run("gf(john, G)")
        assert res.answers == []

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_synthetic_trees(self, seed):
        wl = synthetic_tree(3, 3, 0.34, seed=seed)
        base = baseline_multiset(wl.program, wl.query, "W", max_depth=32)
        res = AndOrEvaluator(wl.program, max_depth=32).run(wl.query)
        assert answer_multiset(res, "W") == base

    def test_family_anc(self):
        fam = scaled_family(4, 2, 2, seed=31)
        q = f"anc({fam.roots[0]}, D)"
        base = baseline_multiset(fam.program, q, "D")
        res = AndOrEvaluator(fam.program, max_depth=64).run(q)
        assert answer_multiset(res, "D") == base

    def test_grid_paths(self):
        gi = grid_program(3, 2)
        base = baseline_multiset(gi.program, "path(c0_0, Y)", "Y")
        res = AndOrEvaluator(gi.program, max_depth=32).run("path(c0_0, Y)")
        assert answer_multiset(res, "Y") == base

    def test_ground_query(self, figure1):
        res = AndOrEvaluator(figure1, max_depth=16).run("gf(sam, den)")
        assert len(res.answers) == 1

    def test_builtins_inside(self):
        p = Program.from_source("double(X, Y) :- Y is X * 2.\nsmall(X) :- X < 10.")
        res = AndOrEvaluator(p, max_depth=8).run("double(3, Y)")
        assert answer_multiset(res, "Y") == ["6"]
        assert AndOrEvaluator(p, max_depth=8).run("small(3)").answers
        assert not AndOrEvaluator(p, max_depth=8).run("small(30)").answers


class TestJoinSemantics:
    def test_shared_variable_join_filters(self, figure1):
        """f(sam,Y) x m(Y,Z): the only join key larry has no m facts."""
        res = AndOrEvaluator(figure1, max_depth=16).run("f(sam, Y), m(Y, Z)")
        assert res.answers == []
        assert res.stats.join_work > 0

    def test_independent_goals_full_product(self, figure1):
        res = AndOrEvaluator(figure1, max_depth=16).run("m(peg, A), f(larry, B)")
        assert len(res.answers) == 4  # 2 x 2

    def test_structural_join(self):
        """Partially instantiated structures must unify at the join."""
        p = Program.from_source(
            """
            make(pair(X, b)) :- item(X).
            need(pair(a, Y)) :- tag(Y).
            item(a). item(c).
            tag(b).
            """
        )
        res = AndOrEvaluator(p, max_depth=8).run("make(P), need(P)")
        assert len(res.answers) == 1
        assert str(res.answers[0]["P"]) == "pair(a, b)"


class TestStats:
    def test_node_kinds_counted(self, figure1):
        res = AndOrEvaluator(figure1, max_depth=16).run("gf(sam, G)")
        assert res.stats.or_nodes >= 3
        assert res.stats.and_nodes >= 2

    def test_or_width_is_clause_fanout(self, figure1):
        res = AndOrEvaluator(figure1, max_depth=16).run("f(X, Y)")
        assert res.stats.max_or_width == 6

    def test_and_width_is_body_length(self, figure1):
        res = AndOrEvaluator(figure1, max_depth=16).run("gf(sam, G)")
        assert res.stats.max_and_width == 2

    def test_critical_path_below_sequential(self):
        wl = synthetic_tree(3, 3, seed=33)
        res = AndOrEvaluator(wl.program, max_depth=32).run(wl.query)
        assert 0 < res.stats.critical_path <= res.stats.sequential_work
        assert res.ideal_speedup >= 1.0

    def test_depth_cutoff_counted(self):
        p = Program.from_source("loop(X) :- loop(X).\nloop(done).")
        res = AndOrEvaluator(p, max_depth=8).run("loop(W)")
        assert res.stats.depth_cutoffs > 0
        # the fact-based answer still survives the cut recursion
        assert "done" in answer_multiset(res, "W")

    def test_answer_explosion_guard(self):
        p = Program.from_source("\n".join(f"n({i})." for i in range(12)))
        ev = AndOrEvaluator(p, max_depth=8, max_answers=100)
        with pytest.raises(RuntimeError):
            ev.run("n(A), n(B), n(C)")


class TestColoring:
    def test_map_coloring_count_matches(self):
        mi = map_coloring_program(adjacency=[("a", "b"), ("b", "c")])
        base = len(Solver(mi.program, max_depth=64).solve_all(mi.query))
        res = AndOrEvaluator(mi.program, max_depth=64).run(mi.query)
        assert len(res.answers) == base


class TestTaskGraph:
    def test_recording_off_by_default(self, figure1):
        res = AndOrEvaluator(figure1, max_depth=16).run("gf(sam, G)")
        assert res.task_graph is None

    def test_graph_matches_or_node_count(self, figure1):
        res = AndOrEvaluator(figure1, max_depth=16).run(
            "gf(sam, G)", record_tasks=True
        )
        g = res.task_graph
        assert len(g.durations) == res.stats.or_nodes
        assert g.total_work == float(res.stats.or_nodes)

    def test_graph_is_acyclic_and_schedulable(self, figure1):
        from repro.machine.schedule import list_schedule

        res = AndOrEvaluator(figure1, max_depth=16).run(
            "gf(sam, G)", record_tasks=True
        )
        r = list_schedule(res.task_graph, 2)
        assert r.makespan >= res.task_graph.critical_path()

    def test_finite_machine_between_bounds(self):
        """1-processor makespan = total work; infinite-processor limit =
        critical path; finite machines in between."""
        from repro.machine.schedule import list_schedule

        wl = synthetic_tree(3, 3, seed=84)
        res = AndOrEvaluator(wl.program, max_depth=32).run(
            wl.query, record_tasks=True
        )
        g = res.task_graph
        m1 = list_schedule(g, 1).makespan
        m4 = list_schedule(g, 4).makespan
        m_many = list_schedule(g, len(g.durations)).makespan
        assert m1 == g.total_work
        assert g.critical_path() <= m_many <= m4 <= m1

    def test_answers_identical_with_recording(self, figure1):
        plain = AndOrEvaluator(figure1, max_depth=16).run("gf(sam, G)")
        recorded = AndOrEvaluator(figure1, max_depth=16).run(
            "gf(sam, G)", record_tasks=True
        )
        assert sorted(str(a["G"]) for a in plain.answers) == sorted(
            str(a["G"]) for a in recorded.answers
        )
