"""Tests for the engine-level control constructs: \\+, call/1, findall/3."""

import pytest

from repro.core import BLogConfig, BLogEngine
from repro.logic import Program, Solver, parse_term
from repro.ortree import OrTree, depth_first


@pytest.fixture
def bachelor_program():
    return Program.from_source(
        """
        man(sam). man(larry). man(curt).
        married(curt).
        bachelor(X) :- man(X), \\+ married(X).
        """
    )


class TestNegationSolver:
    def test_negation_filters(self, bachelor_program):
        solver = Solver(bachelor_program)
        got = [str(s["X"]) for s in solver.solve_all("bachelor(X)")]
        assert got == ["sam", "larry"]

    def test_negation_ground_success(self, bachelor_program):
        assert Solver(bachelor_program).succeeds("\\+ married(sam)")

    def test_negation_ground_failure(self, bachelor_program):
        assert not Solver(bachelor_program).succeeds("\\+ married(curt)")

    def test_negation_exports_no_bindings(self, bachelor_program):
        solver = Solver(bachelor_program)
        # \+ man(X) fails (man(X) solvable), leaving X unbound afterwards
        assert not solver.succeeds("\\+ man(X)")

    def test_double_negation(self, bachelor_program):
        assert Solver(bachelor_program).succeeds("\\+ \\+ man(sam)")
        assert not Solver(bachelor_program).succeeds("\\+ \\+ married(sam)")

    def test_negation_of_undefined_predicate(self, bachelor_program):
        assert Solver(bachelor_program).succeeds("\\+ unicorn(sam)")

    def test_parse_precedence(self):
        goal = parse_term("\\+ married(X)")
        assert goal.indicator == ("\\+", 1)


class TestCall:
    def test_call_transparent(self, bachelor_program):
        solver = Solver(bachelor_program)
        got = [str(s["X"]) for s in solver.solve_all("call(man(X))")]
        assert got == ["sam", "larry", "curt"]

    def test_call_in_rule(self):
        p = Program.from_source(
            """
            apply(G) :- call(G).
            fact(yes).
            """
        )
        assert Solver(p).succeeds("apply(fact(yes))")


class TestFindall:
    def test_collects_all(self, bachelor_program):
        solver = Solver(bachelor_program)
        sols = solver.solve_all("findall(X, man(X), L)")
        assert len(sols) == 1
        assert str(sols[0]["L"]) == "[sam, larry, curt]"

    def test_empty_on_no_solutions(self, bachelor_program):
        solver = Solver(bachelor_program)
        sols = solver.solve_all("findall(X, unicorn(X), L)")
        assert str(sols[0]["L"]) == "[]"

    def test_template_instantiation(self, bachelor_program):
        solver = Solver(bachelor_program)
        sols = solver.solve_all("findall(p(X), married(X), L)")
        assert str(sols[0]["L"]) == "[p(curt)]"

    def test_findall_then_continue(self, bachelor_program):
        solver = Solver(bachelor_program)
        sols = solver.solve_all("findall(X, man(X), L), man(Y)")
        assert len(sols) == 3  # Y still enumerates

    def test_findall_check_mode(self, bachelor_program):
        solver = Solver(bachelor_program)
        assert solver.succeeds("findall(X, married(X), [curt])")
        assert not solver.succeeds("findall(X, married(X), [sam])")


class TestControlInOrTree:
    def test_negation_in_tree(self, bachelor_program):
        tree = OrTree(bachelor_program, "bachelor(X)")
        res = depth_first(tree)
        got = sorted(str(tree.solution_answer(s)["X"]) for s in res.solutions)
        assert got == ["larry", "sam"]

    def test_findall_in_tree(self, bachelor_program):
        tree = OrTree(bachelor_program, "findall(X, man(X), L)")
        tree.expand_all()
        sols = tree.solutions()
        assert len(sols) == 1
        assert str(tree.solution_answer(sols[0])["L"]) == "[sam, larry, curt]"

    def test_call_in_tree(self, bachelor_program):
        tree = OrTree(bachelor_program, "call(man(X))")
        tree.expand_all()
        assert len(tree.solutions()) == 3

    def test_engine_with_negation(self, bachelor_program):
        eng = BLogEngine(bachelor_program, BLogConfig(max_depth=32))
        res = eng.query("bachelor(X)")
        assert sorted(str(a["X"]) for a in res.answers) == ["larry", "sam"]

    def test_negation_failure_leaf(self, bachelor_program):
        tree = OrTree(bachelor_program, "\\+ man(sam)")
        tree.expand(0)
        assert tree.root.status.value == "failure"


class TestClosedWorldWorkload:
    def test_set_difference_via_negation(self):
        p = Program.from_source(
            """
            item(a). item(b). item(c). item(d).
            sold(b). sold(d).
            in_stock(X) :- item(X), \\+ sold(X).
            """
        )
        solver = Solver(p)
        got = [str(s["X"]) for s in solver.solve_all("in_stock(X)")]
        assert got == ["a", "c"]

    def test_engine_matches_solver_with_negation(self):
        p = Program.from_source(
            """
            node(a). node(b). node(c).
            edge(a, b).
            isolated(X) :- node(X), \\+ edge(X, _), \\+ edge(_, X).
            """
        )
        expected = {str(s["X"]) for s in Solver(p).solve_all("isolated(X)")}
        eng = BLogEngine(p, BLogConfig(max_depth=32))
        got = {str(a["X"]) for a in eng.query("isolated(X)").answers}
        assert got == expected == {"c"}
