"""Unit tests for the OS-process OR-parallel backend."""

import pytest

from repro.core import or_parallel_solve, or_split
from repro.logic import Solver
from repro.workloads import synthetic_tree


class TestOrSplit:
    def test_figure1_splits_into_two_rules(self, figure1):
        branches = or_split(figure1, "gf(sam, G)")
        assert len(branches) == 2


class TestOrParallelSolve:
    def test_answers_match_sequential(self, figure1):
        seq = {str(s["G"]) for s in Solver(figure1).solve_all("gf(sam, G)")}
        par = or_parallel_solve(figure1, "gf(sam, G)", processes=2)
        assert {a["G"] for a in par.answers} == seq
        assert par.branches == 2

    def test_single_process_fallback(self, figure1):
        par = or_parallel_solve(figure1, "gf(sam, G)", processes=1)
        assert sorted(a["G"] for a in par.answers) == ["den", "doug"]

    def test_failed_query(self, figure1):
        par = or_parallel_solve(figure1, "gf(john, G)", processes=2)
        assert par.answers == []

    def test_immediate_solutions_handled(self, figure1):
        """Fact-resolved branches are solutions before any worker runs."""
        par = or_parallel_solve(figure1, "f(sam, Y)", processes=2)
        assert [a["Y"] for a in par.answers] == ["larry"]

    def test_synthetic_tree_counts(self):
        wl = synthetic_tree(branching=3, depth=3, dead_fraction=0.34, seed=21)
        par = or_parallel_solve(wl.program, wl.query, processes=3)
        assert len(par.answers) == wl.n_solutions

    def test_per_branch_accounting(self, figure1):
        par = or_parallel_solve(figure1, "gf(sam, G)", processes=2)
        assert sum(par.per_branch_solutions) == len(par.answers)

    def test_max_solutions_per_branch(self):
        wl = synthetic_tree(branching=2, depth=3, seed=22)
        par = or_parallel_solve(
            wl.program, wl.query, processes=2, max_solutions_per_branch=1
        )
        assert all(n <= 1 for n in par.per_branch_solutions)


class TestEdgeCases:
    def test_zero_or_alternatives_returns_empty(self, figure1):
        """A root with no matching clauses has nothing to distribute:
        the call answers immediately with an empty result (no pool)."""
        par = or_parallel_solve(figure1, "no_such_pred(X)", processes=4)
        assert par.answers == []
        assert par.branches == 0
        assert par.per_branch_solutions == []

    def test_zero_or_alternatives_single_process(self, figure1):
        par = or_parallel_solve(figure1, "no_such_pred(X)", processes=1)
        assert par.answers == []
        assert par.branches == 0

    def test_unpicklable_term_raises_clear_error(self, figure1):
        from repro.logic.terms import Atom, Struct, fresh_var

        class LocalAtom(Atom):  # local classes cannot be pickled
            pass

        goal = Struct("gf", (LocalAtom("sam"), fresh_var("G")))
        with pytest.raises(ValueError, match="not picklable"):
            or_parallel_solve(figure1, (goal,), processes=2)
