"""Unit tests for the minimum-seeking network and interconnect (§6)."""

import math

import pytest

from repro.machine import Interconnect, MinSeekingNetwork

INF = float("inf")


class TestMinSeeking:
    def test_global_min_tracks_published(self):
        net = MinSeekingNetwork(4)
        net.publish(0, 10.0)
        net.publish(2, 3.0)
        best, owner = net.global_min()
        assert (best, owner) == (3.0, 2)

    def test_all_idle(self):
        net = MinSeekingNetwork(4)
        best, owner = net.global_min()
        assert best == INF and owner is None

    def test_query_latency_log2(self):
        assert MinSeekingNetwork(1).query_latency == 1
        assert MinSeekingNetwork(8).query_latency == 3
        assert MinSeekingNetwork(9).query_latency == 4

    def test_publish_overwrites(self):
        net = MinSeekingNetwork(2)
        net.publish(0, 5.0)
        net.publish(0, 9.0)
        assert net.global_min() == (9.0, 0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            MinSeekingNetwork(0)


class TestMigrationRule:
    """The §6 D-threshold: migrate iff global min < local min - D."""

    def test_migrates_when_gap_exceeds_d(self):
        net = MinSeekingNetwork(2)
        net.publish(1, 2.0)
        migrate, owner = net.should_migrate(local_min=10.0, d=4.0)
        assert migrate and owner == 1

    def test_stays_local_when_gap_small(self):
        net = MinSeekingNetwork(2)
        net.publish(1, 7.0)
        migrate, _ = net.should_migrate(local_min=10.0, d=4.0)
        assert not migrate

    def test_boundary_is_strict(self):
        net = MinSeekingNetwork(2)
        net.publish(1, 6.0)
        migrate, _ = net.should_migrate(local_min=10.0, d=4.0)
        assert not migrate  # 6 is not < 10 - 4

    def test_idle_processor_always_migrates(self):
        net = MinSeekingNetwork(2)
        net.publish(1, 1e9)
        migrate, owner = net.should_migrate(local_min=INF, d=1e12)
        assert migrate and owner == 1

    def test_no_work_anywhere(self):
        net = MinSeekingNetwork(2)
        migrate, owner = net.should_migrate(local_min=INF, d=0.0)
        assert not migrate and owner is None

    def test_d_zero_greedy(self):
        net = MinSeekingNetwork(2)
        net.publish(1, 9.9)
        migrate, _ = net.should_migrate(local_min=10.0, d=0.0)
        assert migrate

    def test_stats_counted(self):
        net = MinSeekingNetwork(2)
        net.publish(1, 1.0)
        net.should_migrate(10.0, 0.0)
        net.should_migrate(1.0, 0.0)
        assert net.stats.migrations_accepted == 1
        assert net.stats.migrations_declined == 1


class TestArbitration:
    def test_lowest_index_wins(self):
        net = MinSeekingNetwork(4)
        assert net.arbitrate([3, 1, 2]) == 1

    def test_empty_requesters(self):
        net = MinSeekingNetwork(4)
        assert net.arbitrate([]) is None

    def test_grants_counted(self):
        net = MinSeekingNetwork(4)
        net.arbitrate([0])
        net.arbitrate([1, 2])
        assert net.stats.grants == 2
        assert net.stats.arbitrations == 2


class TestInterconnect:
    def test_transfer_cost_formula(self):
        ic = Interconnect(packet_setup=8.0, words_per_cycle=2.0)
        assert ic.transfer_cost(10) == 8.0 + 5.0

    def test_transfer_accounts_traffic(self):
        ic = Interconnect()
        ic.transfer(10)
        ic.transfer(20)
        assert ic.stats.transfers == 2
        assert ic.stats.words_moved == 30
        assert ic.stats.transfer_cycles == pytest.approx(
            ic.transfer_cost(10) + ic.transfer_cost(20)
        )

    def test_setup_dominates_small_transfers(self):
        """Packet setup amortizes over words — the reason D exists."""
        ic = Interconnect(packet_setup=100.0, words_per_cycle=10.0)
        small = ic.transfer_cost(1)
        big = ic.transfer_cost(1000)
        assert small > 100.0
        assert big / 1000 < small / 1

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            Interconnect(packet_setup=-1)
        with pytest.raises(ValueError):
            Interconnect(words_per_cycle=0)
