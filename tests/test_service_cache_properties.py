"""Property-based answer-cache tests (seeded random, no extra deps).

Three properties the cache's correctness rests on, each checked over a
few hundred randomly generated cases from a seeded ``random.Random``
(deterministic — a failure reproduces by seed):

1. **Renaming invariance** — a re-ask of the same query under freshly
   renamed variables always hits the cache, and the served bindings
   come back under the *asker's* names with the same values.
2. **No collisions** — structurally distinct queries (different
   functors, constants, arities, or variable-sharing patterns) never
   share a cache key; renamings of the *same* structure always do.
3. **Generation guarding** — every effective weight-store mutation
   (set/forget/clear that changes anything) invalidates dependent
   entries; ineffective operations (forgetting an absent key, clearing
   an empty store, writing a builtin arc) never do.
"""

import random

import pytest

from repro.logic.parser import parse_query
from repro.ortree.tree import ArcKey
from repro.service import AnswerCache, cache_key, canonical_query
from repro.weights.store import WeightStore

# -- random query structures -------------------------------------------------

FUNCTORS = ["p", "q", "edge", "path", "link"]
CONSTANTS = ["a", "b", "c", "sam", "n1"]
VAR_POOL = [
    "X", "Y", "Z", "Who", "G", "Result", "Temp", "A1", "LongVariableName"
]


def random_structure(rng: random.Random) -> tuple:
    """A random conjunction *structure*: goals of (functor, args) where
    each arg is ("const", name) or ("var", slot) — slots index into a
    shared variable numbering, so sharing patterns are part of the
    structure.  The structure tuple itself is the identity two queries
    must share to be cache-equal."""
    n_goals = rng.randint(1, 3)
    n_slots = rng.randint(1, 4)
    goals = []
    for _ in range(n_goals):
        functor = rng.choice(FUNCTORS)
        arity = rng.randint(1, 3)
        args = tuple(
            ("var", rng.randrange(n_slots))
            if rng.random() < 0.6
            else ("const", rng.choice(CONSTANTS))
            for _ in range(arity)
        )
        goals.append((functor, args))
    return tuple(goals)


def render(structure: tuple, names: dict[int, str]) -> str:
    """Render a structure as query text under a slot→name mapping."""
    goals = []
    for functor, args in structure:
        rendered = [
            names[val] if kind == "var" else val for kind, val in args
        ]
        goals.append(f"{functor}({', '.join(rendered)})")
    return ", ".join(goals)


def normalize(structure: tuple) -> tuple:
    """Renumber variable slots in order of first appearance, so two
    specs that differ only in arbitrary slot numbering (and are thus
    alpha-equivalent queries) share one identity."""
    order: dict[int, int] = {}
    out = []
    for functor, args in structure:
        nargs = []
        for kind, val in args:
            if kind == "var":
                if val not in order:
                    order[val] = len(order)
                nargs.append(("var", order[val]))
            else:
                nargs.append(("const", val))
        out.append((functor, tuple(nargs)))
    return tuple(out)


def random_renaming(rng: random.Random, structure: tuple) -> dict[int, str]:
    """Distinct fresh names for every variable slot the structure uses."""
    slots = sorted(
        {val for _, args in structure for kind, val in args if kind == "var"}
    )
    names = rng.sample(VAR_POOL, len(slots))
    return dict(zip(slots, names))


# -- property 1: renaming invariance -----------------------------------------


class TestRenamingInvariance:
    def test_renamed_reasks_always_hit(self):
        """For hundreds of random structures: ask under one renaming,
        re-ask under another — same cache key, and the slot mapping
        recovers the answers under the second asker's names."""
        rng = random.Random(401)
        for case in range(300):
            structure = random_structure(rng)
            first = random_renaming(rng, structure)
            second = random_renaming(rng, structure)
            goals1 = parse_query(render(structure, first))
            goals2 = parse_query(render(structure, second))
            k1 = cache_key("prog", goals1, None)
            k2 = cache_key("prog", goals2, None)
            assert k1 == k2, (
                f"case {case}: renaming changed the key\n"
                f"  {render(structure, first)}\n  {render(structure, second)}"
            )
            # canonical slot order is the same, so a binding stored
            # under the first asker's slots re-keys to the second's
            _, names1 = canonical_query(goals1)
            _, names2 = canonical_query(goals2)
            assert len(names1) == len(names2)

    def test_end_to_end_hit_under_askers_names(self):
        """Through the real service: seeded random family re-asks under
        fresh names are cache hits with correctly re-keyed bindings."""
        import asyncio

        from repro.service import BLogService, QueryRequest
        from repro.workloads import family_program

        templates = [
            ("gf(sam, {})", {"den", "doug"}),
            ("gf(curt, {})", {"john"}),
            ("f(sam, {})", {"larry"}),
            ("f(larry, {})", {"den", "doug"}),
        ]
        rng = random.Random(402)

        async def body():
            svc = BLogService({"family": family_program()}, n_workers=2)
            await svc.start()
            try:
                for case in range(40):
                    template, expect = rng.choice(templates)
                    v1, v2 = rng.sample(VAR_POOL, 2)
                    first = await svc.submit(
                        QueryRequest(
                            "family", template.format(v1), session="p1"
                        )
                    )
                    again = await svc.submit(
                        QueryRequest(
                            "family", template.format(v2), session="p1"
                        )
                    )
                    assert first.ok and again.ok
                    assert again.cached, f"case {case}: re-ask missed"
                    got = sorted(a[v2] for a in again.answers)
                    assert got == sorted(expect), (
                        f"case {case}: wrong bindings under {v2}: {got}"
                    )
            finally:
                await svc.stop()

        asyncio.run(body())


# -- property 2: no collisions -----------------------------------------------


class TestNoCollisions:
    def test_distinct_structures_never_share_a_key(self):
        """Random pool of structures: distinct structures map to
        distinct cache keys (no collisions), while every renaming of
        one structure maps to its own key (stability)."""
        rng = random.Random(403)
        by_key: dict[tuple, tuple] = {}
        for case in range(400):
            raw = random_structure(rng)
            structure = normalize(raw)
            goals = parse_query(render(raw, random_renaming(rng, raw)))
            key = cache_key("prog", goals, None)
            seen = by_key.get(key)
            if seen is None:
                by_key[key] = structure
            else:
                assert seen == structure, (
                    f"case {case}: collision between distinct structures\n"
                    f"  {seen}\n  {structure}"
                )

    def test_max_solutions_and_program_partition_the_space(self):
        rng = random.Random(404)
        for _ in range(50):
            structure = random_structure(rng)
            goals = parse_query(render(structure, random_renaming(rng, structure)))
            keys = {
                cache_key(prog, goals, cap)
                for prog in ("p1", "p2")
                for cap in (None, 1, 5)
            }
            assert len(keys) == 6  # every (program, cap) is its own line

    def test_anonymous_mask_is_part_of_the_key(self):
        named = cache_key("p", parse_query("q(X, Y)"), None)
        half = cache_key("p", parse_query("q(X, _)"), None)
        anon = cache_key("p", parse_query("q(_, _)"), None)
        assert len({named, half, anon}) == 3


# -- property 3: generation guarding -----------------------------------------


def arc(i: int) -> ArcKey:
    return ArcKey("pointer", ("clause", i))


class TestGenerationGuarding:
    def test_effective_mutations_always_invalidate(self):
        """Any store write that changes state invalidates every cache
        entry filled under the pre-write generation."""
        rng = random.Random(405)
        for case in range(200):
            store = WeightStore()
            cache = AnswerCache(capacity=64)
            # pre-populate the store a little
            for i in range(rng.randint(0, 5)):
                store.set_known(arc(i), rng.uniform(0.0, 8.0))
            key = ("p", f"q{case}", (), None)
            cache.put(key, store.generation, [{"_C1": "a"}])
            assert cache.get(key, store.generation) is not None

            op = rng.randrange(3)
            if op == 0:
                store.set_known(arc(rng.randrange(8)), rng.uniform(0.0, 8.0))
            elif op == 1:
                store.set_infinite(arc(rng.randrange(8)))
            else:
                victim = arc(rng.randrange(8))
                if victim not in store:
                    store.set_known(victim, 1.0)  # make the forget effective
                store.forget(victim)
            assert cache.get(key, store.generation) is None, (
                f"case {case}: op {op} did not invalidate"
            )

    def test_ineffective_operations_never_invalidate(self):
        """No-ops — forgetting an absent key, clearing an empty store,
        writing a builtin arc — must not evict anything."""
        rng = random.Random(406)
        for case in range(200):
            store = WeightStore()
            for i in range(rng.randint(0, 4)):
                store.set_known(arc(i), float(i))
            cache = AnswerCache(capacity=8)
            key = ("p", "q", (), None)
            cache.put(key, store.generation, [{"_C1": "a"}])

            op = rng.randrange(3)
            if op == 0:
                store.forget(arc(99))  # absent: ineffective
            elif op == 1:
                store.clear()  # effective when entries existed — so
                cache.put(key, store.generation, [{"_C1": "a"}])  # refill
                store.clear()  # ...and clearing the now-empty store: no-op
            else:
                store.set_known(
                    ArcKey("builtin", ("is", case)), rng.uniform(0.0, 4.0)
                )  # builtins never enter the store
            assert cache.get(key, store.generation) is not None, (
                f"case {case}: ineffective op {op} invalidated the entry"
            )

    def test_service_merge_invalidates_only_on_real_learning(self):
        """End to end: a session merge that adopted weights makes the
        cached answer stale; asking again refills under the new
        generation and subsequent re-asks hit again."""
        import asyncio

        from repro.service import BLogService, QueryRequest
        from repro.workloads import family_program

        async def body():
            svc = BLogService({"family": family_program()}, n_workers=2)
            await svc.start()
            try:
                first = await svc.submit(
                    QueryRequest("family", "gf(sam, G)", session="s1")
                )
                hit = await svc.submit(
                    QueryRequest("family", "gf(sam, Who)", session="s2")
                )
                report = await svc.end_session("family", "s1")
                stale = await svc.submit(
                    QueryRequest("family", "gf(sam, G)", session="s2")
                )
                refill = await svc.submit(
                    QueryRequest("family", "gf(sam, V)", session="s3")
                )
                return first, hit, report, stale, refill
            finally:
                await svc.stop()

        first, hit, report, stale, refill = asyncio.run(body())
        assert first.ok and not first.cached
        assert hit.cached
        assert report is not None and report.adopted + report.averaged > 0
        assert not stale.cached  # the merge's generation bump evicted it
        assert refill.cached  # refilled under the post-merge generation
        assert sorted(a["V"] for a in refill.answers) == ["den", "doug"]
