"""Fault injection against the process lane backend.

These are the tests that earn the process backend its failure-handling
claims, with real SIGKILLs instead of monkeypatched exceptions:

* a lane subprocess killed *mid-query* is respawned and the in-flight
  query replayed exactly once, transparently (``resp.ok``,
  ``retries == 1``, full answer set);
* a 200-query mixed-session load survives two kills with zero lost and
  zero duplicated answers;
* a session whose lane child died is abandoned — its local learning is
  *never* merged into the global store (§5's conservative contract
  extended to crashes);
* a hung child (deadline missed) is killed and respawned, and the lane
  serves the very next query.

SIGKILL timing is inherently racy (the victim query may finish before
the signal lands), so the mid-query scenarios check the kill actually
landed in-flight and re-run with a fresh session when it did not,
bounded by a fixed attempt budget.
"""

import asyncio
import os
import signal

import pytest

from repro.service import BLogService, QueryRequest, read_trace_log
from repro.workloads import family_program, nqueens_program, nrev_program

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="SIGKILL fault injection needs POSIX"
)

# nqueens(5) runs ~0.2s under the blog engine — long enough to kill
# mid-flight, short enough to retry cheaply.  10 solutions.
NQUEENS_ANSWERS = 10


def run(coro):
    return asyncio.run(coro)


async def make_service(programs=None, **kw):
    kw.setdefault("n_workers", 2)
    kw.setdefault("backend", "process")
    svc = BLogService(programs or {"family": family_program()}, **kw)
    await svc.start()
    return svc


def kill_lane_child(svc: BLogService, lane: int) -> None:
    """SIGKILL a lane's subprocess and wait until it is truly dead."""
    proc = svc.pool.lane_process(lane).proc
    os.kill(proc.pid, signal.SIGKILL)
    proc.join(timeout=5.0)
    assert not proc.is_alive()


def total_respawns(svc: BLogService) -> int:
    return sum(lane["respawns"] for lane in svc.pool.lane_stats())


class TestKillMidQuery:
    def test_sigkill_is_retried_once_transparently(self):
        """Kill the lane child while a query is executing in it: the
        service must respawn the child, replay the query against a
        freshly opened session, and answer as if nothing happened."""

        async def attempt(svc, session):
            lane = svc.router.lane_for(session)
            task = asyncio.ensure_future(
                svc.submit(
                    QueryRequest(
                        "queens", "queens(Qs)", session=session, cache=False,
                        request_id=session,
                    )
                )
            )
            # let the query reach the child; then kill mid-flight
            await asyncio.sleep(0.06)
            if task.done():
                return None, None  # too late — query already finished
            kill_lane_child(svc, lane)
            return await task, lane

        async def body():
            svc = await make_service({"queens": nqueens_program(5)})
            try:
                for i in range(8):  # bounded re-tries of the *scenario*
                    resp, lane = await attempt(svc, f"killme{i}")
                    if resp is not None:
                        traces = [
                            t for t in svc.telemetry.tracer.finished
                            if t.trace_id == resp.request_id
                        ]
                        registry = svc.telemetry.registry
                        counters = {
                            "resets": registry.counter(
                                "blog_lane_resets_total"
                            ).value,
                            "retries": registry.counter(
                                "blog_retries_total"
                            ).value,
                        }
                        return (
                            resp, lane, svc.pool.lane_stats(), svc.stats(),
                            traces, counters,
                        )
                pytest.fail("query always finished before SIGKILL landed")
            finally:
                await svc.stop()

        resp, lane, lanes, stats, traces, counters = run(body())
        assert resp.ok, f"replayed query failed: {resp.error}"
        assert resp.retries == 1  # exactly one transparent replay
        assert len(resp.answers) == NQUEENS_ANSWERS
        boards = [a["Qs"] for a in resp.answers]
        assert len(set(boards)) == NQUEENS_ANSWERS  # no duplicated answers
        assert lanes[lane]["respawns"] >= 1
        assert stats["lane_resets"] >= 1

        # the span tree tells the whole story: one root span for the
        # victim request, exactly one replay under it, and the respawn
        # window recorded as a span of its own
        assert len(traces) == 1, "exactly one finished trace for the victim"
        trace = traces[0]
        roots = [s for s in trace.spans if s.parent_id is None]
        assert len(roots) == 1 and roots[0].name == "request"
        replays = trace.find("replay")
        assert len(replays) == 1, "exactly one replay span"
        respawns = trace.find("respawn")
        assert len(respawns) == 1, "exactly one respawn span"
        engines = trace.find("engine")
        assert len(engines) == 2  # killed attempt + successful replay
        assert trace.root.attributes["retries"] == 1
        # counters agree with the spans — each incremented exactly once
        assert counters == {"resets": 1, "retries": 1}

    @pytest.mark.slow
    def test_200_query_load_survives_two_kills(self, tmp_path):
        """The acceptance bar under fire: a mixed-session closed loop
        with two SIGKILLs mid-load loses nothing and duplicates
        nothing — and the JSONL trace log accounts for every request:
        one root span each, replay spans matching the replay counter,
        metric totals equal to per-request span counts."""
        programs = {"family": family_program(), "nrev": nrev_program()}
        fam = {
            "gf(sam, G)": {"den", "doug"},
            "gf(curt, G)": {"john"},
            "f(sam, Y)": {"larry"},
            "f(larry, Y)": {"den", "doug"},
        }
        nrev_expected = "[e, d, c, b, a]"
        total = 200
        plan = []
        fam_items = list(fam.items())
        for i in range(total):
            session = f"sess{i % 10}"
            if i % 5 == 4:
                plan.append(
                    ("nrev", "nrev([a,b,c,d,e], R)", session,
                     frozenset([nrev_expected]))
                )
            else:
                q, expect = fam_items[i % len(fam_items)]
                plan.append(("family", q, session, frozenset(expect)))

        # CI exports BLOG_FAULTS_TRACE_LOG so a failing run leaves the
        # trace log behind as a build artifact; locally it lands in tmp
        trace_log = os.environ.get(
            "BLOG_FAULTS_TRACE_LOG", str(tmp_path / "faults-trace.jsonl")
        )

        async def body():
            svc = await make_service(
                programs, n_workers=2, max_pending=256, trace_log=trace_log
            )
            queue = asyncio.Queue()
            for i, item in enumerate(plan):
                queue.put_nowait((f"req{i}", item))
            responses = {}

            async def client():
                while True:
                    try:
                        rid, (prog, q, sess, _) = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        return
                    responses[rid] = await svc.submit(
                        QueryRequest(
                            prog, q, session=sess, request_id=rid, cache=False
                        )
                    )

            async def assassin():
                # two kills, tied to load progress (not wall-clock) so
                # they always land while queries are flowing
                for threshold, lane in ((25, 0), (120, 1)):
                    while len(responses) < threshold:
                        await asyncio.sleep(0.01)
                    kill_lane_child(svc, lane)

            await asyncio.gather(
                *[client() for _ in range(8)], assassin()
            )
            lanes = svc.pool.lane_stats()
            requests_total = svc.telemetry.registry.counter(
                "blog_requests_total"
            ).value
            retries_total = svc.telemetry.registry.counter(
                "blog_retries_total"
            ).value
            exposition = svc.metrics_text()
            await svc.stop()  # closes (flushes) the trace log
            return responses, lanes, requests_total, retries_total, exposition

        responses, lanes, requests_total, retries_total, exposition = run(
            body()
        )

        # zero lost, zero duplicated requests
        assert sorted(responses) == sorted(f"req{i}" for i in range(total))
        assert sum(lane["respawns"] for lane in lanes) >= 2

        # the trace log accounts for every request exactly once
        spans = read_trace_log(trace_log)
        request_spans = [
            s for s in spans if s["trace"].startswith("req")
        ]
        roots = [s for s in request_spans if s["parent"] is None]
        root_count = {}
        for s in roots:
            root_count[s["trace"]] = root_count.get(s["trace"], 0) + 1
        assert root_count == {f"req{i}": 1 for i in range(total)}
        assert requests_total == total == len(roots)

        # replay spans in the log match the replay counter and the
        # per-response retry totals
        replay_spans = [s for s in request_spans if s["name"] == "replay"]
        replied_retries = sum(r.retries for r in responses.values())
        assert len(replay_spans) == retries_total == replied_retries
        assert retries_total >= 1  # at least one kill landed mid-query

        # the text exposition agrees with the span counts
        assert f"blog_requests_total {total}" in exposition
        assert f"blog_retries_total {int(retries_total)}" in exposition

        # every reply exact: nothing lost or duplicated inside an answer set
        for i, (prog, q, sess, expect) in enumerate(plan):
            resp = responses[f"req{i}"]
            assert resp.ok, f"req{i} failed: {resp.error}"
            var = ("G" if "G)" in q else "Y") if prog == "family" else "R"
            got = [a[var] for a in resp.answers]
            assert len(got) == len(set(got)), f"req{i} duplicated: {got}"
            assert set(got) == set(expect), f"req{i} wrong: {got}"


class TestAbandonedSessions:
    def test_dead_childs_sessions_are_never_merged(self):
        """A session living in a killed child must vanish without a
        trace: end_session reports nothing merged and the global store
        stays byte-for-byte untouched."""

        async def body():
            svc = await make_service()
            try:
                resp = await svc.submit(
                    QueryRequest(
                        "family", "gf(sam, G)", session="victim", cache=False
                    )
                )
                assert resp.ok  # the session learned in the child...
                kill_lane_child(svc, svc.router.lane_for("victim"))
                report = await svc.end_session("family", "victim")
                store = svc.programs["family"].global_store
                return (
                    report,
                    store.generation,
                    len(store),
                    svc.sessions_abandoned,
                    svc.router.get("family", "victim"),
                )
            finally:
                await svc.stop()

        report, generation, entries, abandoned, state = run(body())
        assert report is None  # nothing merged
        assert generation == 0 and entries == 0  # global store untouched
        assert abandoned >= 1
        assert state is None  # session state dropped, not lingering

    def test_next_query_after_abandonment_reopens_fresh(self):
        async def body():
            svc = await make_service()
            try:
                await svc.submit(
                    QueryRequest(
                        "family", "gf(sam, G)", session="phoenix", cache=False
                    )
                )
                kill_lane_child(svc, svc.router.lane_for("phoenix"))
                # same session name, dead child: the query must succeed
                # against a respawned child and a freshly opened session
                resp = await svc.submit(
                    QueryRequest(
                        "family", "gf(sam, G)", session="phoenix", cache=False
                    )
                )
                return resp, svc.router.get("family", "phoenix")
            finally:
                await svc.stop()

        resp, state = run(body())
        assert resp.ok
        assert sorted(a["G"] for a in resp.answers) == ["den", "doug"]
        assert state is not None and state.queries == 1  # reopened, not reused


class TestHungChild:
    def test_timeout_kills_respawns_and_lane_recovers(self):
        """A deadline miss must not leave a lane wedged: the child is
        killed and respawned, the request fails with a deadline error,
        and the very next query on the lane is served."""

        async def body():
            svc = await make_service({"queens": nqueens_program(5)})
            try:
                slow = await svc.submit(
                    QueryRequest(
                        "queens", "queens(Qs)", session="sluggish",
                        cache=False, timeout=0.05,
                    )
                )
                follow_up = await svc.submit(
                    QueryRequest(
                        "queens", "queens(Qs)", session="sluggish", cache=False
                    )
                )
                return slow, follow_up, total_respawns(svc), svc.stats()
            finally:
                await svc.stop()

        slow, follow_up, respawns, stats = run(body())
        assert not slow.ok and "deadline" in slow.error
        assert respawns >= 1  # the hung child was killed, not waited out
        assert stats["lane_resets"] >= 1
        assert follow_up.ok  # the lane came back healthy
        assert len(follow_up.answers) == NQUEENS_ANSWERS
