"""Tests for the assembled BLogSystem."""

import pytest

from repro.core import BLogConfig, BLogSystem
from repro.machine import MachineConfig
from repro.workloads import FIGURE1_SOURCE


@pytest.fixture
def system():
    return BLogSystem(FIGURE1_SOURCE, BLogConfig(n=8, a=16))


class TestConstruction:
    def test_from_source_text(self, system):
        assert len(system.program) == 12

    def test_from_program(self, figure1):
        sys2 = BLogSystem(figure1)
        assert sys2.program is figure1

    def test_repr(self, system):
        text = repr(system)
        assert "12 clauses" in text
        assert "SPDs" in text


class TestQuerying:
    def test_sequential_query(self, system):
        res = system.query("gf(sam, G)")
        assert sorted(str(a["G"]) for a in res.answers) == ["den", "doug"]

    def test_parallel_query(self, system):
        res = system.query_parallel("gf(sam, G)")
        assert sorted(str(a["G"]) for a in res.answers) == ["den", "doug"]
        assert res.makespan > 0
        assert res.disk_cycles > 0  # the system's SPD bank served pages

    def test_parallel_max_solutions(self, system):
        res = system.query_parallel("gf(sam, G)", max_solutions=1)
        assert len(res.answers) >= 1

    def test_both_executors_share_learning(self, system):
        system.begin_session()
        system.query("gf(sam, G)")  # sequential learns
        warm = system.query_parallel("gf(sam, G)", max_solutions=1)
        system.end_session(write_back=False)
        # learned store orders the machine's frontier too: den/doug first
        assert warm.answers


class TestSessions:
    def test_session_with_writeback(self, system):
        system.begin_session()
        system.query("gf(sam, G)")
        merge, report = system.end_session()
        assert merge.adopted > 0
        assert report is not None
        assert report.dirty_pointers > 0
        assert system.writeback_reports == [report]
        # database view agrees with the global store
        for block in system.database:
            for p in block.pointers:
                assert p.weight == system.engine.sessions.global_store.weight(
                    p.arc_key(block.block_id)
                )

    def test_session_without_writeback(self, system):
        system.begin_session()
        system.query("gf(sam, G)")
        merge, report = system.end_session(write_back=False)
        assert report is None


class TestPersistence:
    def test_save_and_reload(self, tmp_path):
        path = tmp_path / "weights.json"
        sys1 = BLogSystem(FIGURE1_SOURCE, BLogConfig(n=8, a=16), store_path=path)
        sys1.begin_session()
        cold = sys1.query("gf(sam, G)", max_solutions=1).expansions_to_first
        sys1.end_session(write_back=False)
        sys1.save()
        # a fresh system over the same path starts warm
        sys2 = BLogSystem(FIGURE1_SOURCE, BLogConfig(n=8, a=16), store_path=path)
        warm = sys2.query("gf(sam, G)", max_solutions=1).expansions_to_first
        assert warm < cold

    def test_save_needs_path(self, system):
        with pytest.raises(ValueError):
            system.save()

    def test_save_explicit_path(self, system, tmp_path):
        target = system.save(tmp_path / "w.json")
        assert target.exists()


class TestConsult:
    def test_added_clauses_queryable(self, system):
        system.consult("f(doug, zed).")
        res = system.query("gf(larry, G)")
        assert "zed" in {str(a["G"]) for a in res.answers}

    def test_disk_rebuilt(self, system):
        before = len(system.disk.addresses)
        system.consult("f(x1, y1). f(y1, z1).")
        assert len(system.disk.addresses) == before + 2


class TestMachineConfigPassthrough:
    def test_custom_machine(self):
        system = BLogSystem(
            FIGURE1_SOURCE,
            machine=MachineConfig(n_processors=2, tasks_per_processor=1),
        )
        res = system.query_parallel("gf(sam, G)")
        assert len(res.per_processor_expansions) == 2
