"""Unit tests for the scoreboard-driven controller (§6)."""

import pytest

from repro.machine import MicroOp, Scoreboard, expansion_program


class TestMicroOp:
    def test_self_dependency_rejected(self):
        with pytest.raises(ValueError):
            MicroOp("unify", "t1", ("t1",))


class TestScoreboardExecution:
    def test_single_op(self):
        sb = Scoreboard(unit_counts={"unify": 1}, latencies={"unify": 3})
        stats = sb.run([MicroOp("unify", "a")])
        assert stats.issued == 1
        assert stats.cycles >= 3

    def test_raw_dependency_serializes(self):
        sb = Scoreboard(unit_counts={"unify": 2}, latencies={"unify": 3})
        chain = [
            MicroOp("unify", "a"),
            MicroOp("unify", "b", ("a",)),
            MicroOp("unify", "c", ("b",)),
        ]
        stats = sb.run(chain)
        assert stats.cycles >= 9  # strictly sequential despite 2 units
        assert stats.raw_stalls > 0

    def test_independent_ops_overlap(self):
        sb = Scoreboard(unit_counts={"unify": 4}, latencies={"unify": 10})
        ops = [MicroOp("unify", f"t{i}") for i in range(4)]
        stats = sb.run(ops)
        assert stats.cycles < 4 * 10  # real overlap

    def test_structural_hazard_with_one_unit(self):
        sb = Scoreboard(unit_counts={"unify": 1}, latencies={"unify": 10})
        ops = [MicroOp("unify", f"t{i}") for i in range(3)]
        stats = sb.run(ops)
        assert stats.cycles >= 30
        assert stats.structural_stalls > 0

    def test_duplicate_dest_rejected(self):
        sb = Scoreboard()
        with pytest.raises(ValueError):
            sb.run([MicroOp("unify", "a"), MicroOp("copy", "a")])

    def test_latency_override(self):
        sb = Scoreboard(unit_counts={"copy": 1}, latencies={"copy": 2})
        stats = sb.run([MicroOp("copy", "a", latency=20)])
        assert stats.cycles >= 20

    def test_mixed_unit_kinds(self):
        sb = Scoreboard()
        ops = [
            MicroOp("search", "cands"),
            MicroOp("unify", "u0", ("cands",)),
            MicroOp("unify", "u1", ("cands",)),
            MicroOp("copy", "c0", ("u0",)),
            MicroOp("copy", "c1", ("u1",)),
            MicroOp("select", "sel", ("c0", "c1")),
        ]
        stats = sb.run(ops)
        assert stats.issued == 6
        util = stats.utilization(sb.unit_counts)
        assert 0 < util["unify"] <= 1.0

    def test_utilization_bounds(self):
        sb = Scoreboard()
        stats = sb.run(expansion_program(4, 2))
        for kind, u in stats.utilization(sb.unit_counts).items():
            assert 0.0 <= u <= 1.0


class TestExpansionProgram:
    def test_shape(self):
        prog = expansion_program(n_candidates=3, n_matches=2)
        kinds = [op.kind for op in prog]
        assert kinds.count("search") == 1
        assert kinds.count("unify") == 3
        assert kinds.count("copy") == 2
        assert kinds.count("select") == 1

    def test_matches_cannot_exceed_candidates(self):
        with pytest.raises(ValueError):
            expansion_program(2, 3)

    def test_no_matches_still_selects(self):
        prog = expansion_program(2, 0)
        assert prog[-1].kind == "select"
        sb = Scoreboard()
        stats = sb.run(prog)
        assert stats.issued == len(prog)

    def test_copy_latency_scales_with_chain(self):
        small = expansion_program(1, 1, chain_words=8)
        large = expansion_program(1, 1, chain_words=128)
        small_copy = [op for op in small if op.kind == "copy"][0]
        large_copy = [op for op in large if op.kind == "copy"][0]
        assert large_copy.latency > small_copy.latency

    def test_wider_fanout_costs_more_cycles(self):
        sb = Scoreboard()
        narrow = sb.run(expansion_program(1, 1)).cycles
        wide = sb.run(expansion_program(8, 8)).cycles
        assert wide > narrow

    def test_parallel_units_beat_serial_units(self):
        """More unify/copy units shorten the same expansion — the
        scoreboard keeps 'a collection of units' busy."""
        serial = Scoreboard(
            unit_counts={"search": 1, "unify": 1, "copy": 1, "select": 1}
        )
        parallel = Scoreboard(
            unit_counts={"search": 1, "unify": 4, "copy": 4, "select": 1}
        )
        prog = expansion_program(6, 6)
        assert parallel.run(list(prog)).cycles < serial.run(list(prog)).cycles

    def test_unique_tags_across_calls(self):
        p1 = expansion_program(2, 1)
        p2 = expansion_program(2, 1)
        tags1 = {op.dest for op in p1}
        tags2 = {op.dest for op in p2}
        assert not tags1 & tags2
