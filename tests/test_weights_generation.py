"""The weight store's generation counter (serving-layer cache support).

The counter lets the answer cache in :mod:`repro.service` detect
"weights moved" — in particular after an end-of-session merge — with a
single integer compare instead of deep-comparing stores.
"""

from repro.ortree.tree import ArcKey
from repro.weights.session import merge_conservative
from repro.weights.store import WeightStore


def ptr(i: int) -> ArcKey:
    return ArcKey("pointer", (("p", 1, i), i, ("q", 1)))


def builtin() -> ArcKey:
    return ArcKey("builtin", (("is", 2),))


class TestGenerationCounter:
    def test_fresh_store_starts_at_zero(self):
        assert WeightStore().generation == 0

    def test_set_known_bumps(self):
        s = WeightStore()
        s.set_known(ptr(1), 3.0)
        assert s.generation == 1
        s.set_known(ptr(1), 4.0)  # overwrite still counts as a mutation
        assert s.generation == 2

    def test_set_infinite_bumps(self):
        s = WeightStore()
        s.set_infinite(ptr(1))
        assert s.generation == 1

    def test_builtin_writes_are_ignored(self):
        s = WeightStore()
        s.set_known(builtin(), 5.0)
        s.set_infinite(builtin())
        assert s.generation == 0
        assert len(s) == 0

    def test_forget_bumps_only_when_present(self):
        s = WeightStore()
        s.forget(ptr(1))  # nothing to drop
        assert s.generation == 0
        s.set_known(ptr(1), 2.0)
        s.forget(ptr(1))
        assert s.generation == 2

    def test_clear_bumps_only_when_nonempty(self):
        s = WeightStore()
        s.clear()
        assert s.generation == 0
        s.set_known(ptr(1), 2.0)
        s.clear()
        assert s.generation == 2

    def test_copy_carries_generation_then_diverges(self):
        s = WeightStore()
        s.set_known(ptr(1), 2.0)
        local = s.copy()
        assert local.generation == s.generation == 1
        local.set_infinite(ptr(2))
        assert local.generation == 2
        assert s.generation == 1  # parent untouched

    def test_monotone_never_decreases(self):
        s = WeightStore()
        seen = [s.generation]
        s.set_known(ptr(1), 1.0)
        seen.append(s.generation)
        s.set_infinite(ptr(2))
        seen.append(s.generation)
        s.forget(ptr(1))
        seen.append(s.generation)
        assert seen == sorted(seen)


class TestMergeBumpsGeneration:
    def test_session_merge_bumps_global(self):
        glob = WeightStore()
        local = glob.copy()
        local.set_known(ptr(1), 3.0)
        local.set_infinite(ptr(2))
        before = glob.generation
        merge_conservative(glob, local)
        assert glob.generation > before

    def test_merge_that_learns_nothing_leaves_generation(self):
        glob = WeightStore()
        local = glob.copy()  # session ran no informative queries
        before = glob.generation
        merge_conservative(glob, local)
        assert glob.generation == before
