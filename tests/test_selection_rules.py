"""Tests for alternative computation rules (goal selection)."""

import pytest

from repro.logic import Program, Solver
from repro.ortree import OrTree, depth_first
from repro.workloads import family_program, synthetic_tree


def answers(tree, res, var):
    return sorted(str(tree.solution_answer(s)[var]) for s in res.solutions)


class TestValidation:
    def test_unknown_rule_rejected(self, figure1):
        with pytest.raises(ValueError):
            OrTree(figure1, "gf(sam, G)", selection_rule="random")


class TestCompleteness:
    @pytest.mark.parametrize("rule", ["leftmost", "most-bound", "fewest-candidates"])
    def test_figure1_answers_preserved(self, figure1, rule):
        tree = OrTree(figure1, "gf(sam, G)", selection_rule=rule, max_depth=32)
        res = depth_first(tree)
        assert answers(tree, res, "G") == ["den", "doug"]

    @pytest.mark.parametrize("rule", ["most-bound", "fewest-candidates"])
    def test_synthetic_answers_preserved(self, rule):
        wl = synthetic_tree(3, 3, 0.34, seed=44)
        base = sorted(
            str(s["W"]) for s in Solver(wl.program, max_depth=32).solve_all(wl.query)
        )
        tree = OrTree(wl.program, wl.query, selection_rule=rule, max_depth=32)
        res = depth_first(tree)
        assert answers(tree, res, "W") == base

    @pytest.mark.parametrize("rule", ["most-bound", "fewest-candidates"])
    def test_builtins_still_safe(self, rule):
        """Arithmetic producers stay ahead of their consumers even when
        user goals are reordered around them."""
        p = Program.from_source(
            """
            fact(0, 1).
            fact(N, F) :- N > 0, M is N - 1, fact(M, G), F is N * G.
            """
        )
        tree = OrTree(p, "fact(5, F)", selection_rule=rule, max_depth=128)
        res = depth_first(tree)
        assert answers(tree, res, "F") == ["120"]

    @pytest.mark.parametrize("rule", ["most-bound", "fewest-candidates"])
    def test_negation_order_respected(self, rule):
        p = Program.from_source(
            """
            man(sam). man(curt).
            married(curt).
            bachelor(X) :- man(X), \\+ married(X).
            """
        )
        tree = OrTree(p, "bachelor(X)", selection_rule=rule, max_depth=32)
        res = depth_first(tree)
        assert answers(tree, res, "X") == ["sam"]


class TestSelectionEffects:
    def test_fewest_candidates_prefers_selective_goal(self, figure1):
        """In f(X,Y), m(Y,Z): m has 4 clauses vs f's 6, so
        fewest-candidates resolves m first."""
        tree = OrTree(figure1, "f(X, Y), m(Y, Z)", selection_rule="fewest-candidates")
        tree.expand(0)
        # the root's children resolve the m goal: their arcs point at m facts
        child = tree.node(tree.root.children[0])
        assert child.arc.key.key[2] in figure1.clauses_for(("m", 2))

    def test_most_bound_prefers_instantiated_goal(self, figure1):
        """In f(X,Y), f(sam,W): the second goal is half ground."""
        tree = OrTree(figure1, "f(X, Y), f(sam, W)", selection_rule="most-bound")
        tree.expand(0)
        child = tree.node(tree.root.children[0])
        # resolved goal was f(sam, W) -> only one candidate (indexing)
        assert len(tree.root.children) == 1

    def test_generate_test_work_reduction(self):
        """Classic generate-and-test: selecting the selective test first
        shrinks the tree."""
        lines = [f"gen({i})." for i in range(12)] + ["good(7)."]
        lines.append("pick(X) :- gen(X), good(X).")
        p = Program.from_source("\n".join(lines))

        def nodes(rule):
            tree = OrTree(p, "pick(X)", selection_rule=rule, max_depth=16)
            depth_first(tree)
            return len(tree.nodes)

        assert nodes("fewest-candidates") < nodes("leftmost")

    def test_leftmost_untouched_by_default(self, figure1):
        t1 = OrTree(figure1, "f(X, Y), m(Y, Z)")
        t2 = OrTree(figure1, "f(X, Y), m(Y, Z)", selection_rule="leftmost")
        depth_first(t1)
        depth_first(t2)
        assert len(t1.nodes) == len(t2.nodes)


class TestEngineIntegration:
    @pytest.mark.parametrize("rule", ["leftmost", "most-bound", "fewest-candidates"])
    def test_engine_selection_rule_preserves_answers(self, figure1, rule):
        from repro.core import BLogConfig, BLogEngine

        eng = BLogEngine(figure1, BLogConfig(selection_rule=rule, max_depth=32))
        res = eng.query("gf(sam, G)")
        assert sorted(str(a["G"]) for a in res.answers) == ["den", "doug"]

    def test_config_validation(self):
        from repro.core import BLogConfig

        with pytest.raises(ValueError):
            BLogConfig(selection_rule="chaotic")
