"""Unit tests for the telemetry layer: span trees, the metric registry,
the exposition format, trace-log export/rotation, the slow-query log —
and the regression pins for the queue-wait fix (durations populated on
cache-hit and overload exit paths, not only served queries)."""

import asyncio
import json

import pytest

from repro.service import BLogService, Overloaded, QueryRequest
from repro.service.telemetry import (
    JsonlTraceLog,
    MetricsRegistry,
    Telemetry,
    Tracer,
    format_trace,
    read_trace_log,
)
from repro.workloads import family_program


class FakeClock:
    def __init__(self, t: float = 100.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def run(coro):
    return asyncio.run(coro)


# -- spans -------------------------------------------------------------------


class TestSpans:
    def test_nesting_parent_ids_and_intervals(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        trace = tracer.start_trace("r1", program="family")
        with trace.span("outer") as outer:
            clock.advance(1.0)
            with trace.span("inner", detail=7) as inner:
                clock.advance(2.0)
            clock.advance(0.5)
        trace.end(ok=True)

        assert trace.root.parent_id is None
        assert outer.parent_id == trace.root.span_id
        assert inner.parent_id == outer.span_id
        assert inner.attributes["detail"] == 7
        # intervals nest: child inside parent inside root
        assert outer.start_s >= trace.root.start_s
        assert inner.start_s >= outer.start_s
        assert inner.end_s <= outer.end_s <= trace.root.end_s
        assert inner.duration_s == pytest.approx(2.0)
        assert outer.duration_s == pytest.approx(3.5)
        assert trace.root.attributes["ok"] is True
        assert len(tracer.finished) == 1

    def test_clock_never_runs_backwards_within_a_tree(self):
        clock = FakeClock(50.0)
        tracer = Tracer(clock=clock)
        trace = tracer.start_trace("r1")
        with trace.span("a"):
            clock.t = 10.0  # OS clock hiccup: jumps backwards
        with trace.span("b"):
            clock.t = 9.0
        trace.end()
        times = []
        for s in trace.spans:
            times.append(s.start_s)
            if s.end_s is not None:
                times.append(s.end_s)
        assert all(t >= 50.0 for t in times)
        for s in trace.spans:
            assert s.end_s >= s.start_s

    def test_span_at_clamps_into_parent(self):
        clock = FakeClock(100.0)
        tracer = Tracer(clock=clock)
        trace = tracer.start_trace("r1")
        clock.advance(1.0)
        span = trace.span_at("queue", 90.0, 101.5)  # starts before the root
        assert span.start_s == 100.0  # clamped up to the root start
        assert span.end_s == 101.5
        assert span.parent_id == trace.root.span_id
        trace.end()
        assert trace.root.end_s >= span.end_s

    def test_exception_is_recorded_and_span_still_ends(self):
        tracer = Tracer(clock=FakeClock())
        trace = tracer.start_trace("r1")
        with pytest.raises(ValueError):
            with trace.span("engine"):
                raise ValueError("boom")
        (engine,) = trace.find("engine")
        assert engine.end_s is not None
        assert "ValueError: boom" in engine.attributes["error"]

    def test_end_is_idempotent_and_closes_dangling_spans(self):
        tracer = Tracer(clock=FakeClock())
        trace = tracer.start_trace("r1")
        trace.start_span("left-open")
        trace.end()
        trace.end()  # second call is a no-op
        assert tracer.completed == 1
        (dangling,) = trace.find("left-open")
        assert dangling.end_s is not None
        assert trace.root.end_s >= dangling.end_s


# -- metrics -----------------------------------------------------------------


class TestRegistry:
    def test_counter_gauge_semantics(self):
        reg = MetricsRegistry()
        c = reg.counter("blog_x_total")
        c.inc()
        c.inc(2)
        assert reg.counter("blog_x_total") is c  # same series on re-ask
        assert c.value == 3
        with pytest.raises(ValueError):
            c.inc(-1)
        g = reg.gauge("blog_depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4

    def test_histogram_exact_aggregates_bounded_reservoir(self):
        reg = MetricsRegistry()
        h = reg.histogram("blog_lat_seconds", reservoir=8)
        for i in range(100):
            h.observe(float(i))
        assert h.count == 100
        assert h.sum == sum(range(100))
        assert h.min == 0.0 and h.max == 99.0
        assert len(h.reservoir) == 8  # bounded
        assert h.min <= h.quantile(0.5) <= h.max
        snap = h.snapshot()
        assert snap["count"] == 100 and snap["max"] == 99.0

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("blog_x_total")
        with pytest.raises(ValueError):
            reg.gauge("blog_x_total")

    def test_labels_create_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("blog_req_total", engine="blog").inc(2)
        reg.counter("blog_req_total", engine="cache").inc()
        assert reg.counter("blog_req_total", engine="blog").value == 2
        assert reg.counter("blog_req_total", engine="cache").value == 1

    def test_exposition_golden(self):
        reg = MetricsRegistry()
        reg.counter("blog_requests_total").inc(3)
        reg.counter("blog_requests_engine_total", engine="blog").inc(2)
        reg.counter("blog_requests_engine_total", engine="cache").inc()
        reg.gauge("blog_pending").set(1)
        reg.histogram("blog_request_seconds").observe(2.0)
        assert reg.expose() == (
            "# TYPE blog_pending gauge\n"
            "blog_pending 1\n"
            "# TYPE blog_request_seconds histogram\n"
            "blog_request_seconds_count 1\n"
            "blog_request_seconds_sum 2\n"
            'blog_request_seconds{q="0.5"} 2\n'
            'blog_request_seconds{q="0.95"} 2\n'
            "blog_request_seconds_max 2\n"
            "# TYPE blog_requests_engine_total counter\n"
            'blog_requests_engine_total{engine="blog"} 2\n'
            'blog_requests_engine_total{engine="cache"} 1\n'
            "# TYPE blog_requests_total counter\n"
            "blog_requests_total 3\n"
        )


# -- exports -----------------------------------------------------------------


class TestTraceLog:
    def _finish_trace(self, tracer, rid, clock):
        trace = tracer.start_trace(rid, program="family")
        with trace.span("engine"):
            clock.advance(0.01)
        trace.end(ok=True)
        return trace

    def test_jsonl_lines_parse_and_round_trip(self, tmp_path):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        path = str(tmp_path / "trace.jsonl")
        log = JsonlTraceLog(path)
        tracer.on_finish.append(log)
        self._finish_trace(tracer, "r1", clock)
        self._finish_trace(tracer, "r2", clock)
        log.close()
        spans = read_trace_log(path)
        assert [s["trace"] for s in spans] == ["r1", "r1", "r2", "r2"]
        roots = [s for s in spans if s["parent"] is None]
        assert [r["trace"] for r in roots] == ["r1", "r2"]
        for s in spans:
            assert s["end_s"] >= s["start_s"]
            assert s["duration_s"] == pytest.approx(s["end_s"] - s["start_s"])

    def test_rotation_keeps_backups(self, tmp_path):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        path = str(tmp_path / "trace.jsonl")
        log = JsonlTraceLog(path, max_bytes=600, backups=2)
        tracer.on_finish.append(log)
        for i in range(12):
            self._finish_trace(tracer, f"r{i}", clock)
        log.close()
        assert log.rotations >= 1
        assert (tmp_path / "trace.jsonl.1").exists()
        # every line in every generation is valid JSON
        for p in tmp_path.iterdir():
            for line in p.read_text().splitlines():
                json.loads(line)
        # the newest traces are in the live file, in order
        live = read_trace_log(path)
        assert live, "rotation must never lose the live file"

    def test_slow_query_log_dumps_span_tree(self):
        clock = FakeClock()
        seen = []
        telemetry = Telemetry(
            clock=clock, slow_query_s=0.5, slow_query_sink=seen.append
        )
        fast = telemetry.tracer.start_trace("fast")
        clock.advance(0.1)
        fast.end()
        slow = telemetry.tracer.start_trace("slow", program="family")
        with slow.span("engine", expansions=42):
            clock.advance(2.0)
        slow.end(ok=True)
        assert telemetry.slow_queries == 1
        assert len(seen) == 1
        text = seen[0]
        assert "trace slow" in text and "engine" in text and "expansions=42" in text
        assert "fast" not in text

    def test_format_trace_indents_children(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        trace = tracer.start_trace("r1")
        with trace.span("lane-dispatch"):
            clock.advance(0.5)
            with trace.span("engine"):
                clock.advance(1.0)
        trace.end()
        lines = format_trace(trace).splitlines()
        assert lines[0].startswith("trace r1")
        assert lines[1].startswith("  lane-dispatch")
        assert lines[2].startswith("    engine")


# -- the queue-wait regression (satellite fix) -------------------------------


class TestDurationsOnEveryExitPath:
    """Cache-hit short-circuits and overload rejections must carry real
    measured durations, not zeros (the pre-fix behaviour recorded 0.0
    for every request that never reached a lane)."""

    def test_cache_hit_records_wall_time_and_queue_wait(self):
        async def body():
            svc = BLogService(
                {"family": family_program()}, n_workers=2, backend="thread"
            )
            await svc.start()
            try:
                first = await svc.submit(
                    QueryRequest("family", "gf(sam, G)", session="s")
                )
                hit = await svc.submit(
                    QueryRequest("family", "gf(sam, G)", session="s")
                )
                return first, hit, svc.stats_agg.events[-1]
            finally:
                await svc.stop()

        first, hit, event = run(body())
        assert first.ok and hit.ok and hit.cached
        assert event.cache_hit
        assert event.total_s > 0.0  # was 0.0 before the fix
        assert event.queue_wait_s > 0.0
        assert event.total_s >= event.queue_wait_s
        assert hit.queue_wait_ms > 0.0

    def test_overload_rejection_records_duration(self):
        async def body():
            svc = BLogService(
                {"family": family_program()},
                n_workers=1,
                max_pending=1,
                backend="thread",
            )
            await svc.start()
            try:
                svc.admission.acquire()  # occupy the whole bound
                with pytest.raises(Overloaded):
                    await svc.submit(QueryRequest("family", "gf(sam, G)"))
                svc.admission.release()
                return svc.stats_agg
            finally:
                await svc.stop()

        agg = run(body())
        assert agg.rejected == 1
        assert len(agg.rejections) == 1
        event = agg.rejections[0]
        assert event.error == "overloaded" and not event.ok
        assert event.total_s > 0.0
        assert event.queue_wait_s == pytest.approx(event.total_s)
        # the rejection's duration also lands in the registry histogram
        hist = agg._registry.histogram("blog_rejection_seconds")
        assert hist.count == 1 and hist.sum == pytest.approx(event.total_s)

    def test_error_exit_paths_record_durations(self):
        async def body():
            svc = BLogService(
                {"family": family_program()}, n_workers=1, backend="thread"
            )
            await svc.start()
            try:
                bad_prog = await svc.submit(QueryRequest("nope", "gf(sam, G)"))
                bad_syntax = await svc.submit(QueryRequest("family", "gf(sam,"))
                return bad_prog, bad_syntax, list(svc.stats_agg.events)
            finally:
                await svc.stop()

        bad_prog, bad_syntax, events = run(body())
        assert not bad_prog.ok and not bad_syntax.ok
        assert all(e.total_s > 0.0 for e in events)
