"""Unit tests for the explicit OR-tree (figure 3)."""

import pytest

from repro.logic import Program
from repro.ortree import ArcKey, NodeStatus, OrTree, canonical_goal
from repro.logic import parse_term


class TestFigure3:
    """The paper's figure-3 tree for ?- gf(sam, G)."""

    @pytest.fixture
    def tree(self, figure1):
        t = OrTree(figure1, "gf(sam, G)")
        t.expand_all()
        return t

    def test_node_count(self, tree):
        # root + 2 rule nodes + 2 f(sam,larry) nodes + 2 solutions = 7
        assert len(tree.nodes) == 7

    def test_two_solutions_one_failure(self, tree):
        assert len(tree.solutions()) == 2
        assert len(tree.failures()) == 1

    def test_solution_answers(self, tree):
        answers = sorted(
            str(tree.solution_answer(s)["G"]) for s in tree.solutions()
        )
        assert answers == ["den", "doug"]

    def test_failure_is_m_branch(self, tree):
        (fail,) = tree.failures()
        assert str(fail.selected_goal) == "m(larry, G)" or str(
            fail.selected_goal
        ).startswith("m(larry")

    def test_root_fanout_is_two_rules(self, tree):
        assert len(tree.root.children) == 2

    def test_chain_to_solution(self, tree):
        sol = tree.solutions()[0]
        chain = tree.chain(sol.nid)
        assert chain[0] is tree.root
        assert chain[-1] is sol
        assert len(chain) == 4  # root, rule, f(sam,larry), solution

    def test_chain_arcs_length(self, tree):
        sol = tree.solutions()[0]
        assert len(tree.chain_arcs(sol.nid)) == 3

    def test_depths_monotone_along_chain(self, tree):
        for sol in tree.solutions():
            depths = [n.depth for n in tree.chain(sol.nid)]
            assert depths == sorted(depths)
            assert depths[0] == 0

    def test_render_contains_statuses(self, tree):
        text = tree.render()
        assert "[SOLUTION]" in text
        assert "[FAILURE]" in text


class TestArcKeys:
    def test_pointer_keys_identify_clause_pointers(self, figure1):
        tree = OrTree(figure1, "gf(sam, G)", arc_key_policy="pointer")
        children = tree.expand(0)
        keys = [tree.node(c).arc.key for c in children]
        assert all(k.kind == "pointer" for k in keys)
        # query pseudo-clause is -1, literal 0, resolving clauses 0 and 1
        assert keys[0].key == (-1, 0, 0)
        assert keys[1].key == (-1, 0, 1)

    def test_goal_policy_merges_same_goal(self, figure1):
        tree = OrTree(figure1, "gf(sam, G)", arc_key_policy="goal")
        tree.expand_all()
        # the two f(sam,Y) resolutions (under rule 1 and rule 2) share a key
        keys = [a.key for a in tree.arcs if a.key.kind == "goal"]
        assert len(keys) > len(set(keys))  # at least one duplicate

    def test_pointer_policy_distinguishes_callers(self, figure1):
        tree = OrTree(figure1, "gf(sam, G)", arc_key_policy="pointer")
        tree.expand_all()
        keys = [a.key for a in tree.arcs]
        assert len(keys) == len(set(keys)) + 0  # pointer keys may still repeat
        # but the two f(sam,larry) arcs have different caller clause ids
        f_arcs = [
            a.key.key
            for a in tree.arcs
            if a.key.kind == "pointer" and a.key.key[2] == 3  # f(sam,larry) id
        ]
        callers = {k[0] for k in f_arcs}
        assert callers == {0, 1}

    def test_invalid_policy_rejected(self, figure1):
        with pytest.raises(ValueError):
            OrTree(figure1, "gf(sam, G)", arc_key_policy="bogus")

    def test_canonical_goal_normalizes_vars(self):
        a = canonical_goal(parse_term("f(sam, Y)"))
        b = canonical_goal(parse_term("f(sam, Z)"))
        assert a == b

    def test_canonical_goal_keeps_sharing(self):
        a = canonical_goal(parse_term("f(X, X)"))
        b = canonical_goal(parse_term("f(X, Y)"))
        assert a != b


class TestWeightedBounds:
    def test_bounds_accumulate_weights(self, figure1):
        weights = {(-1, 0, 0): 1.0, (-1, 0, 1): 5.0}

        def wf(key: ArcKey) -> float:
            return weights.get(key.key, 2.0)

        tree = OrTree(figure1, "gf(sam, G)", weight_fn=wf)
        children = tree.expand(0)
        assert tree.node(children[0]).bound == 1.0
        assert tree.node(children[1]).bound == 5.0
        grand = tree.expand(children[0])
        assert tree.node(grand[0]).bound == 3.0

    def test_bound_monotone_everywhere(self, figure1):
        tree = OrTree(figure1, "gf(sam, G)", weight_fn=lambda k: 1.0)
        tree.expand_all()
        for node in tree.nodes:
            if node.parent is not None:
                assert node.bound >= tree.node(node.parent).bound


class TestBuiltinsInTree:
    def test_deterministic_builtin_single_child(self):
        p = Program.from_source("double(X, Y) :- Y is X * 2.")
        tree = OrTree(p, "double(3, R)")
        tree.expand_all()
        sols = tree.solutions()
        assert len(sols) == 1
        assert str(tree.solution_answer(sols[0])["R"]) == "6"

    def test_between_fans_out(self):
        p = Program.from_source("pick(X) :- between(1, 3, X).")
        tree = OrTree(p, "pick(X)")
        tree.expand_all()
        assert len(tree.solutions()) == 3

    def test_failing_builtin_marks_failure(self):
        p = Program.from_source("bad(X) :- X > 100.")
        tree = OrTree(p, "bad(5)")
        tree.expand_all()
        assert len(tree.solutions()) == 0
        assert len(tree.failures()) == 1

    def test_builtin_arcs_have_builtin_keys(self):
        p = Program.from_source("double(X, Y) :- Y is X * 2.")
        tree = OrTree(p, "double(3, R)")
        tree.expand_all()
        kinds = {a.key.kind for a in tree.arcs}
        assert "builtin" in kinds


class TestLimits:
    def test_depth_cutoff_counts(self):
        p = Program.from_source("loop(X) :- loop(X).\nloop(done).")
        tree = OrTree(p, "loop(W)", max_depth=5)
        tree.expand_all()
        assert tree.depth_cutoffs > 0

    def test_expand_all_node_limit(self):
        p = Program.from_source("b(X) :- b(X).\nb(X) :- b(X).\nb(leaf).")
        tree = OrTree(p, "b(W)", max_depth=64)
        with pytest.raises(RuntimeError):
            tree.expand_all(limit=100)

    def test_expand_terminal_node_is_noop(self, figure1):
        tree = OrTree(figure1, "gf(sam, G)")
        tree.expand_all()
        sol = tree.solutions()[0]
        assert tree.expand(sol.nid) == []

    def test_expand_twice_returns_same_children(self, figure1):
        tree = OrTree(figure1, "gf(sam, G)")
        first = tree.expand(0)
        again = tree.expand(0)
        assert first == again
        assert tree.expansions == 1


class TestEmptyAndGroundQueries:
    def test_ground_query_solution(self, figure1):
        tree = OrTree(figure1, "gf(sam, den)")
        tree.expand_all()
        assert len(tree.solutions()) == 1
        assert tree.solution_answer(tree.solutions()[0]) == {}

    def test_no_match_immediate_failure(self, figure1):
        tree = OrTree(figure1, "nosuch(a)")
        tree.expand(0)
        assert tree.root.status is NodeStatus.FAILURE


class TestCopyAccounting:
    def test_words_copied_accumulates(self, figure1):
        tree = OrTree(figure1, "gf(sam, G)")
        assert tree.words_copied == 0
        tree.expand_all()
        assert tree.words_copied > 0

    def test_deeper_chains_copy_more(self):
        from repro.workloads import comb_tree

        shallow = comb_tree(teeth=2, tooth_depth=2)
        deep = comb_tree(teeth=2, tooth_depth=8)
        t1 = OrTree(shallow.program, shallow.query, max_depth=32)
        t1.expand_all()
        t2 = OrTree(deep.program, deep.query, max_depth=32)
        t2.expand_all()
        assert t2.words_copied > t1.words_copied
