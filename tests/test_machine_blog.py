"""Integration tests for the assembled B-LOG machine simulation."""

import pytest

from repro.linkdb import LinkedDatabase
from repro.machine import BLogMachine, MachineConfig
from repro.ortree import OrTree
from repro.spd import SemanticPagingDisk
from repro.weights import WeightStore
from repro.workloads import synthetic_tree


def machine_run(program, query, n=2, m=2, disk=None, store=None, **cfg):
    config = MachineConfig(n_processors=n, tasks_per_processor=m, **cfg)
    weight_fn = store.weight_fn() if store is not None else None
    tree = OrTree(program, query, weight_fn=weight_fn, max_depth=64)
    return BLogMachine(config, disk=disk, store=store).run(tree)


class TestCorrectness:
    def test_figure1_answers(self, figure1):
        res = machine_run(figure1, "gf(sam, G)")
        assert sorted(str(a["G"]) for a in res.answers) == ["den", "doug"]

    def test_all_solutions_any_processor_count(self):
        wl = synthetic_tree(branching=3, depth=3, dead_fraction=0.34, seed=7)
        expected = wl.n_solutions
        for n in (1, 2, 5):
            res = machine_run(wl.program, wl.query, n=n)
            assert len(res.answers) == expected

    def test_max_solutions_stops_early(self):
        wl = synthetic_tree(branching=3, depth=3, seed=8)
        full = machine_run(wl.program, wl.query, n=2)
        res = machine_run(wl.program, wl.query, n=2, max_solutions=2)
        assert len(res.answers) >= 2
        assert res.expansions < full.expansions

    def test_failed_query(self, figure1):
        res = machine_run(figure1, "gf(john, G)")
        assert res.answers == []
        assert res.failures >= 1


class TestSpeedup:
    def test_bushy_tree_speeds_up(self):
        wl = synthetic_tree(branching=3, depth=4, seed=9)
        t1 = machine_run(wl.program, wl.query, n=1).makespan
        t4 = machine_run(wl.program, wl.query, n=4).makespan
        assert t4 < t1
        assert t1 / t4 > 2.0

    def test_single_processor_full_utilization(self):
        wl = synthetic_tree(branching=2, depth=4, seed=10)
        res = machine_run(wl.program, wl.query, n=1, m=1)
        assert res.per_processor_utilization[0] > 0.9

    def test_utilization_drops_with_overprovisioning(self):
        wl = synthetic_tree(branching=2, depth=3, seed=11)
        r2 = machine_run(wl.program, wl.query, n=2)
        r16 = machine_run(wl.program, wl.query, n=16)
        assert r16.mean_utilization < r2.mean_utilization

    def test_expansions_counted_per_processor(self):
        wl = synthetic_tree(branching=3, depth=3, seed=12)
        res = machine_run(wl.program, wl.query, n=3)
        assert sum(res.per_processor_expansions) == res.expansions


class TestMigration:
    def test_work_spreads_from_seed_processor(self):
        wl = synthetic_tree(branching=4, depth=4, seed=13)
        res = machine_run(wl.program, wl.query, n=4, d=2.0)
        assert res.migrations > 0
        busy = [e for e in res.per_processor_expansions if e > 0]
        assert len(busy) >= 2

    def test_huge_d_blocks_steady_state_migration(self):
        """With D enormous, only idle processors pull work; busy ones
        never rebalance — traffic stays lower than with D=0."""
        wl = synthetic_tree(branching=3, depth=4, seed=14)
        greedy = machine_run(wl.program, wl.query, n=4, d=0.0)
        frozen = machine_run(wl.program, wl.query, n=4, d=1e9)
        assert frozen.network_transfers <= greedy.network_transfers

    def test_network_words_accounted(self):
        wl = synthetic_tree(branching=3, depth=4, seed=15)
        res = machine_run(wl.program, wl.query, n=4)
        if res.migrations:
            assert res.network_words_moved > 0
            assert res.network_transfers == res.migrations


class TestDiskIntegration:
    def test_disk_adds_latency(self, figure1):
        db = LinkedDatabase(figure1)
        nodisk = machine_run(figure1, "gf(sam, G)", n=1)
        disk = SemanticPagingDisk(db, n_sps=2, track_words=64)
        withdisk = machine_run(figure1, "gf(sam, G)", n=1, disk=disk)
        assert withdisk.makespan > nodisk.makespan
        assert withdisk.disk_cycles > 0

    def test_local_memory_caches_pages(self, figure1):
        db = LinkedDatabase(figure1)
        disk = SemanticPagingDisk(db, n_sps=2, track_words=64)
        res = machine_run(figure1, "gf(sam, G)", n=1, disk=disk)
        assert res.local_memory_hit_rate > 0.0

    def test_answers_unchanged_by_disk(self, figure1):
        db = LinkedDatabase(figure1)
        disk = SemanticPagingDisk(db, n_sps=2, track_words=64)
        res = machine_run(figure1, "gf(sam, G)", n=2, disk=disk)
        assert sorted(str(a["G"]) for a in res.answers) == ["den", "doug"]


class TestWeightIntegration:
    def test_machine_learns_weights(self, figure1):
        store = WeightStore(n=8, a=8)
        res = machine_run(figure1, "gf(sam, G)", n=2, store=store)
        assert len(res.answers) == 2
        assert len(store) > 0  # updates applied

    def test_warm_store_shrinks_first_solution_work(self, figure1):
        store = WeightStore(n=8, a=8)
        machine_run(figure1, "gf(sam, G)", n=1, store=store)
        cold_store = WeightStore(n=8, a=8)
        cold = machine_run(
            figure1, "gf(sam, G)", n=1, store=cold_store, max_solutions=1
        )
        warm = machine_run(
            figure1, "gf(sam, G)", n=1, store=store, max_solutions=1
        )
        assert warm.expansions <= cold.expansions


class TestScoreboardCosting:
    def test_scoreboard_mode_runs(self, figure1):
        res = machine_run(figure1, "gf(sam, G)", n=2, use_scoreboard=True)
        assert sorted(str(a["G"]) for a in res.answers) == ["den", "doug"]
        assert res.makespan > 0


class TestConfigValidation:
    def test_bad_config(self):
        with pytest.raises(ValueError):
            MachineConfig(n_processors=0)
        with pytest.raises(ValueError):
            MachineConfig(d=-1)

    def test_expansion_budget_stops_machine(self):
        wl = synthetic_tree(branching=3, depth=5, seed=16)
        res = machine_run(wl.program, wl.query, n=2, max_expansions=20)
        assert res.expansions <= 22  # small overshoot from in-flight tasks


class TestDiskContention:
    def test_contention_increases_makespan(self):
        """One SP serving many tasks queues page-ins; turning the model
        off collapses the queueing delay."""
        wl = synthetic_tree(branching=3, depth=4, seed=99)

        def run(contention: bool) -> float:
            db = LinkedDatabase(wl.program)
            disk = SemanticPagingDisk(db, n_sps=1, track_words=64)
            tree = OrTree(wl.program, wl.query, max_depth=32)
            cfg = MachineConfig(
                n_processors=4,
                tasks_per_processor=2,
                memory_blocks=8,
                model_disk_contention=contention,
            )
            return BLogMachine(cfg, disk=disk).run(tree).makespan

        assert run(True) > run(False)

    def test_wider_spd_bank_relieves_contention(self):
        wl = synthetic_tree(branching=3, depth=4, seed=98)

        def run(n_sps: int) -> float:
            db = LinkedDatabase(wl.program)
            disk = SemanticPagingDisk(db, n_sps=n_sps, track_words=64)
            tree = OrTree(wl.program, wl.query, max_depth=32)
            cfg = MachineConfig(
                n_processors=4, tasks_per_processor=2, memory_blocks=8
            )
            return BLogMachine(cfg, disk=disk).run(tree).makespan

        assert run(4) <= run(1)

    def test_answers_unaffected_by_contention(self, figure1):
        db = LinkedDatabase(figure1)
        disk = SemanticPagingDisk(db, n_sps=1, track_words=64)
        tree = OrTree(figure1, "gf(sam, G)", max_depth=32)
        cfg = MachineConfig(n_processors=3, model_disk_contention=True)
        res = BLogMachine(cfg, disk=disk).run(tree)
        assert sorted(str(a["G"]) for a in res.answers) == ["den", "doug"]


class TestAdaptiveD:
    def test_disabled_by_default(self):
        wl = synthetic_tree(branching=3, depth=4, seed=97)
        res = machine_run(wl.program, wl.query, n=4, d=2.0)
        assert res.d_trajectory == []
        assert res.final_d == 2.0

    def test_controller_records_trajectory(self):
        wl = synthetic_tree(branching=3, depth=5, seed=97)
        res = machine_run(
            wl.program, wl.query, n=4, d=2.0, adaptive_d=True, adapt_window=8
        )
        assert res.d_trajectory  # at least one update fired
        assert res.final_d == res.d_trajectory[-1]

    def test_answers_unchanged_by_adaptation(self):
        wl = synthetic_tree(branching=3, depth=4, dead_fraction=0.34, seed=96)
        fixed = machine_run(wl.program, wl.query, n=4, d=2.0)
        adaptive = machine_run(
            wl.program, wl.query, n=4, d=2.0, adaptive_d=True, adapt_window=8
        )
        assert len(fixed.answers) == len(adaptive.answers)

    def test_idle_heavy_run_lowers_d(self):
        """Start with a huge D on a machine with cheap comms and many
        idle waits: the controller walks D down."""
        wl = synthetic_tree(branching=3, depth=5, seed=95)
        res = machine_run(
            wl.program, wl.query, n=8, d=1e6,
            adaptive_d=True, adapt_window=4,
        )
        assert res.final_d < 1e6


class TestCostModels:
    @pytest.mark.parametrize("model", ["simple", "scoreboard", "interpreter"])
    def test_all_cost_models_same_answers(self, figure1, model):
        res = machine_run(figure1, "gf(sam, G)", n=2, cost_model=model)
        assert sorted(str(a["G"]) for a in res.answers) == ["den", "doug"]
        assert res.makespan > 0

    def test_legacy_use_scoreboard_alias(self):
        cfg = MachineConfig(use_scoreboard=True)
        assert cfg.cost_model == "scoreboard"

    def test_invalid_cost_model(self):
        with pytest.raises(ValueError):
            MachineConfig(cost_model="vibes")

    def test_interpreter_costs_differ_from_simple(self, figure1):
        simple = machine_run(figure1, "gf(sam, G)", n=1, m=1, cost_model="simple")
        interp = machine_run(
            figure1, "gf(sam, G)", n=1, m=1, cost_model="interpreter"
        )
        assert simple.makespan != interp.makespan


class TestEventTrace:
    def test_off_by_default(self, figure1):
        res = machine_run(figure1, "gf(sam, G)")
        assert res.events == []

    def test_events_recorded_and_ordered(self):
        wl = synthetic_tree(branching=3, depth=3, seed=94)
        res = machine_run(wl.program, wl.query, n=2, record_events=True)
        assert res.events
        times = [e[0] for e in res.events]
        assert times == sorted(times)
        kinds = {e[3] for e in res.events}
        assert "pop" in kinds and "expand" in kinds and "solution" in kinds

    def test_expand_events_match_count(self):
        wl = synthetic_tree(branching=3, depth=3, seed=93)
        res = machine_run(wl.program, wl.query, n=2, record_events=True)
        expands = [e for e in res.events if e[3] == "expand"]
        assert len(expands) == res.expansions

    def test_solution_events_match_answers(self, figure1):
        res = machine_run(figure1, "gf(sam, G)", record_events=True)
        sols = [e for e in res.events if e[3] == "solution"]
        assert len(sols) == len(res.answers)
