"""Tests for store metrics and the Hanoi workload."""

import pytest

from repro.core import BLogConfig, BLogEngine
from repro.ortree import ArcKey, OrTree
from repro.weights import WeightStore, solve_weights, store_from_theory
from repro.weights.metrics import chain_bound, store_distance, store_summary
from repro.workloads import family_program
from repro.workloads.hanoi import hanoi_moves, hanoi_query, hanoi_program, solve_hanoi


def key(i):
    return ArcKey("pointer", (0, 0, i))


class TestSummary:
    def test_empty_store(self):
        s = store_summary(WeightStore())
        assert s.entries == 0

    def test_counts(self):
        store = WeightStore(n=8, a=4)
        store.set_known(key(1), 2.0)
        store.set_known(key(2), 6.0)
        store.set_infinite(key(3))
        s = store_summary(store)
        assert s.known == 2
        assert s.infinite == 1
        assert s.known_weight_sum == 8.0
        assert s.known_weight_max == 6.0
        assert s.entries == 3


class TestDistance:
    def test_identical_stores_zero(self):
        a = WeightStore(n=8, a=4)
        a.set_known(key(1), 2.0)
        assert store_distance(a, a.copy()) == 0.0

    def test_empty_stores_zero(self):
        assert store_distance(WeightStore(), WeightStore()) == 0.0

    def test_known_difference(self):
        a, b = WeightStore(n=8, a=4), WeightStore(n=8, a=4)
        a.set_known(key(1), 2.0)
        b.set_known(key(1), 6.0)
        assert store_distance(a, b) == pytest.approx(4.0)

    def test_symmetry(self):
        a, b = WeightStore(n=8, a=4), WeightStore(n=8, a=4)
        a.set_known(key(1), 1.0)
        b.set_infinite(key(2))
        assert store_distance(a, b) == store_distance(b, a)

    def test_session_learning_approaches_theory(self):
        """The E3 claim as a unit test: distance to the theoretical
        store shrinks from cold to learned."""
        program = family_program()
        tree = OrTree(program, "gf(sam, G)", arc_key_policy="pointer")
        tree.expand_all()
        theory = store_from_theory(solve_weights(tree, target=8.0), n=8.0, a=16)
        cold = WeightStore(n=8, a=16)
        eng = BLogEngine(program, BLogConfig(n=8, a=16))
        eng.begin_session()
        for _ in range(3):
            eng.query("gf(sam, G)")
        learned = eng.store
        assert store_distance(learned, theory) < store_distance(cold, theory)


class TestChainBound:
    def test_sums_non_builtin(self):
        store = WeightStore(n=8, a=4)
        store.set_known(key(1), 3.0)
        keys = [key(1), ArcKey("builtin", (("is", 2),)), key(2)]
        # key(2) unknown -> N+1 = 9
        assert chain_bound(store, keys) == pytest.approx(12.0)


class TestHanoi:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 5])
    def test_move_count(self, n):
        assert len(solve_hanoi(n)) == hanoi_moves(n)

    def test_three_disc_sequence(self):
        moves = solve_hanoi(2)
        assert moves == [
            ("left", "middle"),
            ("left", "right"),
            ("middle", "right"),
        ]

    def test_single_solution(self):
        from repro.logic import Solver

        solver = Solver(hanoi_program(), max_depth=128)
        assert len(solver.solve_all(hanoi_query(3))) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            solve_hanoi(-1)

    def test_moves_are_legal(self):
        """Replay the moves on actual peg stacks."""
        n = 4
        pegs = {"left": list(range(n, 0, -1)), "middle": [], "right": []}
        for src, dst in solve_hanoi(n):
            disc = pegs[src].pop()
            assert not pegs[dst] or pegs[dst][-1] > disc
            pegs[dst].append(disc)
        assert pegs["right"] == list(range(n, 0, -1))
