"""Tests for the durable weight-store layer (repro.weights.wal).

The WAL's contract is exact: a record acknowledged (``append``/
``log_merge`` returned) survives any crash; a torn final record — the
signature of a crash *during* an append — is dropped silently; interior
corruption is refused loudly; replay is idempotent under re-delivery
and under a crash between snapshot-replace and journal-truncate.
"""

from __future__ import annotations

import json
import struct
import zlib

import pytest

from repro.ortree import ArcKey
from repro.weights import WeightStore
from repro.weights.persist import (
    StoreCorruptError,
    load_store,
    save_store,
    store_delta,
)
from repro.weights.wal import DurableStore, WalCorruptError, WeightWal


def key(i: int) -> ArcKey:
    return ArcKey("pointer", (i, 0, i + 1))


def entries(store: WeightStore) -> dict:
    return {k: store.entry(k) for k in store.keys()}


def learned_delta(store: WeightStore, n: int = 3, offset: int = 0) -> dict:
    """Mutate ``store`` like a merge would and return the acked delta."""
    since = store.generation
    for i in range(n):
        store.set_known(key(offset + i), 1.0 + i)
    return store_delta(store, since=since)


class TestWalFraming:
    def test_append_scan_roundtrip(self, tmp_path):
        wal = WeightWal(tmp_path / "wal.log")
        wal.append({"session": "a", "generation": 1, "delta": {"x": 1}})
        wal.append({"session": "b", "generation": 2, "delta": {"x": 2}})
        wal.close()
        records, offset, torn = WeightWal(tmp_path / "wal.log").scan()
        assert [r["seq"] for r in records] == [1, 2]
        assert [r["session"] for r in records] == ["a", "b"]
        assert not torn
        assert offset == (tmp_path / "wal.log").stat().st_size

    def test_torn_final_record_dropped(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WeightWal(path)
        wal.append({"session": "a", "generation": 1, "delta": {}})
        wal.append({"session": "b", "generation": 2, "delta": {}})
        wal.close()
        data = path.read_bytes()
        path.write_bytes(data[:-3])  # crash mid-append of the final frame
        records, offset, torn = WeightWal(path).scan()
        assert [r["session"] for r in records] == ["a"]
        assert torn
        assert offset < len(data) - 3

    def test_torn_header_dropped(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WeightWal(path)
        wal.append({"session": "a", "generation": 1, "delta": {}})
        wal.close()
        with open(path, "ab") as fh:
            fh.write(b"\x00\x00")  # 2 of 8 header bytes made it out
        records, _, torn = WeightWal(path).scan()
        assert len(records) == 1 and torn

    def test_interior_corruption_refused(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WeightWal(path)
        wal.append({"session": "a", "generation": 1, "delta": {}})
        first_end = path.stat().st_size
        wal.append({"session": "b", "generation": 2, "delta": {}})
        wal.close()
        data = bytearray(path.read_bytes())
        data[12] ^= 0xFF  # flip a payload byte of the FIRST record
        path.write_bytes(bytes(data))
        assert first_end < len(data)
        with pytest.raises(WalCorruptError, match="refusing to replay"):
            WeightWal(path).scan()

    def test_corrupt_tail_counts_as_torn(self, tmp_path):
        # a bad checksum on the very last frame is indistinguishable from
        # a partially overwritten append: dropped, not fatal
        path = tmp_path / "wal.log"
        wal = WeightWal(path)
        wal.append({"session": "a", "generation": 1, "delta": {}})
        wal.append({"session": "b", "generation": 2, "delta": {}})
        wal.close()
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        records, _, torn = WeightWal(path).scan()
        assert [r["session"] for r in records] == ["a"] and torn

    def test_frame_layout_is_len_crc_payload(self, tmp_path):
        # pin the on-disk format: 4-byte BE length, 4-byte BE crc32, JSON
        path = tmp_path / "wal.log"
        wal = WeightWal(path)
        wal.append({"session": "s", "generation": 3, "delta": {}})
        wal.close()
        raw = path.read_bytes()
        length, crc = struct.unpack_from(">II", raw, 0)
        payload = raw[8 : 8 + length]
        assert zlib.crc32(payload) == crc
        assert json.loads(payload)["generation"] == 3

    def test_seq_monotonic_across_reset(self, tmp_path):
        wal = WeightWal(tmp_path / "wal.log")
        wal.append({"session": "a", "generation": 1, "delta": {}})
        wal.reset()
        assert wal.size_bytes() == 0
        seq = wal.append({"session": "b", "generation": 2, "delta": {}})
        assert seq == 2  # never reused: the snapshot seq guard depends on it
        wal.close()


class TestDurableStoreRecovery:
    def test_empty_dir_recovers_empty(self, tmp_path):
        store, info = DurableStore(tmp_path / "p", n=8, a=16).recover()
        assert len(list(store.keys())) == 0
        assert not info.snapshot_loaded and info.records_replayed == 0

    def test_journal_only_replay(self, tmp_path):
        live = WeightStore(n=8, a=16)
        ds = DurableStore(tmp_path / "p", n=8, a=16)
        ds.log_merge("s1", live.generation + 3, learned_delta(live))
        ds.log_merge("s2", live.generation + 3, learned_delta(live, offset=10))
        ds.close()
        recovered, info = DurableStore(tmp_path / "p", n=8, a=16).recover()
        assert entries(recovered) == entries(live)
        assert recovered.generation == live.generation
        assert info.records_replayed == 2 and info.records_skipped == 0

    def test_snapshot_plus_tail(self, tmp_path):
        live = WeightStore(n=8, a=16)
        ds = DurableStore(tmp_path / "p", n=8, a=16)
        ds.log_merge("s1", 0, learned_delta(live))
        ds.checkpoint(live)
        assert ds.wal.size_bytes() == 0  # compacted
        ds.log_merge("s2", live.generation + 3, learned_delta(live, offset=10))
        ds.close()
        recovered, info = DurableStore(tmp_path / "p", n=8, a=16).recover()
        assert entries(recovered) == entries(live)
        assert info.snapshot_loaded and info.records_replayed == 1

    def test_replay_is_idempotent_per_session_generation(self, tmp_path):
        # the same (session, generation) record delivered twice — a retry
        # after a lost ack — is applied once and counted as skipped
        live = WeightStore(n=8, a=16)
        delta = learned_delta(live)
        gen = live.generation
        ds = DurableStore(tmp_path / "p", n=8, a=16)
        ds.log_merge("s1", gen, delta)
        ds.log_merge("s1", gen, delta)  # duplicate delivery
        ds.close()
        recovered, info = DurableStore(tmp_path / "p", n=8, a=16).recover()
        assert entries(recovered) == entries(live)
        assert info.records_replayed == 1 and info.records_skipped == 1

    def test_crash_between_snapshot_and_truncate(self, tmp_path):
        # snapshot written, journal NOT yet truncated (the crash window in
        # write_checkpoint): replay must skip the covered records by seq
        live = WeightStore(n=8, a=16)
        ds = DurableStore(tmp_path / "p", n=8, a=16)
        ds.log_merge("s1", live.generation + 3, learned_delta(live))
        snap = ds.prepare_checkpoint(live)
        # simulate the crash: write the snapshot file but skip the truncate
        ds.snapshot_path.write_text(json.dumps(snap))
        ds.close()
        recovered, info = DurableStore(tmp_path / "p", n=8, a=16).recover()
        assert entries(recovered) == entries(live)
        assert info.records_replayed == 0 and info.records_skipped == 1

    def test_recovery_restores_generation(self, tmp_path):
        live = WeightStore(n=8, a=16)
        ds = DurableStore(tmp_path / "p", n=8, a=16)
        for i in range(4):
            ds.log_merge(f"s{i}", live.generation + 3, learned_delta(live, offset=i * 5))
        ds.checkpoint(live)
        ds.close()
        recovered, _ = DurableStore(tmp_path / "p", n=8, a=16).recover()
        # a fresh merge after recovery must get a NEW generation, or the
        # (session, generation) dedupe would silently drop it on replay
        assert recovered.generation == live.generation

    def test_torn_tail_truncated_on_recovery(self, tmp_path):
        live = WeightStore(n=8, a=16)
        ds = DurableStore(tmp_path / "p", n=8, a=16)
        ds.log_merge("s1", live.generation + 3, learned_delta(live))
        ds.close()
        path = tmp_path / "p" / "wal.log"
        good = path.read_bytes()
        path.write_bytes(good + b"\x00\x01\x02")  # torn append after s1
        ds2 = DurableStore(tmp_path / "p", n=8, a=16)
        recovered, info = ds2.recover()
        assert info.torn_tail and info.records_replayed == 1
        # the torn bytes are gone: the next append lands on a clean tail
        ds2.log_merge("s2", live.generation + 6, learned_delta(live, offset=10))
        ds2.close()
        records, _, torn = WeightWal(path).scan()
        assert not torn and [r["session"] for r in records] == ["s1", "s2"]

    def test_corrupt_snapshot_raises_store_corrupt(self, tmp_path):
        ds = DurableStore(tmp_path / "p", n=8, a=16)
        ds.snapshot_path.write_text('{"format": "blog-wal-snapshot-v1", "sto')
        with pytest.raises(StoreCorruptError, match="snapshot"):
            ds.recover()

    def test_wrong_snapshot_format_raises(self, tmp_path):
        ds = DurableStore(tmp_path / "p", n=8, a=16)
        ds.snapshot_path.write_text('{"format": "blog-weights-v1"}')
        with pytest.raises(StoreCorruptError, match="format"):
            ds.recover()

    def test_checkpoint_keeps_journal_when_appends_raced_in(self, tmp_path):
        # an append lands between prepare and write: truncation is skipped
        # (seq mismatch) and recovery still sees everything exactly once
        live = WeightStore(n=8, a=16)
        ds = DurableStore(tmp_path / "p", n=8, a=16)
        ds.log_merge("s1", live.generation + 3, learned_delta(live))
        payload = ds.prepare_checkpoint(live)
        ds.log_merge("s2", live.generation + 3, learned_delta(live, offset=10))
        ds.write_checkpoint(payload)
        assert ds.wal.size_bytes() > 0  # s2's record survived the checkpoint
        ds.close()
        recovered, info = DurableStore(tmp_path / "p", n=8, a=16).recover()
        assert entries(recovered) == entries(live)
        assert info.records_replayed == 1  # only s2; s1 came from the snapshot


class TestAtomicSaveStore:
    def test_save_leaves_no_tmp_file(self, tmp_path):
        store = WeightStore(n=8, a=16)
        store.set_known(key(1), 2.0)
        path = tmp_path / "w.json"
        save_store(store, path)
        assert load_store(path).weight(key(1)) == 2.0
        assert list(tmp_path.iterdir()) == [path]  # tmp file replaced away

    def test_save_overwrites_previous(self, tmp_path):
        path = tmp_path / "w.json"
        a = WeightStore(n=8, a=16)
        a.set_known(key(1), 1.0)
        save_store(a, path)
        b = WeightStore(n=8, a=16)
        b.set_known(key(2), 2.0)
        save_store(b, path)
        loaded = load_store(path)
        assert loaded.weight(key(2)) == 2.0
        assert entries(loaded) == entries(b)

    def test_truncated_json_raises_store_corrupt(self, tmp_path):
        path = tmp_path / "w.json"
        store = WeightStore(n=8, a=16)
        store.set_known(key(1), 2.0)
        save_store(store, path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(StoreCorruptError, match="truncated or damaged"):
            load_store(path)

    def test_wrong_shape_raises_store_corrupt(self, tmp_path):
        path = tmp_path / "w.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(StoreCorruptError, match="JSON object"):
            load_store(path)
        path.write_text('{"format": "blog-weights-v1"}')  # missing fields
        with pytest.raises(StoreCorruptError, match="structurally invalid"):
            load_store(path)

    def test_error_names_the_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{")
        with pytest.raises(StoreCorruptError, match="broken.json"):
            load_store(path)
