"""Unit tests for sessions and the conservative merge (§5)."""

import pytest

from repro.ortree import ArcKey
from repro.weights import (
    SessionManager,
    WeightState,
    WeightStore,
    merge_conservative,
    merge_strong,
)


def key(i):
    return ArcKey("pointer", (0, 0, i))


class TestConservativeMerge:
    def test_unknown_local_leaves_global(self):
        g, l = WeightStore(), WeightStore()
        g.set_known(key(1), 3.0)
        report = merge_conservative(g, l)
        assert g.weight(key(1)) == 3.0
        assert report.adopted == report.averaged == 0

    def test_adopt_known_into_unknown(self):
        g, l = WeightStore(), WeightStore()
        l.set_known(key(1), 4.0)
        report = merge_conservative(g, l)
        assert g.weight(key(1)) == 4.0
        assert report.adopted == 1

    def test_adopt_infinity_into_unknown(self):
        g, l = WeightStore(), WeightStore()
        l.set_infinite(key(1))
        report = merge_conservative(g, l)
        assert g.is_infinite(key(1))
        assert report.adopted == 1

    def test_infinity_never_overrides_known(self):
        """The paper's explicit rule: 'no infinities will override
        previous non-infinite weights'."""
        g, l = WeightStore(), WeightStore()
        g.set_known(key(1), 2.0)
        l.set_infinite(key(1))
        report = merge_conservative(g, l)
        assert g.is_known(key(1))
        assert g.weight(key(1)) == 2.0
        assert report.suppressed_infinities == 1

    def test_known_blend_averages(self):
        g, l = WeightStore(), WeightStore()
        g.set_known(key(1), 2.0)
        l.set_known(key(1), 6.0)
        report = merge_conservative(g, l, alpha=0.5)
        assert g.weight(key(1)) == pytest.approx(4.0)
        assert report.averaged == 1

    def test_alpha_one_adopts_local(self):
        g, l = WeightStore(), WeightStore()
        g.set_known(key(1), 2.0)
        l.set_known(key(1), 6.0)
        merge_conservative(g, l, alpha=1.0)
        assert g.weight(key(1)) == pytest.approx(6.0)

    def test_success_retracts_global_infinity(self):
        g, l = WeightStore(), WeightStore()
        g.set_infinite(key(1))
        l.set_known(key(1), 1.0)
        report = merge_conservative(g, l)
        assert g.is_known(key(1))
        assert report.retracted == 1

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            merge_conservative(WeightStore(), WeightStore(), alpha=0.0)
        with pytest.raises(ValueError):
            merge_conservative(WeightStore(), WeightStore(), alpha=1.5)

    def test_both_infinite_unchanged(self):
        g, l = WeightStore(), WeightStore()
        g.set_infinite(key(1))
        l.set_infinite(key(1))
        report = merge_conservative(g, l)
        assert g.is_infinite(key(1))
        assert report.unchanged == 1


class TestStrongMerge:
    def test_infinity_overrides_known(self):
        g, l = WeightStore(), WeightStore()
        g.set_known(key(1), 2.0)
        l.set_infinite(key(1))
        merge_strong(g, l)
        assert g.is_infinite(key(1))

    def test_local_known_wins(self):
        g, l = WeightStore(), WeightStore()
        g.set_known(key(1), 2.0)
        l.set_known(key(1), 9.0)
        merge_strong(g, l)
        assert g.weight(key(1)) == 9.0


class TestSessionManager:
    def test_begin_copies_global(self):
        mgr = SessionManager(WeightStore(n=8, a=4))
        mgr.global_store.set_known(key(1), 3.0)
        local = mgr.begin_session()
        assert local.weight(key(1)) == 3.0
        local.set_known(key(1), 5.0)
        assert mgr.global_store.weight(key(1)) == 3.0  # untouched

    def test_active_store_switches(self):
        mgr = SessionManager()
        assert mgr.active is mgr.global_store
        mgr.begin_session()
        assert mgr.active is mgr.local
        mgr.end_session()
        assert mgr.active is mgr.global_store

    def test_end_merges_and_counts(self):
        mgr = SessionManager(WeightStore(n=8, a=4), alpha=0.5)
        local = mgr.begin_session()
        local.set_known(key(1), 4.0)
        report = mgr.end_session()
        assert mgr.global_store.weight(key(1)) == 4.0
        assert mgr.sessions_completed == 1
        assert mgr.merge_reports == [report]

    def test_nested_session_rejected(self):
        mgr = SessionManager()
        mgr.begin_session()
        with pytest.raises(RuntimeError):
            mgr.begin_session()

    def test_end_without_begin_rejected(self):
        with pytest.raises(RuntimeError):
            SessionManager().end_session()

    def test_abort_discards(self):
        mgr = SessionManager(WeightStore(n=8, a=4))
        local = mgr.begin_session()
        local.set_known(key(1), 4.0)
        mgr.abort_session()
        assert key(1) not in mgr.global_store
        assert not mgr.in_session

    def test_non_conservative_end(self):
        mgr = SessionManager(WeightStore(n=8, a=4))
        mgr.global_store.set_known(key(1), 2.0)
        local = mgr.begin_session()
        local.set_infinite(key(1))
        mgr.end_session(conservative=False)
        assert mgr.global_store.is_infinite(key(1))

    def test_averaging_across_sessions_converges(self):
        """Repeated sessions reporting the same local value pull the
        global weight toward it geometrically."""
        mgr = SessionManager(WeightStore(n=16, a=4), alpha=0.5)
        mgr.global_store.set_known(key(1), 0.0)
        for _ in range(6):
            local = mgr.begin_session()
            local.set_known(key(1), 8.0)
            mgr.end_session()
        assert mgr.global_store.weight(key(1)) == pytest.approx(8.0, abs=0.2)
