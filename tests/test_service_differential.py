"""Differential testing: thread lanes and process lanes must be twins.

The process backend re-implements the whole session lifecycle over IPC
— mirror sync on open, touched-keys delta on close — so the strongest
correctness statement available is *equivalence*: run the identical
seeded workload on both backends and demand

* identical answer multisets for every request, and
* identical post-merge global weight stores, entry for entry
  (generation counters aside — the two backends bump them on
  different events).

Anything the delta path drops, duplicates, or mis-merges shows up here
as a store diff; answers diverge if the child-side engine sees
different weights than the in-process one would.
"""

import asyncio
import random

import pytest

from repro.service import BLogService, QueryRequest
from repro.weights.store import WeightState
from repro.workloads import family_program, nrev_program

FAMILY_QUERIES = [
    "gf(sam, G)",
    "gf(curt, G)",
    "f(sam, Y)",
    "f(larry, Y)",
    "gm(bertha, G)",
]
NREV_QUERY = "nrev([a,b,c,d,e], R)"


def build_plan(seed: int, n_sessions: int = 6, queries_per_session: int = 8):
    """A deterministic mixed workload: each session gets an ordered
    query list drawn from a seeded RNG (identical for both backends)."""
    rng = random.Random(seed)
    plan = {}
    for s in range(n_sessions):
        session = f"diff{s}"
        qs = []
        for _ in range(queries_per_session):
            if rng.random() < 0.2:
                qs.append(("nrev", NREV_QUERY))
            else:
                qs.append(("family", rng.choice(FAMILY_QUERIES)))
        plan[session] = qs
    return plan


async def run_workload(backend: str, plan: dict, conservative: bool = True):
    """Run one backend over the plan; return per-request answer
    multisets and the final global store snapshots."""
    svc = BLogService(
        {"family": family_program(), "nrev": nrev_program()},
        n_workers=3,
        max_pending=256,
        backend=backend,
    )
    await svc.start()
    try:
        answers = {}

        async def session_task(session, queries):
            # queries of one session run in order (the affinity
            # contract); distinct sessions run concurrently
            for i, (prog, q) in enumerate(queries):
                resp = await svc.submit(
                    QueryRequest(prog, q, session=session, cache=False)
                )
                assert resp.ok, f"{backend} {session}#{i} failed: {resp.error}"
                answers[(session, i)] = sorted(
                    tuple(sorted(a.items())) for a in resp.answers
                )

        await asyncio.gather(
            *[session_task(s, qs) for s, qs in sorted(plan.items())]
        )

        # merge deterministically: one session at a time, sorted order
        for session in sorted(plan):
            for prog in ("family", "nrev"):
                await svc.end_session(prog, session, conservative=conservative)

        stores = {
            name: entry.global_store for name, entry in svc.programs.items()
        }
        snapshots = {
            name: {
                key: (e.state, e.value)
                for key, e in store.snapshot().items()
                if e.state is not WeightState.UNKNOWN
            }
            for name, store in stores.items()
        }
        generations = {name: s.generation for name, s in stores.items()}
        return answers, snapshots, generations
    finally:
        await svc.stop()


@pytest.mark.parametrize("seed", [11, 97])
def test_backends_are_answer_and_store_identical(seed):
    plan = build_plan(seed)

    async def body():
        t = await run_workload("thread", plan)
        p = await run_workload("process", plan)
        return t, p

    (t_answers, t_stores, t_gens), (p_answers, p_stores, p_gens) = (
        asyncio.run(body())
    )

    # identical answer multisets, request for request
    assert set(t_answers) == set(p_answers)
    for key in sorted(t_answers):
        assert t_answers[key] == p_answers[key], f"answers diverge at {key}"

    # identical post-merge global stores, entry for entry
    assert set(t_stores) == set(p_stores)
    for name in t_stores:
        assert t_stores[name] == p_stores[name], (
            f"global store {name!r} diverges between backends"
        )
        # both backends actually learned something about family
        if name == "family":
            assert len(t_stores[name]) > 0
            assert t_gens[name] > 0 and p_gens[name] > 0


def test_backends_identical_under_strong_merge():
    """Same equivalence with conservative=False (adopt-all merges) —
    exercises the merge_strong path of close_remote."""
    plan = build_plan(23, n_sessions=4, queries_per_session=5)

    async def body():
        t = await run_workload("thread", plan, conservative=False)
        p = await run_workload("process", plan, conservative=False)
        return t, p

    (t_answers, t_stores, _), (p_answers, p_stores, _) = asyncio.run(body())
    assert t_answers == p_answers
    assert t_stores == p_stores
