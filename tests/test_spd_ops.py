"""Unit tests for semantic paging (MIMD mode) and the fixed pager."""

import pytest

import networkx as nx

from repro.linkdb import LinkedDatabase
from repro.spd import FixedPager, SemanticPagingDisk, database_records
from repro.workloads import scaled_family


@pytest.fixture
def db(figure1):
    return LinkedDatabase(figure1)


class TestRecords:
    def test_one_record_per_block(self, db):
        recs = database_records(db)
        assert len(recs) == len(db)
        assert [r.block_id for r in recs] == list(range(len(db)))

    def test_pointers_serialized(self, db):
        recs = database_records(db)
        rule0 = recs[0]  # gf rule 1: points at all f/2 facts twice
        assert len(rule0.pointers) == len(db.block(0).pointers)

    def test_payload_is_indicator(self, db):
        recs = database_records(db)
        assert recs[0].payload == ("gf", 2)


class TestLayout:
    def test_all_blocks_addressed(self, db):
        spd = SemanticPagingDisk(db, n_sps=2, track_words=64)
        assert set(spd.addresses) == set(range(len(db)))

    def test_track_capacity_respected(self, db):
        spd = SemanticPagingDisk(db, n_sps=1, track_words=64)
        for sp in spd.sps:
            for track in sp.tracks:
                if len(track) > 1:
                    assert track.words <= 64

    def test_oversized_block_gets_own_track(self):
        fam = scaled_family(3, 2, 2, seed=0)
        db = LinkedDatabase(fam.program)
        spd = SemanticPagingDisk(db, n_sps=1, track_words=8)  # tiny tracks
        assert set(spd.addresses) == set(range(len(db)))

    def test_striping_over_sps(self, db):
        spd = SemanticPagingDisk(db, n_sps=3, track_words=32)
        used_sps = {a.sp for a in spd.addresses.values()}
        assert len(used_sps) > 1

    def test_invalid_sp_count(self, db):
        with pytest.raises(ValueError):
            SemanticPagingDisk(db, n_sps=0)


class TestFetch:
    def test_fetch_loads_needed_tracks_once(self, db):
        spd = SemanticPagingDisk(db, n_sps=2, track_words=64)
        found, cycles = spd.fetch_blocks([0, 1])
        assert found == {0, 1}
        assert cycles > 0
        # fetching again is free (tracks cached)
        found2, cycles2 = spd.fetch_blocks([0, 1])
        assert found2 == {0, 1}
        assert cycles2 == 0.0

    def test_fetch_unknown_block_ignored(self, db):
        spd = SemanticPagingDisk(db, n_sps=2, track_words=64)
        found, _ = spd.fetch_blocks([999])
        assert found == set()


class TestPageIn:
    def test_radius_zero_is_start_set(self, db):
        spd = SemanticPagingDisk(db, n_sps=2, track_words=64)
        page = spd.page_in([0], radius=0)
        assert page.blocks == {0}

    def test_radius_one_includes_pointer_targets(self, db):
        spd = SemanticPagingDisk(db, n_sps=2, track_words=256)
        page = spd.page_in([0], radius=1)
        targets = {p.target for p in db.block(0).pointers}
        assert targets <= page.blocks

    def test_page_matches_graph_ball(self, db):
        """Semantic page = BFS ball of the pointer graph (the Hamming
        distance semantics of §6)."""
        spd = SemanticPagingDisk(db, n_sps=2, track_words=128)
        g = db.as_graph()
        for radius in (1, 2):
            page = spd.page_in([0], radius=radius)
            ball = {0} | {
                v
                for v in g.nodes
                if nx.has_path(g, 0, v)
                and nx.shortest_path_length(g, 0, v) <= radius
            }
            assert page.blocks == ball

    def test_name_filter_restricts(self, db):
        spd = SemanticPagingDisk(db, n_sps=2, track_words=256)
        page = spd.page_in([0], radius=1, name="f")
        f_targets = {p.target for p in db.block(0).pointers if p.name == "f"}
        m_targets = {p.target for p in db.block(0).pointers if p.name == "m"}
        assert f_targets <= page.blocks
        assert not (m_targets & page.blocks)

    def test_cycles_accumulate(self, db):
        spd = SemanticPagingDisk(db, n_sps=2, track_words=64)
        page = spd.page_in([0], radius=2)
        assert page.cycles > 0
        assert page.track_loads > 0

    def test_unknown_start_block(self, db):
        spd = SemanticPagingDisk(db, n_sps=2, track_words=64)
        page = spd.page_in([999], radius=1)
        assert page.blocks == set()

    def test_combined_stats(self, db):
        spd = SemanticPagingDisk(db, n_sps=2, track_words=64)
        spd.page_in([0], radius=1)
        total = spd.combined_stats()
        assert total.track_loads >= 1
        assert total.cycles > 0


class TestFixedPager:
    def test_fault_then_hit(self, db):
        pager = FixedPager(db, blocks_per_page=4, cache_pages=2)
        assert pager.touch(0) > 0
        assert pager.touch(1) == 0.0  # same page
        assert pager.faults == 1 and pager.hits == 1

    def test_lru_eviction(self, db):
        pager = FixedPager(db, blocks_per_page=1, cache_pages=2)
        pager.touch(0)
        pager.touch(1)
        pager.touch(2)  # evicts page 0
        assert pager.touch(0) > 0
        assert pager.faults == 4

    def test_hit_rate(self, db):
        pager = FixedPager(db, blocks_per_page=8, cache_pages=4)
        pager.touch_all([0, 1, 2, 3])
        assert pager.hit_rate == pytest.approx(0.75)

    def test_bad_parameters(self, db):
        with pytest.raises(ValueError):
            FixedPager(db, blocks_per_page=0)

    def test_pointer_chase_semantic_beats_fixed(self):
        """The headline §6 comparison: chasing pointers across a large
        database, semantic paging loads far fewer times than a fixed
        pager whose pages ignore the graph structure."""
        fam = scaled_family(5, 2, 3, seed=1)
        db = LinkedDatabase(fam.program)
        spd = SemanticPagingDisk(db, n_sps=2, track_words=256)
        page = spd.page_in([0], radius=3)
        pager = FixedPager(db, blocks_per_page=4, cache_pages=2)
        pager.touch_all(sorted(page.blocks))
        # both served the same blocks; compare disk cycles
        assert page.cycles < pager.cycles


class TestLayouts:
    def test_split_layout_addresses_all_blocks(self, db):
        spd = SemanticPagingDisk(db, n_sps=4, track_words=64, layout="split")
        assert set(spd.addresses) == set(range(len(db)))

    def test_split_separates_rules_and_facts(self, db):
        spd = SemanticPagingDisk(db, n_sps=4, track_words=64, layout="split")
        rule_sps = {
            spd.addresses[b.block_id].sp for b in db if not b.is_fact
        }
        fact_sps = {spd.addresses[b.block_id].sp for b in db if b.is_fact}
        assert not (rule_sps & fact_sps)

    def test_split_same_pages_as_unified(self, db):
        unified = SemanticPagingDisk(db, n_sps=2, track_words=64)
        split = SemanticPagingDisk(db, n_sps=2, track_words=64, layout="split")
        for radius in (1, 2):
            assert (
                unified.page_in([0], radius=radius).blocks
                == split.page_in([0], radius=radius).blocks
            )

    def test_unknown_layout_rejected(self, db):
        with pytest.raises(ValueError):
            SemanticPagingDisk(db, layout="scattered")

    def test_split_single_sp_degenerates(self, db):
        spd = SemanticPagingDisk(db, n_sps=1, track_words=64, layout="split")
        assert set(spd.addresses) == set(range(len(db)))
