"""Direct unit tests for components previously only covered indirectly."""

import pytest

from repro.machine.processor import LocalMemory, ProcessorState
from repro.machine.sim import Simulator


class TestLocalMemory:
    def test_miss_then_hit(self):
        mem = LocalMemory(4)
        assert not mem.touch(1)
        mem.insert(1)
        assert mem.touch(1)
        assert mem.hits == 1 and mem.misses == 1
        assert mem.hit_rate == 0.5

    def test_lru_eviction_order(self):
        mem = LocalMemory(2)
        mem.insert(1)
        mem.insert(2)
        mem.touch(1)  # 1 is now most recent
        mem.insert(3)  # evicts 2
        assert 1 in mem and 3 in mem and 2 not in mem

    def test_insert_many(self):
        mem = LocalMemory(8)
        mem.insert_many(range(5))
        assert len(mem) == 5

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LocalMemory(0)

    def test_empty_hit_rate(self):
        assert LocalMemory(2).hit_rate == 0.0


class TestProcessorState:
    def test_pool_orders_by_bound(self):
        sim = Simulator()
        proc = ProcessorState(0, sim)
        proc.push(5.0, 10)
        proc.push(2.0, 20)
        proc.push(9.0, 30)
        assert proc.peek_min() == 2.0
        assert proc.pop_min() == (2.0, 20)
        assert proc.pop_min() == (5.0, 10)

    def test_ties_fifo(self):
        sim = Simulator()
        proc = ProcessorState(0, sim)
        proc.push(1.0, 100)
        proc.push(1.0, 200)
        assert proc.pop_min() == (1.0, 100)

    def test_empty_pool(self):
        sim = Simulator()
        proc = ProcessorState(0, sim)
        assert proc.pop_min() is None
        assert proc.peek_min() == float("inf")
        assert len(proc) == 0


class TestIfIndep:
    def test_runtime_independence_branch(self):
        from repro.andpar.cge import CgeExecutor, Goal, IfIndep, Par, Seq
        from repro.logic import Program, parse_query

        program = Program.from_source("q(1). q(2). r(a). r(b).")
        plan = IfIndep(
            left=0,
            right=1,
            then=Par((Goal(0), Goal(1))),
            otherwise=Seq((Goal(0), Goal(1))),
        )
        # independent goals: guard passes, parallel product
        goals = parse_query("q(X), r(Y)")
        rec = CgeExecutor(program).run(tuple(goals), plan)
        assert rec.guards_true == 1
        assert rec.ran_parallel
        assert len(rec.answers) == 4
        # dependent goals: guard fails, sequential
        goals2 = parse_query("q(X), r(X)")
        rec2 = CgeExecutor(program).run(tuple(goals2), plan)
        assert rec2.guards_true == 0
        assert not rec2.ran_parallel
        assert rec2.answers == []  # q and r share no values

    def test_render(self):
        from repro.andpar.cge import Goal, IfIndep, Seq

        node = IfIndep(0, 1, Goal(0), Seq((Goal(0), Goal(1))))
        assert "indep(g0,g1)" in node.render()


class TestSmallUtilities:
    def test_reset_var_counter(self):
        from repro.logic import Var, reset_var_counter

        reset_var_counter()
        v1 = Var("A")
        reset_var_counter()
        v2 = Var("B")
        assert v1.id == v2.id  # counter restarted

    def test_library_clauses_parse(self):
        from repro.logic import library_clauses

        clauses = library_clauses()
        assert len(clauses) > 20
        indicators = {c.indicator for c in clauses}
        assert ("append", 3) in indicators
        assert ("permutation", 2) in indicators

    def test_build_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["--demo"])
        assert args.engine == "blog"
        assert args.n == 16.0
        assert args.processors == 4

    def test_board_from_term_validates(self):
        from repro.logic import make_list, Atom
        from repro.workloads import board_from_term

        with pytest.raises(ValueError):
            board_from_term(make_list([Atom("x")]))
