"""Unit tests for the §7 AND-parallel extensions."""

import pytest
from typing import ClassVar

from repro.andpar import (
    AndParallelExecutor,
    clause_dependency_report,
    goal_vars,
    hash_join,
    independence_groups,
    nested_loop_join,
    runtime_groups,
    semi_join,
    semi_join_reduce,
    share_variables,
)
from repro.logic import Bindings, Program, Solver, parse_query, parse_term, unify
from repro.workloads import map_coloring_program


class TestIndependence:
    def test_disjoint_goals_independent(self):
        g1, g2 = parse_query("f(X, Y), g(A, B)")
        assert not share_variables(g1, g2)
        assert independence_groups([g1, g2]) == [[0], [1]]

    def test_shared_var_links(self):
        g1, g2 = parse_query("f(X, Y), g(Y, Z)")
        assert share_variables(g1, g2)
        assert independence_groups([g1, g2]) == [[0, 1]]

    def test_transitive_linking(self):
        goals = parse_query("f(X, Y), g(Y, Z), h(Z, W), k(Q)")
        assert independence_groups(list(goals)) == [[0, 1, 2], [3]]

    def test_ground_goals_all_independent(self):
        goals = parse_query("f(a, b), g(b, c), h(c)")
        assert independence_groups(list(goals)) == [[0], [1], [2]]

    def test_exclude_set_breaks_links(self):
        g1, g2 = parse_query("f(X, Y), g(Y, Z)")
        shared = (goal_vars(g1) & goal_vars(g2)).pop()
        groups = independence_groups([g1, g2], exclude={shared})
        assert groups == [[0], [1]]

    def test_runtime_grounding_splits_groups(self):
        """§7: dependencies disappear once the shared variable is bound."""
        g1, g2 = parse_query("f(X, Y), g(Y, Z)")
        b = Bindings()
        y = (goal_vars(g1) & goal_vars(g2)).pop()
        # ground Y at "run time"
        from repro.logic import Atom, Var

        unify(Var("Y", vid=y), Atom("mid"), b)
        assert runtime_groups([g1, g2], b) == [[0], [1]]

    def test_goal_vars_resolves_bindings(self):
        g = parse_term("f(X, Y)")
        b = Bindings()
        from repro.logic import Atom, term_vars

        x = term_vars(g)[0]
        unify(x, Atom("k"), b)
        assert len(goal_vars(g, b)) == 1


class TestClauseReport:
    def test_head_ground_assumption(self):
        p = Program.from_source(
            """
            q(X, Y) :- a(X, M), b(Y, N), c(M, N).
            r(X) :- s(X), t(X).
            """
        )
        report = clause_dependency_report(p, assume_head_ground=True)
        # clause 1: a and b share only head vars (excluded) but M,N link
        # both to c => one group; clause 2: s,t share only head var X =>
        # two singleton groups (fully parallel)
        assert report[0].groups == [[0, 1, 2]]
        assert report[1].groups == [[0], [1]]
        assert report[1].fully_parallel
        assert not report[0].fully_parallel

    def test_without_ground_assumption(self):
        p = Program.from_source("r(X) :- s(X), t(X).")
        report = clause_dependency_report(p, assume_head_ground=False)
        assert report[0].groups == [[0, 1]]
        assert report[0].fully_sequential

    def test_facts_skipped(self, figure1):
        report = clause_dependency_report(figure1)
        assert len(report) == 2  # only the two gf rules

    def test_parallel_width(self):
        p = Program.from_source("w(A) :- p(X), q(Y), r(Z).")
        report = clause_dependency_report(p)
        assert report[0].parallel_width == 3


class TestExecutor:
    def test_independent_conjunction_matches_prolog(self, figure1):
        q = "gf(sam, G1), gf(curt, G2)"
        seq = {
            (str(s["G1"]), str(s["G2"]))
            for s in Solver(figure1).solve_all(q)
        }
        ex = AndParallelExecutor(figure1)
        res = ex.run(q)
        got = {(str(a["G1"]), str(a["G2"])) for a in res.answers}
        assert got == seq
        assert res.parallel_width == 2

    def test_dependent_conjunction_matches_prolog(self, figure1):
        q = "f(sam, Y), f(Y, Z)"
        seq = {
            (str(s["Y"]), str(s["Z"])) for s in Solver(figure1).solve_all(q)
        }
        res = AndParallelExecutor(figure1).run(q)
        got = {(str(a["Y"]), str(a["Z"])) for a in res.answers}
        assert got == seq
        assert res.parallel_width == 1

    def test_empty_group_kills_product(self, figure1):
        res = AndParallelExecutor(figure1).run("gf(sam, G1), gf(john, G2)")
        assert res.answers == []

    def test_speedup_reported_for_split_queries(self, figure1):
        res = AndParallelExecutor(figure1).run("gf(sam, G1), gf(curt, G2)")
        assert res.total_inferences > 0
        assert res.critical_path_inferences <= res.total_inferences
        assert res.and_parallel_speedup >= 1.0

    def test_map_coloring_single_group(self):
        mi = map_coloring_program()
        ex = AndParallelExecutor(mi.program, max_depth=64)
        res = ex.run(mi.query)
        assert res.parallel_width == 1  # fully linked constraint graph
        assert len(res.answers) > 0

    def test_three_way_split(self, figure1):
        q = "f(sam, A), f(curt, B), f(dan, C)"
        res = AndParallelExecutor(figure1).run(q)
        assert res.parallel_width == 3
        assert len(res.answers) == 1


class TestJoins:
    L: ClassVar[list] = [("sam", "larry"), ("curt", "elain"), ("dan", "pat")]
    R: ClassVar[list] = [("larry", "den"), ("larry", "doug"), ("pat", "john"), ("zed", "x")]

    def test_nested_loop_correct(self):
        out, stats = nested_loop_join(self.L, self.R, 1, 0)
        assert len(out) == 3
        assert stats.comparisons == len(self.L) * len(self.R)

    def test_hash_join_same_result(self):
        nl, _ = nested_loop_join(self.L, self.R, 1, 0)
        hj, stats = hash_join(self.L, self.R, 1, 0)
        assert sorted(nl) == sorted(hj)
        assert stats.comparisons == len(self.L) + len(self.R)

    def test_semi_join_reduces_right(self):
        reduced, stats = semi_join_reduce(self.L, self.R, 1, 0)
        assert len(reduced) == 3  # ("zed","x") filtered out
        assert stats.marks == 3  # three distinct left keys
        assert stats.reduced_right == 3

    def test_semi_join_full_result_matches(self):
        nl, _ = nested_loop_join(self.L, self.R, 1, 0)
        sj, _ = semi_join(self.L, self.R, 1, 0)
        assert sorted(nl) == sorted(sj)

    def test_semi_join_wins_on_selective_joins(self):
        """With few matching keys and a big right relation, semi-join
        does far less work than nested loop (the §7 SPD claim)."""
        left = [("k", i) for i in range(3)]
        right = [(f"r{i}", i) for i in range(1000)] + [("k", 999)]
        _, nl = nested_loop_join(left, right, 0, 0)
        _, sj = semi_join(left, right, 0, 0)
        work_nl = nl.comparisons
        work_sj = sj.comparisons + sj.marks
        assert work_sj < work_nl / 10

    def test_empty_relations(self):
        out, stats = semi_join([], self.R, 0, 0)
        assert out == []
        assert stats.reduced_right == 0
        out2, _ = nested_loop_join(self.L, [], 1, 0)
        assert out2 == []


class TestJoinPlanOnFamily:
    def test_grandfather_as_join(self, figure1):
        """gf(sam,G) computed relationally: f(sam,Y) ⋈ f(Y,G) union
        f(sam,Y) ⋈ m(Y,G) equals the engine's answers."""
        solver = Solver(figure1)
        f_rows = [
            (str(s["A"]), str(s["B"])) for s in solver.solve_all("f(A, B)")
        ]
        m_rows = [
            (str(s["A"]), str(s["B"])) for s in solver.solve_all("m(A, B)")
        ]
        sam_rows = [r for r in f_rows if r[0] == "sam"]
        ff, _ = semi_join(sam_rows, f_rows, 1, 0)
        fm, _ = semi_join(sam_rows, m_rows, 1, 0)
        grandkids = sorted({r[1] for _, r in ff} | {r[1] for _, r in fm})
        assert grandkids == ["den", "doug"]
