"""Unit tests for the workload generators."""

import pytest

from repro.logic import Solver
from repro.workloads import (
    FIGURE1_QUERY,
    family_program,
    grid_program,
    map_coloring_program,
    nqueens_program,
    nqueens_query,
    query_sequence,
    random_digraph_program,
    scaled_family,
    solve_nqueens,
    synthetic_tree,
    comb_tree,
)


class TestFamily:
    def test_figure1_counts(self):
        p = family_program()
        assert len(p.facts()) == 10
        assert len(p.rules()) == 2

    def test_figure1_query(self):
        values = Solver(family_program()).solve_all(FIGURE1_QUERY)
        assert [str(s["G"]) for s in values] == ["den", "doug"]

    def test_scaled_family_deterministic(self):
        a = scaled_family(4, 2, 2, seed=7)
        b = scaled_family(4, 2, 2, seed=7)
        assert a.source == b.source

    def test_scaled_family_different_seeds(self):
        a = scaled_family(4, 2, 2, seed=1)
        b = scaled_family(4, 2, 2, seed=2)
        assert a.source != b.source

    def test_every_child_has_parents(self):
        fam = scaled_family(4, 3, 2, seed=0)
        for gen in fam.generations[1:]:
            for child in gen:
                assert child in fam.fathers
                assert child in fam.mothers

    def test_anc_queries_solvable(self):
        fam = scaled_family(4, 2, 2, seed=0)
        solver = Solver(fam.program, max_depth=64)
        sols = solver.solve_all(f"anc({fam.roots[0]}, D)")
        assert len(sols) > 0

    def test_sib_rule(self):
        fam = scaled_family(3, 2, 2, seed=0)
        solver = Solver(fam.program, max_depth=64)
        child = fam.generations[1][0]
        sols = solver.solve_all(f"sib({child}, S)")
        assert len(sols) >= 1  # couples have 2 children

    def test_query_sequence_shape(self):
        fam = scaled_family(4, 2, 2, seed=0)
        qs = query_sequence(fam, n_queries=5, predicate="anc", seed=3)
        assert len(qs) == 5
        assert all(q.startswith("anc(") for q in qs)

    def test_min_generations(self):
        with pytest.raises(ValueError):
            scaled_family(1)


class TestSynthetic:
    def test_solution_count_formula(self):
        wl = synthetic_tree(branching=3, depth=3, dead_fraction=0.0)
        sols = Solver(wl.program, max_depth=16).solve_all(wl.query)
        assert len(sols) == wl.n_solutions == 3 * 3 * 3

    def test_dead_fraction_kills_branches(self):
        wl = synthetic_tree(branching=4, depth=2, dead_fraction=0.5, seed=1)
        assert wl.n_dead_branches == 2
        sols = Solver(wl.program, max_depth=16).solve_all(wl.query)
        assert len(sols) == wl.n_solutions == 2 * 4

    def test_deterministic(self):
        a = synthetic_tree(3, 3, 0.34, seed=5)
        b = synthetic_tree(3, 3, 0.34, seed=5)
        assert a.source == b.source

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_tree(branching=0)
        with pytest.raises(ValueError):
            synthetic_tree(dead_fraction=1.0)

    def test_comb_single_solution(self):
        wl = comb_tree(teeth=5, tooth_depth=4)
        sols = Solver(wl.program, max_depth=16).solve_all(wl.query)
        assert len(sols) == 1
        assert str(sols[0]["W"]) == "prize"

    def test_comb_solution_tooth_position(self):
        wl = comb_tree(teeth=5, tooth_depth=3, solution_tooth=0)
        assert "t0_3(prize)" in wl.source


class TestNQueens:
    @pytest.mark.parametrize("n,count", [(1, 1), (2, 0), (3, 0), (4, 2), (5, 10), (6, 4)])
    def test_known_solution_counts(self, n, count):
        assert len(solve_nqueens(n)) == count

    def test_boards_are_valid(self):
        for board in solve_nqueens(5):
            assert sorted(board) == [1, 2, 3, 4, 5]  # one queen per row
            for i in range(5):
                for j in range(i + 1, 5):
                    assert abs(board[i] - board[j]) != j - i  # no diagonal

    def test_max_solutions(self):
        assert len(solve_nqueens(6, max_solutions=1)) == 1

    def test_bad_size(self):
        with pytest.raises(ValueError):
            nqueens_program(0)


class TestGraphs:
    def test_reachability_matches_networkx(self):
        gi = random_digraph_program(12, 0.25, seed=4)
        solver = Solver(gi.program, max_depth=64)
        got = {str(s["Y"]) for s in solver.solve_all("path(n0, Y)")}
        assert got == gi.reachable_from("n0")

    def test_acyclic_by_default(self):
        gi = random_digraph_program(10, 0.3, seed=5)
        import networkx as nx

        assert nx.is_directed_acyclic_graph(gi.graph)

    def test_cyclic_instances(self):
        gi = random_digraph_program(6, 0.5, seed=6, acyclic=False)
        solver = Solver(gi.program, max_depth=24)
        # terminates thanks to the depth bound
        sols = solver.solve_all("path(n0, Y)", max_solutions=50)
        assert isinstance(sols, list)

    def test_grid_corner_to_corner(self):
        gi = grid_program(3, 3)
        solver = Solver(gi.program, max_depth=32)
        assert solver.succeeds("path(c0_0, c2_2)")
        assert not solver.succeeds("path(c2_2, c0_0)")

    def test_grid_reachability_complete(self):
        gi = grid_program(3, 2)
        solver = Solver(gi.program, max_depth=32)
        got = {str(s["Y"]) for s in solver.solve_all("path(c0_0, Y)")}
        assert got == gi.reachable_from("c0_0")


class TestMapColoring:
    def test_australia_is_colorable(self):
        mi = map_coloring_program()
        solver = Solver(mi.program, max_depth=64)
        sols = solver.solve_all(mi.query, max_solutions=1)
        assert len(sols) == 1

    def test_colorings_are_proper(self):
        mi = map_coloring_program()
        solver = Solver(mi.program, max_depth=64)
        for sol in solver.solve_all(mi.query, max_solutions=6):
            coloring = {r: str(sol[r.upper()]) for r in mi.regions}
            for a, b in mi.graph.edges:
                assert coloring[a] != coloring[b]

    def test_two_colors_insufficient(self):
        mi = map_coloring_program(colors=["red", "green"])
        solver = Solver(mi.program, max_depth=64)
        assert not solver.succeeds(mi.query)

    def test_triangle_needs_three(self):
        tri = [("a", "b"), ("b", "c"), ("a", "c")]
        mi = map_coloring_program(adjacency=tri)
        solver = Solver(mi.program, max_depth=32)
        sols = solver.solve_all(mi.query)
        assert len(sols) == 6  # 3! proper colorings of a triangle


class TestPuzzle:
    def test_unique_solution(self):
        from repro.workloads import solve_puzzle

        assert solve_puzzle() == [(2, 9, 1)]

    def test_arithmetic_checks(self):
        from repro.workloads import solve_puzzle

        for a, b, c in solve_puzzle():
            assert (10 * a + b) + (10 * b + a) == 100 * c + 10 * a + c
            assert len({a, b, c}) == 3

    def test_all_engines_agree_on_puzzle(self):
        from repro.core import BLogConfig, BLogEngine
        from repro.workloads import puzzle_program, puzzle_query

        eng = BLogEngine(puzzle_program(), BLogConfig(max_depth=64))
        res = eng.query(puzzle_query())
        assert len(res.answers) == 1
        a = res.answers[0]
        assert (str(a["A"]), str(a["B"]), str(a["C"])) == ("2", "9", "1")
