"""Property test: all execution mechanisms agree on random programs.

Generates small stratified programs (facts at tier 0, rules whose
bodies only call strictly lower tiers — so no recursion, guaranteed
termination) plus a random query, then checks that the depth-first
baseline, all three OR-tree strategies, the B-LOG engine, and the
AND/OR process model compute identical answer *sets*.
"""

from hypothesis import given, settings, strategies as st

from repro.core import BLogConfig, BLogEngine
from repro.logic import Program, Solver
from repro.ortree import AndOrEvaluator, OrTree, run_strategy

CONSTANTS = ["a", "b", "c", "d"]


@st.composite
def stratified_programs(draw):
    """A program of tier-0 facts (p0, q0) and tier-1/2 rules."""
    lines = []
    # tier 0: binary facts
    for pred in ("p0", "q0"):
        n_facts = draw(st.integers(1, 5))
        for _ in range(n_facts):
            x = draw(st.sampled_from(CONSTANTS))
            y = draw(st.sampled_from(CONSTANTS))
            lines.append(f"{pred}({x},{y}).")
    # tier 1: one or two rules over tier 0
    body_shapes = [
        "p0(X,Y)",
        "q0(X,Y)",
        "p0(X,Z), q0(Z,Y)",
        "p0(X,Z), p0(Z,Y)",
        "q0(X,Z), p0(Z,Y)",
    ]
    n_rules = draw(st.integers(1, 2))
    for i in range(n_rules):
        body = draw(st.sampled_from(body_shapes))
        lines.append(f"r1(X,Y) :- {body}.")
    # tier 2: one rule over tier 1 and tier 0
    shape2 = draw(
        st.sampled_from(["r1(X,Y)", "r1(X,Z), p0(Z,Y)", "r1(X,Z), r1(Z,Y)"])
    )
    lines.append(f"s2(X,Y) :- {shape2}.")
    query_pred = draw(st.sampled_from(["p0", "q0", "r1", "s2"]))
    query_shape = draw(
        st.sampled_from(["{p}(X, Y)", "{p}(a, Y)", "{p}(X, b)"])
    ).format(p=query_pred)
    return "\n".join(lines), query_shape


def answer_set(answers, keys=("X", "Y")):
    out = set()
    for a in answers:
        out.add(tuple(str(a[k]) for k in keys if k in a))
    return out


@given(stratified_programs())
@settings(max_examples=40, deadline=None)
def test_all_engines_agree(case):
    source, query = case
    program = Program.from_source(source)
    baseline = Solver(program, max_depth=32).solve_all(query)
    expected = answer_set(
        [{k: v for k, v in s.bindings.items()} for s in baseline]
    )
    # OR-tree strategies
    for name in ("depth-first", "breadth-first", "best-first"):
        tree = OrTree(program, query, max_depth=32)
        res = run_strategy(name, tree)
        got = answer_set([tree.solution_answer(s) for s in res.solutions])
        assert got == expected, (name, source, query)
    # B-LOG engine with live learning
    eng = BLogEngine(program, BLogConfig(max_depth=32))
    assert answer_set(eng.query(query).answers) == expected, (source, query)
    # AND/OR process model
    ao = AndOrEvaluator(program, max_depth=32).run(query)
    assert answer_set(ao.answers) == expected, (source, query)


@given(stratified_programs())
@settings(max_examples=20, deadline=None)
def test_learning_never_loses_answers(case):
    """Three consecutive learned queries keep the same answer set."""
    source, query = case
    program = Program.from_source(source)
    expected = answer_set(
        [
            {k: v for k, v in s.bindings.items()}
            for s in Solver(program, max_depth=32).solve_all(query)
        ]
    )
    eng = BLogEngine(program, BLogConfig(n=8, a=16, max_depth=32))
    eng.begin_session()
    for _ in range(3):
        assert answer_set(eng.query(query).answers) == expected
    eng.end_session()
