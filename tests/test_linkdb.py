"""Unit tests for the figure-4 linked-list database."""

import pytest

from repro.linkdb import BLOCK_HEADER_WORDS, POINTER_WORDS, LinkedDatabase, fact_graph
from repro.logic import Program, parse_clause
from repro.ortree import ArcKey
from repro.weights import WeightStore


class TestFigure4Structure:
    """The §5 worked example: a :- b, c, d.  b :- e.  b :- f. ..."""

    @pytest.fixture
    def db(self, section5_program):
        return LinkedDatabase(section5_program)

    def test_one_block_per_clause(self, db, section5_program):
        assert len(db) == len(section5_program)

    def test_a_block_has_four_pointers(self, db):
        """Block for a :- b,c,d points at both b clauses, c and d."""
        a_block = db.block(0)
        assert len(a_block.pointers) == 4
        names = [p.name for p in a_block.pointers]
        assert names == ["b", "b", "c", "d"]

    def test_pointer_targets(self, db):
        a_block = db.block(0)
        b_targets = [p.target for p in a_block.pointers if p.name == "b"]
        assert [str(db.block(t).clause) for t in b_targets] == [
            "b :- e.",
            "b :- f.",
        ]

    def test_facts_have_no_pointers(self, db):
        for block in db:
            if block.is_fact:
                assert block.pointers == []

    def test_pointers_for_literal(self, db):
        a_block = db.block(0)
        assert len(a_block.pointers_for_literal(0)) == 2  # two b's
        assert len(a_block.pointers_for_literal(1)) == 1
        assert len(a_block.pointers_for_literal(2)) == 1

    def test_render_shows_weights(self, db):
        text = db.block(0).render()
        assert "b[0] -> block" in text
        assert "weight" in text


class TestWeights:
    def test_default_weights_unknown(self, section5_program):
        store = WeightStore(n=8, a=4)
        db = LinkedDatabase(section5_program, store)
        for block in db:
            for p in block.pointers:
                assert p.weight == store.unknown_value

    def test_refresh_weights_syncs(self, section5_program):
        store = WeightStore(n=8, a=4)
        db = LinkedDatabase(section5_program, store)
        a_block = db.block(0)
        k = a_block.pointers[1].arc_key(0)
        store.set_known(k, 3.0)
        db.refresh_weights()
        assert a_block.pointers[1].weight == 3.0

    def test_arc_key_matches_ortree_convention(self, section5_program):
        db = LinkedDatabase(section5_program)
        p = db.block(0).pointers[0]
        assert p.arc_key(0) == ArcKey("pointer", (0, 0, p.target))


class TestInvertedFileUpdate:
    def test_add_clause_wires_new_block(self, section5_program):
        db = LinkedDatabase(section5_program)
        cid = db.add_clause(parse_clause("i :- b."))
        block = db.block(cid)
        assert [p.name for p in block.pointers] == ["b", "b"]

    def test_add_clause_updates_existing_blocks(self, section5_program):
        db = LinkedDatabase(section5_program)
        before = len(db.block(0).pointers)
        db.add_clause(parse_clause("b :- g."))  # third way to prove b
        after = len(db.block(0).pointers)
        assert after == before + 1

    def test_program_and_db_stay_consistent(self, section5_program):
        db = LinkedDatabase(section5_program)
        db.add_clause(parse_clause("c :- h."))
        db2 = LinkedDatabase(db.program)  # rebuild from scratch
        assert db2.pointer_count == db.pointer_count


class TestSizes:
    def test_block_size_formula(self):
        p = Program.from_source("q(a) :- r(a, b).")
        db = LinkedDatabase(p)
        block = db.block(0)
        # header 2 + head q(a)=2 + body r(a,b)=3 + 0 pointers (r undefined)
        assert block.size_words == BLOCK_HEADER_WORDS + 2 + 3

    def test_pointer_words_counted(self, section5_program):
        db = LinkedDatabase(section5_program)
        a_block = db.block(0)
        base = BLOCK_HEADER_WORDS + 1 + 3  # head 'a' + three body atoms
        assert a_block.size_words == base + 4 * POINTER_WORDS

    def test_total_words_positive(self, figure1):
        db = LinkedDatabase(figure1)
        assert db.total_words > 0
        assert db.total_words == sum(b.size_words for b in db)


class TestGraphViews:
    def test_pointer_graph(self, section5_program):
        db = LinkedDatabase(section5_program)
        g = db.as_graph()
        assert g.number_of_nodes() == len(db)
        assert g.number_of_edges() == db.pointer_count

    def test_fact_graph_figure2(self, figure1):
        """Figure 2: persons as nodes, f/m relations as arcs."""
        g = fact_graph(figure1)
        assert g.has_edge("sam", "larry")
        assert g.has_edge("larry", "den")
        assert g.has_edge("peg", "doug")
        # 10 facts -> 10 arcs
        assert g.number_of_edges() == 10
        labels = {d["label"] for _, _, d in g.edges(data=True)}
        assert labels == {"f", "m"}

    def test_fact_graph_skips_rules_and_nonbinary(self):
        p = Program.from_source("r(a). f(x, y). g(a, b, c). h(X, y).")
        g = fact_graph(p)
        assert g.number_of_edges() == 1  # only f(x,y)


class TestBlocksForIndicator:
    def test_lookup(self, section5_program):
        db = LinkedDatabase(section5_program)
        bs = db.blocks_for(("b", 0))
        assert len(bs) == 2

    def test_missing_indicator(self, section5_program):
        db = LinkedDatabase(section5_program)
        assert db.blocks_for(("zzz", 3)) == []
