"""Tests for clause retraction through the database and SPD compaction."""

import pytest

from repro.linkdb import LinkedDatabase
from repro.logic import Program, Solver
from repro.spd import SemanticPagingDisk
from repro.workloads import family_program


@pytest.fixture
def db():
    return LinkedDatabase(family_program())


def fact_id(db, text):
    for b in db:
        if str(b.clause) == text:
            return b.block_id
    raise KeyError(text)


class TestRetraction:
    def test_block_dies(self, db):
        cid = fact_id(db, "f(larry, den).")
        before = len(db)
        db.retract_clause(cid)
        assert len(db) == before - 1
        assert cid in db.dead
        assert all(b.block_id != cid for b in db)

    def test_pointers_to_dead_block_unlinked(self, db):
        cid = fact_id(db, "f(larry, den).")
        rule0 = db.block(0)
        assert any(p.target == cid for p in rule0.pointers)
        db.retract_clause(cid)
        assert all(p.target != cid for p in rule0.pointers)

    def test_queries_reflect_retraction(self, db):
        cid = fact_id(db, "f(larry, den).")
        db.retract_clause(cid)
        solver = Solver(db.program)
        got = [str(s["G"]) for s in solver.solve_all("gf(sam, G)")]
        assert got == ["doug"]

    def test_block_ids_stay_stable(self, db):
        cid = fact_id(db, "f(dan, pat).")
        keep = fact_id(db, "f(larry, doug).")
        db.retract_clause(cid)
        assert db.block(keep).block_id == keep

    def test_rebuild_preserves_dead_set(self, db):
        cid = fact_id(db, "f(dan, pat).")
        db.retract_clause(cid)
        db.rebuild()
        assert cid in db.dead
        assert all(p.target != cid for b in db for p in b.pointers)

    def test_heads_updated(self, db):
        cid = fact_id(db, "m(peg, den).")
        db.retract_clause(cid)
        assert cid not in db.blocks_for(("m", 2))


class TestSpdCompaction:
    def test_compact_reclaims_records(self, db):
        spd = SemanticPagingDisk(db, n_sps=2, track_words=64)
        cid = fact_id(db, "f(larry, den).")
        db.retract_clause(cid)
        dropped = spd.compact()
        assert dropped == 1
        assert cid not in spd.addresses
        assert set(spd.addresses) == {b.block_id for b in db}

    def test_compact_noop_when_all_live(self, db):
        spd = SemanticPagingDisk(db, n_sps=2, track_words=64)
        assert spd.compact() == 0

    def test_pages_still_correct_after_compaction(self, db):
        spd = SemanticPagingDisk(db, n_sps=2, track_words=64)
        cid = fact_id(db, "f(larry, den).")
        db.retract_clause(cid)
        spd.compact()
        # stale record pointers to the dead block resolve to nothing, so
        # semantic pages simply exclude it
        page = spd.page_in([0], radius=2)
        assert cid not in page.blocks

    def test_compact_invalidates_caches(self, db):
        spd = SemanticPagingDisk(db, n_sps=2, track_words=64)
        spd.sps[0].load_cylinder(0)
        db.retract_clause(fact_id(db, "f(dan, pat)."))
        spd.compact()
        assert all(sp.cached_cylinder is None for sp in spd.sps)


class TestEndToEnd:
    def test_retract_compact_requery(self):
        program = family_program()
        db = LinkedDatabase(program)
        spd = SemanticPagingDisk(db, n_sps=2, track_words=64)
        cid = fact_id(db, "f(larry, doug).")
        db.retract_clause(cid)
        spd.compact()
        from repro.core import BLogConfig, BLogEngine

        eng = BLogEngine(program, BLogConfig(max_depth=32))
        res = eng.query("gf(sam, G)")
        assert [str(a["G"]) for a in res.answers] == ["den"]