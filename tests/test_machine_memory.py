"""Unit tests for conventional vs multiply-write memory (§6)."""

import pytest

from repro.machine import ConventionalRAM, MultiWriteRAM


class TestConventional:
    def test_read_write(self):
        ram = ConventionalRAM(64)
        ram.write(3, 99)
        assert ram.read(3) == 99

    def test_block_ops(self):
        ram = ConventionalRAM(64)
        ram.load_block(10, [1, 2, 3])
        assert ram.read_block(10, 3) == [1, 2, 3]

    def test_multi_copy_correct(self):
        ram = ConventionalRAM(64)
        ram.load_block(0, [7, 8, 9])
        cost = ram.multi_copy(0, [10, 20, 30], 3)
        for d in (10, 20, 30):
            assert ram.read_block(d, 3) == [7, 8, 9]
        assert cost.writes == 9  # 3 copies x 3 words

    def test_cost_scales_with_copies(self):
        c2 = ConventionalRAM.copy_cost(16, 2)
        c8 = ConventionalRAM.copy_cost(16, 8)
        assert c8.cycles > c2.cycles
        assert c8.writes == 16 * 8

    def test_bad_size(self):
        with pytest.raises(ValueError):
            ConventionalRAM(0)


class TestMultiWrite:
    def test_multi_copy_bit_exact(self):
        ram = MultiWriteRAM(128)
        data = [5, 6, 7, 8]
        ram.load_block(0, data)
        ram.multi_copy(0, [16, 32, 64], 4)
        for d in (16, 32, 64):
            assert ram.read_block(d, 4) == data

    def test_single_destination(self):
        ram = MultiWriteRAM(32)
        ram.load_block(0, [1, 2])
        ram.multi_copy(0, [10], 2)
        assert ram.read_block(10, 2) == [1, 2]

    def test_cost_one_write_pass_regardless_of_copies(self):
        """The §6 claim: k copies of w words cost w writes + k setups,
        not k*w writes."""
        cost = MultiWriteRAM.copy_cost(16, 8)
        assert cost.writes == 16
        assert cost.setup == 8
        conventional = ConventionalRAM.copy_cost(16, 8)
        assert cost.cycles < conventional.cycles

    def test_crossover_small_copies(self):
        """For a single copy the mechanisms are nearly equal."""
        mw = MultiWriteRAM.copy_cost(16, 1)
        cv = ConventionalRAM.copy_cost(16, 1)
        assert mw.cycles == cv.cycles + 1  # one setup bit

    def test_shift_register_semantics(self):
        ram = MultiWriteRAM(16)
        ram.set_copy_bits([2, 5])
        fan = ram.multi_write(42)
        assert fan == 2
        assert ram.words[2] == 42 and ram.words[5] == 42
        ram.shift_down()
        ram.multi_write(43)
        assert ram.words[3] == 43 and ram.words[6] == 43

    def test_clear_bits(self):
        ram = MultiWriteRAM(16)
        ram.set_copy_bits([1])
        ram.clear_bits()
        assert ram.multi_write(9) == 0

    def test_out_of_range_destination(self):
        ram = MultiWriteRAM(16)
        ram.load_block(0, [1, 2, 3, 4])
        with pytest.raises(IndexError):
            ram.multi_copy(0, [14], 4)

    def test_multi_write_ops_counted(self):
        ram = MultiWriteRAM(64)
        ram.load_block(0, [1, 2, 3])
        ram.multi_copy(0, [10, 20], 3)
        assert ram.multi_write_ops == 3  # one per word


class TestSpeedupRatio:
    @pytest.mark.parametrize("copies", [2, 4, 8, 16])
    def test_ratio_grows_with_fanout(self, copies):
        """Cycle ratio approaches `copies` for large blocks — the
        multitasking chain-sprouting payoff of §6."""
        words = 256
        cv = ConventionalRAM.copy_cost(words, copies).cycles
        mw = MultiWriteRAM.copy_cost(words, copies).cycles
        ratio = cv / mw
        assert ratio > copies * 0.45
