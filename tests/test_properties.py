"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.logic import (
    Atom,
    Bindings,
    Int,
    Struct,
    Term,
    Var,
    parse_term,
    term_size,
    term_vars,
    unify,
    variant_of,
)
from repro.logic.unify import rename_apart
from repro.machine import ConventionalRAM, MultiWriteRAM, Simulator, Timeout
from repro.ortree import ArcKey, OrArc
from repro.weights import WeightStore, on_failure, on_success
from repro.andpar import independence_groups, hash_join, nested_loop_join, semi_join


# ---------------------------------------------------------------- term strategies
atoms = st.sampled_from(list("abcdefg")).map(Atom)
ints = st.integers(-100, 100).map(Int)
var_pool = [Var(n, vid=-(i + 1000)) for i, n in enumerate("XYZUVW")]
variables = st.sampled_from(var_pool)


def terms(max_depth=3):
    base = st.one_of(atoms, ints, variables)
    return st.recursive(
        base,
        lambda children: st.builds(
            Struct,
            st.sampled_from(list("fgh")),
            st.lists(children, min_size=1, max_size=3).map(tuple),
        ),
        max_leaves=8,
    )


# ------------------------------------------------------------------- unification
class TestUnificationProperties:
    @given(terms())
    def test_unify_reflexive(self, t):
        assert unify(t, t, Bindings())

    @given(terms(), terms())
    def test_unify_symmetric(self, a, b):
        assert unify(a, b, Bindings()) == unify(b, a, Bindings())

    @given(terms(), terms())
    def test_unifier_makes_terms_equal(self, a, b):
        # occurs check on: cyclic bindings (where resolve would diverge)
        # are rejected, so a successful unifier is a genuine equalizer
        bnd = Bindings()
        if unify(a, b, bnd, occurs_check=True):
            assert bnd.resolve(a) == bnd.resolve(b)

    @given(terms())
    def test_rename_apart_is_variant(self, t):
        renamed = rename_apart(t)
        assert variant_of(t, renamed)
        original_ids = {v.id for v in term_vars(t)}
        renamed_ids = {v.id for v in term_vars(renamed)}
        assert not (original_ids & renamed_ids) or not original_ids

    @given(terms(), terms())
    def test_trail_restores_exactly(self, a, b):
        bnd = Bindings()
        x = Var("Pre", vid=-1)
        unify(x, Atom("pre"), bnd)
        before = dict(bnd.map)
        mark = bnd.mark()
        unify(a, b, bnd)
        bnd.undo_to(mark)
        assert bnd.map == before

    @given(terms())
    def test_occurs_check_no_cycles(self, t):
        bnd = Bindings()
        for v in var_pool:
            # bind vars only with occurs check: resolve must terminate
            pass
        if unify(Var("Root", vid=-99), t, bnd, occurs_check=True):
            bnd.resolve(Var("Root", vid=-99))  # must not hang/recurse forever


# -------------------------------------------------------------------- parser
class TestParserProperties:
    @given(terms(max_depth=2))
    @settings(max_examples=60)
    def test_str_parse_roundtrip_ground(self, t):
        """Ground terms round-trip through str() and the parser."""
        if term_vars(t):
            return
        if any(isinstance(s, Int) and s.value < 0 for s in t.walk()):
            return  # negative ints inside structs render ambiguously
        reparsed = parse_term(str(t))
        assert reparsed == t


# ----------------------------------------------------------------- weight rules
def _chain(keys):
    return [
        OrArc(parent=i, child=i + 1, key=ArcKey("pointer", (0, 0, k)), weight=0.0)
        for i, k in enumerate(keys)
    ]


class TestWeightProperties:
    @given(st.lists(st.integers(0, 20), min_size=1, max_size=8, unique=True))
    def test_success_chain_sums_to_n(self, keys):
        store = WeightStore(n=16, a=8)
        log = on_success(store, _chain(keys))
        if not log.anomaly:
            total = sum(
                store.weight(ArcKey("pointer", (0, 0, k))) for k in keys
            )
            assert math.isclose(total, 16.0)

    @given(
        st.lists(st.integers(0, 20), min_size=1, max_size=8, unique=True),
        st.data(),
    )
    def test_failure_sets_at_most_one_infinity(self, keys, data):
        store = WeightStore(n=16, a=8)
        # pre-populate a random subset as known
        known = data.draw(st.sets(st.sampled_from(keys)))
        for k in known:
            store.set_known(ArcKey("pointer", (0, 0, k)), 1.0)
        before = sum(
            1 for k in keys if store.is_infinite(ArcKey("pointer", (0, 0, k)))
        )
        on_failure(store, _chain(keys))
        after = sum(
            1 for k in keys if store.is_infinite(ArcKey("pointer", (0, 0, k)))
        )
        assert after - before in (0, 1)

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=8, unique=True))
    def test_update_idempotent_on_second_success(self, keys):
        store = WeightStore(n=16, a=8)
        on_success(store, _chain(keys))
        snapshot = {k: store.weight(ArcKey("pointer", (0, 0, k))) for k in keys}
        on_success(store, _chain(keys))  # all known now: noop
        again = {k: store.weight(ArcKey("pointer", (0, 0, k))) for k in keys}
        assert snapshot == again

    @given(st.floats(1.0, 100.0), st.integers(2, 32))
    def test_encoding_order(self, n, a):
        store = WeightStore(n=n, a=a)
        assert store.unknown_value > n
        assert store.infinity_value >= store.unknown_value or a * n <= n + 1


# ------------------------------------------------------------------ DES kernel
class TestSimulatorProperties:
    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=20))
    def test_events_fire_in_time_order(self, delays):
        sim = Simulator()
        fired = []

        def proc(d):
            yield Timeout(d)
            fired.append(sim.now)

        for d in delays:
            sim.spawn(proc(d))
        sim.run()
        assert fired == sorted(fired)
        assert sim.now == max(delays)

    @given(st.lists(st.floats(0.0, 50.0), min_size=2, max_size=10))
    def test_sequential_delays_sum(self, delays):
        sim = Simulator()

        def proc():
            for d in delays:
                yield Timeout(d)

        sim.spawn(proc())
        sim.run()
        assert math.isclose(sim.now, sum(delays), abs_tol=1e-9)


# ------------------------------------------------------------------ memory
class TestMemoryProperties:
    @given(
        st.lists(st.integers(0, 255), min_size=1, max_size=16),
        st.integers(1, 4),
    )
    def test_multiwrite_copies_bit_exact(self, data, n_copies):
        words = len(data)
        size = words * (n_copies + 2)
        ram = MultiWriteRAM(size)
        ram.load_block(0, data)
        dsts = [words * (i + 1) for i in range(n_copies)]
        ram.multi_copy(0, dsts, words)
        for d in dsts:
            assert ram.read_block(d, words) == data

    @given(st.integers(2, 512), st.integers(2, 64))
    def test_multiwrite_never_slower_for_real_copies(self, words, copies):
        """mw = 2w + c vs cv = w + w·c: mw <= cv exactly when
        (w-1)(c-1) >= 1, i.e. for every block of >= 2 words copied >= 2
        times.  (A 1-word block is genuinely cheaper conventionally —
        the setup bit costs more than it saves.)"""
        cv = ConventionalRAM.copy_cost(words, copies).cycles
        mw = MultiWriteRAM.copy_cost(words, copies).cycles
        assert mw <= cv

    def test_one_word_block_favors_conventional(self):
        assert (
            MultiWriteRAM.copy_cost(1, 2).cycles
            > ConventionalRAM.copy_cost(1, 2).cycles
        )


# -------------------------------------------------------------------- joins
rows = st.lists(
    st.tuples(st.integers(0, 10), st.integers(0, 10)), min_size=0, max_size=30
)


class TestJoinProperties:
    @given(rows, rows)
    def test_all_join_algorithms_agree(self, left, right):
        nl, _ = nested_loop_join(left, right, 1, 0)
        hj, _ = hash_join(left, right, 1, 0)
        sj, _ = semi_join(left, right, 1, 0)
        assert sorted(nl) == sorted(hj) == sorted(sj)

    @given(rows, rows)
    def test_semi_join_reduction_sound(self, left, right):
        from repro.andpar import semi_join_reduce

        reduced, _ = semi_join_reduce(left, right, 1, 0)
        # reduction keeps exactly the right rows that participate
        participating = {r for l in left for r in right if l[1] == r[0]}
        assert set(reduced) == participating


# ---------------------------------------------------------------- independence
class TestIndependenceProperties:
    @given(st.lists(st.sampled_from(["f(X,Y)", "g(Y,Z)", "h(A)", "k(B,C)", "m(C)"]),
                    min_size=1, max_size=5))
    def test_groups_partition_goals(self, goal_srcs):
        from repro.logic import parse_query

        goals = list(parse_query(", ".join(goal_srcs)))
        groups = independence_groups(goals)
        flat = sorted(i for g in groups for i in g)
        assert flat == list(range(len(goals)))

    @given(st.lists(st.sampled_from(["f(X,Y)", "g(Y,Z)", "h(A)", "k(B,C)"]),
                    min_size=2, max_size=5))
    def test_no_variable_crosses_groups(self, goal_srcs):
        from repro.logic import parse_query
        from repro.andpar import goal_vars

        goals = list(parse_query(", ".join(goal_srcs)))
        groups = independence_groups(goals)
        for i, gi in enumerate(groups):
            vi = set().union(*(goal_vars(goals[k]) for k in gi))
            for gj in groups[i + 1 :]:
                vj = set().union(*(goal_vars(goals[k]) for k in gj))
                assert not (vi & vj)
