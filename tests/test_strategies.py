"""Unit tests for the search strategies of section 3."""

import pytest

from repro.logic import Program
from repro.ortree import (
    OrTree,
    best_first,
    breadth_first,
    depth_first,
    iterative_deepening,
    run_strategy,
)
from repro.workloads import comb_tree, synthetic_tree


def fresh_tree(program, query="gf(sam, G)", weight_fn=None, max_depth=64):
    return OrTree(program, query, weight_fn=weight_fn, max_depth=max_depth)


class TestDepthFirst:
    def test_prolog_solution_order(self, figure1):
        tree = fresh_tree(figure1)
        res = depth_first(tree)
        answers = [str(tree.solution_answer(s)["G"]) for s in res.solutions]
        assert answers == ["den", "doug"]

    def test_first_solution_early(self, figure1):
        tree = fresh_tree(figure1)
        res = depth_first(tree, max_solutions=1)
        assert len(res.solutions) == 1
        assert res.expansions_to_first == res.expansions

    def test_dfs_skips_failure_branch_when_stopping_early(self, figure1):
        tree = fresh_tree(figure1)
        res = depth_first(tree, max_solutions=2)
        # both solutions live in the left subtree; the m-branch is never expanded
        assert res.expansions <= 4


class TestBreadthFirst:
    def test_finds_all_solutions(self, figure1):
        tree = fresh_tree(figure1)
        res = breadth_first(tree)
        assert len(res.solutions) == 2

    def test_bfs_expands_whole_upper_tree(self, figure1):
        """BFS 'tends to work near the root': for the first solution it
        expands at least as many nodes as DFS does (§3)."""
        t1 = fresh_tree(figure1)
        dfs = depth_first(t1, max_solutions=1)
        t2 = fresh_tree(figure1)
        bfs = breadth_first(t2, max_solutions=1)
        assert bfs.expansions >= dfs.expansions

    def test_bfs_finds_shallowest_solution_first(self):
        p = Program.from_source(
            """
            s(deep) :- a.
            s(shallow).
            a :- b.
            b.
            """
        )
        tree = OrTree(p, "s(W)")
        res = breadth_first(tree, max_solutions=1)
        assert str(tree.solution_answer(res.solutions[0])["W"]) == "shallow"


class TestBestFirst:
    def test_uniform_weights_complete(self, figure1):
        tree = fresh_tree(figure1)
        res = best_first(tree)
        assert len(res.solutions) == 2

    def test_weights_steer_search(self, figure1):
        """Penalizing the m-rule pointer makes best-first avoid it until
        the f-branch is exhausted."""

        def wf(key):
            if key.kind == "pointer" and key.key == (-1, 0, 1):
                return 100.0
            return 0.0

        tree = fresh_tree(figure1, weight_fn=wf)
        res = best_first(tree, max_solutions=2)
        # both solutions found without ever expanding the m-rule child
        expanded_m = any(
            n.arc is not None
            and n.arc.key.kind == "pointer"
            and n.arc.key.key == (-1, 0, 1)
            and n.status.value == "expanded"
            for n in tree.nodes
        )
        assert len(res.solutions) == 2
        assert not expanded_m

    def test_solutions_pop_in_bound_order(self, figure1):
        tree = fresh_tree(figure1, weight_fn=lambda k: 1.0)
        res = best_first(tree)
        assert res.solution_bounds == sorted(res.solution_bounds)

    def test_prune_bound_cuts_worse_chains(self):
        p = Program.from_source(
            """
            s(win).
            s(X) :- deep(X).
            deep(X) :- deeper(X).
            deeper(lose).
            """
        )

        def wf(key):
            # the deep branch is priced strictly above the direct solution
            if key.kind == "pointer" and key.key == (-1, 0, 1):
                return 5.0
            return 0.0

        tree = OrTree(p, "s(W)", weight_fn=wf, max_depth=16)
        res = best_first(tree, max_solutions=None, prune_bound=True)
        assert len(res.solutions) == 1
        assert str(tree.solution_answer(res.solutions[0])["W"]) == "win"
        assert res.pruned > 0


class TestIterativeDeepening:
    def test_finds_solution(self, figure1):
        res = iterative_deepening(
            lambda d: OrTree(figure1, "gf(sam, G)", max_depth=d),
            max_solutions=1,
        )
        assert len(res.solutions) >= 1

    def test_total_expansions_accumulate(self):
        wl = comb_tree(teeth=3, tooth_depth=6)
        res = iterative_deepening(
            lambda d: OrTree(wl.program, wl.query, max_depth=d),
            max_solutions=1,
            start_depth=2,
            step=2,
            max_depth=16,
        )
        assert len(res.solutions) == 1
        # ID re-expands shallow levels: more work than one direct DFS
        direct = depth_first(OrTree(wl.program, wl.query, max_depth=16), 1)
        assert res.expansions >= direct.expansions

    def test_exhausts_finite_tree_without_solutions(self):
        p = Program.from_source("p(X) :- q(X).")  # q undefined -> failure
        res = iterative_deepening(
            lambda d: OrTree(p, "p(W)", max_depth=d), max_solutions=1
        )
        assert res.solutions == []


class TestDispatch:
    def test_run_strategy_by_name(self, figure1):
        for name in ("depth-first", "breadth-first", "best-first"):
            tree = fresh_tree(figure1)
            res = run_strategy(name, tree)
            assert res.strategy == name
            assert len(res.solutions) == 2

    def test_unknown_name_rejected(self, figure1):
        with pytest.raises(ValueError):
            run_strategy("random-walk", fresh_tree(figure1))


class TestCrossStrategyAgreement:
    @pytest.mark.parametrize("name", ["depth-first", "breadth-first", "best-first"])
    def test_same_solution_sets(self, name):
        wl = synthetic_tree(branching=3, depth=3, dead_fraction=0.34, seed=5)
        tree = OrTree(wl.program, wl.query, max_depth=16)
        res = run_strategy(name, tree)
        answers = sorted(
            str(tree.solution_answer(s)["W"]) for s in res.solutions
        )
        assert len(answers) == wl.n_solutions

    def test_max_expansions_cap(self, figure1):
        tree = fresh_tree(figure1)
        res = depth_first(tree, max_expansions=2)
        assert res.expansions <= 2
